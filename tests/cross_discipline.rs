//! Cross-discipline integration: every scheduler fed the identical
//! workload must conserve traffic, respect per-flow FIFO, and rank in
//! fairness the way the paper's Table 1 predicts.

use err_repro::fairness::{jain_index, FairnessMonitor};
use err_repro::sched::Discipline;
use err_repro::traffic::flows::fig4_flows;
use err_repro::traffic::{PacketTrace, Workload};

fn all_disciplines() -> Vec<Discipline> {
    vec![
        Discipline::Err,
        Discipline::Drr { quantum: 128 },
        Discipline::Fbrr,
        Discipline::Pbrr,
        Discipline::Fcfs,
        Discipline::Wfq,
        Discipline::Scfq,
        Discipline::VirtualClock,
        Discipline::Gps,
        Discipline::Werr {
            weights: vec![1; 8],
        },
    ]
}

/// Replays a captured trace through a discipline, returning (per-flow
/// totals, exact FM, packets out).
fn replay(d: &Discipline, trace: &PacketTrace, horizon: u64) -> (Vec<u64>, u64, u64) {
    let n = trace.n_flows();
    let mut sched = d.build(n);
    let mut monitor = FairnessMonitor::new(n);
    let mut totals = vec![0u64; n];
    let mut t = trace.clone();
    let mut arrivals = Vec::new();
    let mut pkts_out = 0;
    for now in 0..horizon {
        arrivals.clear();
        t.poll(now, &mut arrivals);
        for pkt in &arrivals {
            monitor.on_enqueue(pkt, now);
            sched.enqueue(*pkt, now);
        }
        if let Some(flit) = sched.service_flit(now) {
            monitor.on_flit(&flit, now);
            totals[flit.flow] += 1;
            if flit.is_tail() {
                pkts_out += 1;
            }
        }
    }
    monitor.finish(horizon);
    (totals, monitor.exact_fm(), pkts_out)
}

#[test]
fn identical_trace_identical_totals_across_replays() {
    let mut w = Workload::new(fig4_flows(0.006), 31);
    let trace = PacketTrace::capture(&mut w, 40_000);
    for d in all_disciplines() {
        let a = replay(&d, &trace, 40_000);
        let b = replay(&d, &trace, 40_000);
        assert_eq!(a.0, b.0, "{} replay not deterministic", d.label());
    }
}

#[test]
fn fairness_ranking_matches_table1() {
    // On the overloaded fig4 mix: flit-granular GPS/FBRR are fairest,
    // then ERR/DRR/WFQ-family (bounded), then PBRR/FCFS (unbounded).
    let mut w = Workload::new(fig4_flows(0.006), 77);
    let trace = PacketTrace::capture(&mut w, 120_000);
    let fm_of = |d: &Discipline| replay(d, &trace, 120_000).1;
    let fm_fbrr = fm_of(&Discipline::Fbrr);
    let fm_gps = fm_of(&Discipline::Gps);
    let fm_err = fm_of(&Discipline::Err);
    let fm_drr = fm_of(&Discipline::Drr { quantum: 128 });
    let fm_pbrr = fm_of(&Discipline::Pbrr);
    let fm_fcfs = fm_of(&Discipline::Fcfs);
    // FBRR's strict rotation keeps the gap at 1 flit; GPS's id tie-break
    // can briefly reach 2 across busy-window joins.
    assert!(
        fm_fbrr <= 1 && fm_gps <= 2,
        "flit-granular are near-perfect (FBRR {fm_fbrr}, GPS {fm_gps})"
    );
    assert!(
        fm_err > fm_fbrr,
        "ERR is packet-granular, coarser than FBRR"
    );
    assert!(fm_err < 3 * 128, "ERR within 3m");
    assert!(fm_drr <= 128 + 2 * 128, "DRR within Max + 2m");
    // The unbounded disciplines blow past everyone on this workload.
    assert!(fm_pbrr > fm_err * 3, "PBRR {fm_pbrr} vs ERR {fm_err}");
    assert!(fm_fcfs > fm_err * 3, "FCFS {fm_fcfs} vs ERR {fm_err}");
}

#[test]
fn throughput_fairness_jain_ordering() {
    let mut w = Workload::new(fig4_flows(0.006), 5);
    let trace = PacketTrace::capture(&mut w, 150_000);
    let jain_of = |d: &Discipline| {
        let (totals, _, _) = replay(d, &trace, 150_000);
        jain_index(&totals)
    };
    let j_err = jain_of(&Discipline::Err);
    let j_pbrr = jain_of(&Discipline::Pbrr);
    let j_fcfs = jain_of(&Discipline::Fcfs);
    assert!(j_err > 0.9999, "ERR Jain {j_err}");
    assert!(j_pbrr < 0.99, "PBRR should skew: {j_pbrr}");
    assert!(j_fcfs < 0.99, "FCFS should skew: {j_fcfs}");
}

#[test]
fn work_conservation_identical_service_volume() {
    // Work-conserving disciplines serve the same number of flits per
    // cycle on the same arrivals — totals may differ per flow, but the
    // grand total may not.
    let mut w = Workload::new(fig4_flows(0.006), 13);
    let trace = PacketTrace::capture(&mut w, 30_000);
    let volumes: Vec<u64> = all_disciplines()
        .iter()
        .map(|d| replay(d, &trace, 30_000).0.iter().sum())
        .collect();
    for (i, v) in volumes.iter().enumerate() {
        assert_eq!(
            *v, volumes[0],
            "discipline #{i} served a different flit volume"
        );
    }
}
