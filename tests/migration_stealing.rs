//! Tier-1 acceptance for flow migration & work stealing (DESIGN.md §8).
//!
//! Two halves:
//!
//! * a doc–code drift test: DESIGN.md §8 is a normative spec written
//!   before the implementation, so it must keep naming exactly the
//!   states and types the `migrate` module exports — if someone renames
//!   `Quiescing` or `MigratedFlow`, the spec has to move with it;
//! * an end-to-end stealing run with the egress order captured per
//!   flow: under heavy skew the runtime must migrate at least once,
//!   conserve every flit, and keep each flow's emitted sequence exactly
//!   its submission order with contiguous flit indices — migration is
//!   invisible in the output.

use std::sync::{Arc, Mutex};

use err_runtime::{MigrationPhase, Runtime, RuntimeConfig, StealingConfig, Submitted};
use err_sched::{Packet, ServedFlit};

/// DESIGN.md §8, as written (the section runs to the end of the file).
fn design_section_8() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md readable");
    let start = text
        .find("## 8")
        .expect("DESIGN.md must contain a section 8");
    match text[start + 4..].find("\n## ") {
        Some(end) => text[start..start + 4 + end].to_owned(),
        None => text[start..].to_owned(),
    }
}

/// The spec names every state of the actual migration state machine.
/// The names are derived from the enum itself (via `Debug`), so a code
/// rename breaks this test until DESIGN.md §8 follows.
#[test]
fn design_section_8_names_the_migration_states() {
    let spec = design_section_8();
    for phase in [
        MigrationPhase::Idle,
        MigrationPhase::Requested,
        MigrationPhase::Quiescing,
        MigrationPhase::Draining,
        MigrationPhase::InTransit,
    ] {
        let name = format!("{phase:?}");
        assert!(
            spec.contains(&name),
            "DESIGN.md §8 no longer names migration state `{name}`"
        );
    }
}

/// The spec names the public types and scheduler hooks the protocol is
/// built from.
#[test]
fn design_section_8_names_the_protocol_vocabulary() {
    let spec = design_section_8();
    for name in [
        "FlowMap",
        "LoadBoard",
        "MigrationSlot",
        "MigratedFlow",
        "extract_flow",
        "absorb_flow",
        "park_flow",
        "steal_threshold",
        "min_gap",
    ] {
        assert!(
            spec.contains(name),
            "DESIGN.md §8 no longer mentions `{name}`"
        );
    }
}

/// Heavy skew on a 4-shard stealing runtime: at least one migration
/// fires, everything is conserved, and the per-flow egress order is
/// exactly the submission order with contiguous flit indices — the
/// steal moved state, not observable behavior.
#[test]
fn stealing_preserves_per_flow_emit_order() {
    const N_FLOWS: usize = 8;
    const PACKETS: u64 = 24_000;

    // Per-flow capture: (packet id, flit index) in emission order.
    // Only one shard serves a flow at any instant (the quiesce phase
    // parks it on the donor before the thief unparks it), so pushing
    // under one lock per flow records a well-defined per-flow order.
    type FlowLog = Vec<Mutex<Vec<(u64, u32)>>>;
    let captured: Arc<FlowLog> = Arc::new((0..N_FLOWS).map(|_| Mutex::new(Vec::new())).collect());

    let sink_for = |captured: Arc<FlowLog>| {
        move |_shard: usize, f: &ServedFlit| {
            captured[f.flow]
                .lock()
                .unwrap()
                .push((f.packet, f.flit_index));
        }
    };

    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 4,
            n_flows: N_FLOWS,
            // Provision for the whole offered load: backlog hiding in a
            // blocked submitter is invisible to the LoadBoard.
            ring_capacity: 1 << 15,
            stealing: Some(StealingConfig {
                min_gap: 64,
                ..StealingConfig::default()
            }),
            ..RuntimeConfig::default()
        },
        {
            let captured = Arc::clone(&captured);
            move |_shard| Some(sink_for(Arc::clone(&captured)))
        },
    );

    // ~87% of flits on flow 0, long packets; the rest spread thin.
    let mut submitted: Vec<Vec<(u64, u32)>> = vec![Vec::new(); N_FLOWS];
    let mut flits = 0u64;
    for id in 0..PACKETS {
        let (flow, len) = if id % 8 < 7 {
            (0usize, 16u32)
        } else {
            ((1 + (id % 7)) as usize, 4u32)
        };
        submitted[flow].push((id, len));
        flits += len as u64;
        assert_eq!(
            handle.submit(Packet::new(id, flow, len, 0)),
            Ok(Submitted::Enqueued)
        );
    }

    // Keep the runtime open until everything is served: shutdown flips
    // `closed`, and §8.6 refuses new steal requests once closed.
    while handle.stats().served_packets() < PACKETS {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = rt.shutdown();

    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.served_packets(), PACKETS);
    assert_eq!(report.stats.served_flits(), flits);
    assert!(
        report.stats.migrations() >= 1,
        "87% skew on 4 shards should steal at least once: {report:?}"
    );

    // Per-flow output = submission order, flit indices 0..len per
    // packet, nothing interleaved within the flow.
    for (flow, expected) in submitted.iter().enumerate() {
        let got = captured[flow].lock().unwrap();
        let mut cursor = got.iter();
        for &(id, len) in expected {
            for idx in 0..len {
                match cursor.next() {
                    Some(&(p, i)) => assert_eq!(
                        (p, i),
                        (id, idx),
                        "flow {flow}: expected packet {id} flit {idx}"
                    ),
                    None => panic!("flow {flow}: output ended mid-packet {id}"),
                }
            }
        }
        assert!(cursor.next().is_none(), "flow {flow}: extra flits emitted");
    }
}

/// Regression for the §13.5 compose hang: stealing under buffered
/// egress must shut down cleanly even when donor-side steal aborts race
/// link credit-parking.
///
/// A donor abort (withdrawal, fence timeout, or salvage seize) used to
/// unpark its victim directly. When the victim's link was
/// credit-parked, the scheduler would serve a second flit for a link
/// whose one-deep stash was already occupied; the release build
/// overwrote the stashed flit (losing it) and drifted the worker's
/// `stash_count`, so the exit gate never opened and shutdown hung —
/// reproducing on most runs of the stealing bench's buffered leg. Tight
/// credits plus an aggressive steal policy make the race hot; four
/// rounds keep the reproduction probability high without a long wait.
#[test]
fn stealing_under_buffered_egress_shuts_down_cleanly() {
    use std::sync::atomic::{AtomicU64, Ordering};

    use err_runtime::{BufferedConfig, EgressMode, ShardExit};

    const N_FLOWS: usize = 16;
    const N_LINKS: usize = 4;
    const PACKETS: u64 = 6_000;

    for round in 0..4 {
        let delivered = Arc::new(AtomicU64::new(0));
        let (rt, handle) = Runtime::start_with_egress(
            RuntimeConfig {
                shards: 4,
                n_flows: N_FLOWS,
                ring_capacity: 1 << 14,
                stealing: Some(StealingConfig {
                    poll_interval: 4,
                    steal_threshold: 128,
                    min_gap: 64,
                    cooldown_polls: 1,
                }),
                egress: EgressMode::Buffered(BufferedConfig {
                    ring_capacity: 64,
                    // Tight credits: links credit-park constantly, so
                    // steal aborts keep landing on parked victims.
                    credits: 4,
                    n_links: N_LINKS,
                    ..BufferedConfig::default()
                }),
                ..RuntimeConfig::default()
            },
            {
                let delivered = Arc::clone(&delivered);
                move |_shard| {
                    let delivered = Arc::clone(&delivered);
                    Some(move |_s: usize, _f: &ServedFlit| {
                        delivered.fetch_add(1, Ordering::Relaxed);
                    })
                }
            },
        );

        // ~75% of flits on two flows: heavy skew keeps steals (and
        // their aborts, via the backlog-withdrawal path) coming.
        let mut flits = 0u64;
        for id in 0..PACKETS {
            let (flow, len) = if id % 4 < 3 {
                ((id % 2) as usize, 16u32)
            } else {
                ((2 + id % 14) as usize, 4u32)
            };
            flits += u64::from(len);
            assert_eq!(
                handle.submit(Packet::new(id, flow, len, 0)),
                Ok(Submitted::Enqueued),
                "round {round}: submit {id}"
            );
        }
        while handle.stats().served_packets() < PACKETS {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }

        // A drifted stash count wedges the exit gate: the worker is
        // then Abandoned at the deadline instead of exiting Clean.
        let report = rt.shutdown_within(std::time::Duration::from_secs(60));
        assert!(
            report.exits.iter().all(|e| matches!(e, ShardExit::Clean)),
            "round {round}: wedged worker: {:?}",
            report.exits
        );
        assert!(report.is_conserving(), "round {round}: {report:?}");
        assert_eq!(report.served_packets(), PACKETS, "round {round}");
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            flits,
            "round {round}: a stashed flit was overwritten and lost"
        );
    }
}
