//! Integration tests for the sharded scheduling runtime: capacity
//! scaling, loss accounting under admission control, and graceful drain.
//!
//! Scaling is asserted in the flit-clock model (flits served per cycle
//! of the slowest shard's clock), not wall-clock time: each shard is an
//! independent egress link serving one flit per cycle — the paper's
//! model — so with `s` balanced shards the aggregate rate approaches
//! `s`. Wall-clock scaling additionally needs `s` idle cores, which CI
//! containers do not guarantee; the logical metric tests exactly what
//! the sharded design controls (partition evenness and per-shard
//! independence) and nothing the machine controls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use err_runtime::{AdmissionPolicy, Runtime, RuntimeConfig, SubmitError, Submitted};
use err_sched::{Discipline, Packet};

const N_FLOWS: usize = 64;
const PACKET_LEN: u32 = 8;

fn uniform_run(shards: usize, packets: u64) -> err_runtime::DrainReport {
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ..RuntimeConfig::default()
    });
    for id in 0..packets {
        let pkt = Packet::new(id, (id % N_FLOWS as u64) as usize, PACKET_LEN, 0);
        assert_eq!(handle.submit(pkt), Ok(Submitted::Enqueued));
    }
    rt.shutdown()
}

/// (a) Capacity scaling: four shards serve the same uniform 64-flow
/// workload in well under half the shard-cycles one shard needs.
#[test]
fn four_shards_at_least_double_one_shard_capacity() {
    let packets = 4_000;
    let one = uniform_run(1, packets);
    let four = uniform_run(4, packets);
    assert!(one.is_conserving(), "{one:?}");
    assert!(four.is_conserving(), "{four:?}");
    assert_eq!(one.served_packets(), packets);
    assert_eq!(four.served_packets(), packets);

    // One shard serves one flit per cycle of its own clock, exactly.
    let base = one.flits_per_shard_cycle();
    assert!(
        (base - 1.0).abs() < 1e-9,
        "1-shard rate {base}, expected 1.0"
    );
    // Four shards: aggregate rate is total flits / makespan. The
    // SplitMix64 partition keeps every shard's share of the 64 uniform
    // flows far enough from a 2/4 skew that the aggregate stays >= 2x.
    let scaled = four.flits_per_shard_cycle();
    assert!(
        scaled >= 2.0 * base,
        "4-shard rate {scaled:.3} < 2x 1-shard rate {base:.3}"
    );
}

/// (b1) With admission off, nothing is ever lost: every submitted packet
/// is served, regardless of burst size or shard count.
#[test]
fn zero_loss_with_admission_unlimited() {
    for shards in [1usize, 3] {
        let report = uniform_run(shards, 10_000);
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 10_000);
        assert_eq!(report.dropped_packets(), 0);
        assert_eq!(report.rejected_packets(), 0);
        assert_eq!(report.stats.loss_rate(), 0.0);
    }
}

/// (b2) Drop-tail admission under a 2x overload burst drops exactly the
/// packets over the cap, and the submit-path accounting agrees with the
/// drain report packet for packet.
#[test]
fn drop_tail_bounds_drops_exactly_under_2x_overload() {
    const CAP_FLITS: u64 = 64;
    // An egress sink that sleeps per flit pins the service rate far
    // below the burst's submit rate, so the admission cap — not the
    // race with the worker — decides the outcome.
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 1,
            n_flows: 1,
            discipline: Discipline::Err,
            admission: AdmissionPolicy::DropTail {
                max_backlog: CAP_FLITS,
            },
            ..RuntimeConfig::default()
        },
        |_shard| {
            Some(|_: usize, _: &err_sched::ServedFlit| {
                std::thread::sleep(Duration::from_millis(1));
            })
        },
    );
    // 2x overload: offer 2 * CAP_FLITS flits in one burst.
    let burst_packets = 2 * CAP_FLITS / PACKET_LEN as u64; // 16
    let mut dropped_at_submit = 0u64;
    for id in 0..burst_packets {
        match handle.submit(Packet::new(id, 0, PACKET_LEN, 0)).unwrap() {
            Submitted::Enqueued => {}
            Submitted::Dropped => dropped_at_submit += 1,
        }
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.submitted_packets(), burst_packets);
    assert_eq!(report.dropped_packets(), dropped_at_submit);
    assert_eq!(
        report.served_packets() + report.dropped_packets(),
        burst_packets
    );
    // The cap admits while strictly under CAP_FLITS, so the burst gets
    // CAP_FLITS / PACKET_LEN = 8 packets in (9 if service released one
    // mid-burst; the sink makes that a >= 8 ms window against a << 1 ms
    // burst). Everything else must have been dropped.
    let admitted = burst_packets - report.dropped_packets();
    assert!(
        (8..=9).contains(&admitted),
        "admitted {admitted}, expected the cap's 8 (or 9 with one mid-burst release)"
    );
}

/// (b3) The reject policy surfaces overload to the producer as errors
/// instead of silent drops, with the same exact accounting.
#[test]
fn reject_policy_errors_instead_of_dropping() {
    const CAP_FLITS: u64 = 32;
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 1,
            n_flows: 1,
            discipline: Discipline::Err,
            admission: AdmissionPolicy::Reject {
                max_backlog: CAP_FLITS,
            },
            ..RuntimeConfig::default()
        },
        |_shard| {
            Some(|_: usize, _: &err_sched::ServedFlit| {
                std::thread::sleep(Duration::from_millis(1));
            })
        },
    );
    let mut rejected = 0u64;
    for id in 0..12u64 {
        match handle.submit(Packet::new(id, 0, PACKET_LEN, 0)) {
            Ok(Submitted::Enqueued) => {}
            Err(SubmitError::Rejected) => rejected += 1,
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(rejected > 0, "2x overload must trip the reject policy");
    let report = rt.shutdown();
    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.rejected_packets(), rejected);
    assert_eq!(report.dropped_packets(), 0);
    assert_eq!(report.served_packets() + rejected, 12);
}

/// (c) Graceful drain under concurrent multi-threaded producers: close
/// mid-stream, and afterwards every packet is accounted for, the
/// residual backlog is fully served, and every worker has joined.
#[test]
fn graceful_drain_with_concurrent_producers() {
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards: 4,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ..RuntimeConfig::default()
    });
    let accepted = Arc::new(AtomicU64::new(0));
    let producers: Vec<_> = (0..3u64)
        .map(|p| {
            let handle = handle.clone();
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    let id = p * 1_000_000 + i;
                    let flow = (id % N_FLOWS as u64) as usize;
                    match handle.submit(Packet::new(id, flow, PACKET_LEN, 0)) {
                        Ok(Submitted::Enqueued) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Submitted::Dropped) => unreachable!("admission is off"),
                        Err(SubmitError::Closed) => return,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            })
        })
        .collect();
    // Let the producers get going, then drain mid-stream. `shutdown`
    // joining all workers IS assertion (c3): it only returns once every
    // worker thread has exited its loop and been joined.
    std::thread::sleep(Duration::from_millis(20));
    let report = rt.shutdown();
    for p in producers {
        p.join().expect("producer panicked");
    }
    let accepted = accepted.load(Ordering::Relaxed);
    assert!(accepted > 0, "producers never got a packet in");
    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.served_packets(), accepted);
    assert_eq!(
        report.served_packets() + report.dropped_packets(),
        report.submitted_packets()
    );
    assert_eq!(report.stats.backlog_flits(), 0);
    assert_eq!(report.shard_cycles.len(), 4, "one final clock per worker");
}
