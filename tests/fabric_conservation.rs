//! Property: the fabric ledger conserves end-to-end under random
//! topologies, routing functions, and seeded egress stalls
//! (DESIGN.md §11.3).
//!
//! For random mesh shapes and fat-tree arities crossed with random
//! flow sets, credit pools, and per-node `StallPlan`s, every packet
//! the fabric accepts must reach exactly one terminal outcome. With
//! no kill faults and no dead-link watchdog, stalls can only delay —
//! so the identity sharpens to `submitted == ejected`, flit-exact per
//! flow. A forwarder or drain path that leaks even one flit across a
//! hop fails here.

use std::time::{Duration, Instant};

use desim::SimRng;
use err_repro::fabric::{Fabric, FabricConfig, FlowSpec, Topology};
use err_repro::runtime::StallPlan;
use proptest::prelude::*;

/// Small shapes only: each case boots one runtime (two threads) per
/// node, so a 3×3 mesh is already 27 threads.
const MESH_SHAPES: [(usize, usize); 6] = [(1, 1), (2, 1), (3, 1), (2, 2), (3, 2), (3, 3)];

fn build_topology(pick: u8) -> Topology {
    match pick {
        0..=5 => {
            let (cols, rows) = MESH_SHAPES[pick as usize];
            Topology::mesh(cols, rows)
        }
        6 => Topology::fat_tree(2),
        _ => Topology::fat_tree(4),
    }
}

proptest! {
    // Each case boots a whole multi-node fabric; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn ledger_conserves_across_random_fabrics(
        seed in 0..u64::MAX,
        topo_pick in 0..8u8,
        n_flows in 2..=6usize,
        packets in 8..32u64,
    ) {
        let topo = build_topology(topo_pick);
        // Fat-tree core switches are transit-only; sources and sinks
        // must be endpoints (every mesh node qualifies).
        let endpoints: Vec<usize> =
            (0..topo.n_nodes()).filter(|&n| topo.is_endpoint(n)).collect();
        let mut rng = SimRng::new(seed);
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|_| FlowSpec {
                src: endpoints[rng.index(endpoints.len())],
                dst: endpoints[rng.index(endpoints.len())],
            })
            .collect();

        // Seeded stalls on one or two random nodes, any link including
        // eject. Durations are bounded, but a stall window expires on
        // its *own node's* flush clock — a stall that parks all of the
        // node's traffic freezes the very clock that would thaw it, so
        // liveness is restored administratively below; the property
        // under test is the ledger, not stall self-expiry.
        let n_stalled = 1 + rng.index(2.min(topo.n_nodes()));
        let mut stalled_nodes = Vec::new();
        while stalled_nodes.len() < n_stalled {
            let node = rng.index(topo.n_nodes());
            if !stalled_nodes.contains(&node) {
                stalled_nodes.push(node);
            }
        }
        let horizon = packets * n_flows as u64 * 4;
        let node_stalls = stalled_nodes
            .iter()
            .map(|&node| {
                let plan = StallPlan::from_rng(
                    &rng.derive(0xFAB0 + node as u64),
                    topo.n_links(node),
                    horizon,
                    1.0 / 64.0,
                    10,
                    200,
                );
                (node, plan)
            })
            .collect();

        let mut cfg = FabricConfig::new(topo, flows.clone());
        cfg.credits = 4 + rng.index(12) as u64;
        cfg.max_backlog = 8 + rng.index(56) as u64;
        cfg.node_stalls = node_stalls;
        let fabric = Fabric::start(cfg);

        // Bounded submits: a stalled source sheds backpressure as
        // refusals, so give each packet a few retries and then move on
        // — an unsubmitted packet is simply absent from the ledger.
        let mut submitted_packets = vec![0u64; n_flows];
        let mut submitted_flits = vec![0u64; n_flows];
        let mut rng = rng.derive(0xC0DE);
        for _ in 0..packets {
            for flow in 0..n_flows {
                let len = 1 + rng.uniform_u32(0, 5);
                for attempt in 0..50 {
                    if fabric.try_submit(flow, len).is_ok() {
                        submitted_packets[flow] += 1;
                        submitted_flits[flow] += u64::from(len);
                        break;
                    }
                    if attempt % 10 == 9 {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                }
            }
        }

        // Thaw loop: spam release_stall until the fabric empties, so a
        // clock-frozen stall window cannot wedge the drain (each spam
        // bounds any freeze to one polling interval).
        let deadline = Instant::now() + Duration::from_secs(20);
        while fabric.in_flight() > 0 && Instant::now() < deadline {
            for &node in &stalled_nodes {
                for link in 0..fabric.topology().n_links(node) {
                    fabric.controller(node).release_stall(link);
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        prop_assert_eq!(fabric.in_flight(), 0, "fabric wedged under stalls");

        let rep = fabric.drain_within(Duration::from_secs(20));
        prop_assert!(!rep.forced, "graceful drain expected");
        prop_assert!(rep.is_conserving(), "ledger out of balance");
        prop_assert_eq!(rep.lost_packets, 0);
        for (flow, snap) in rep.flows.iter().enumerate() {
            // No kills and no dead-link watchdog: stalls delay, they
            // never drop, dead-letter, or reroute.
            prop_assert_eq!(snap.submitted, submitted_packets[flow], "flow {}", flow);
            prop_assert_eq!(snap.ejected_packets, submitted_packets[flow], "flow {}", flow);
            prop_assert_eq!(snap.ejected_flits, submitted_flits[flow], "flow {}", flow);
            prop_assert_eq!(snap.dropped, 0, "flow {}", flow);
            prop_assert_eq!(snap.dead_lettered, 0, "flow {}", flow);
            prop_assert_eq!(snap.rerouted, 0, "flow {}", flow);
        }
    }
}
