//! Integration tests for the credit-based buffered egress stage: stall
//! isolation (the tentpole claim), drain conservation under an active
//! stall, bounded buffering, and sync/buffered equivalence.
//!
//! The isolation test measures wall-clock delivered flits because the
//! claim under test is about *decoupling real threads*: a frozen
//! downstream must not slow the other links' delivery rate. Ratios are
//! taken between back-to-back runs on the same machine, so absolute
//! machine speed cancels out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use err_runtime::{
    AdmissionPolicy, BufferedConfig, DeadLinkPolicy, EgressMode, Runtime, RuntimeConfig, StallPlan,
};
use err_sched::{Discipline, Packet, ServedFlit};

// 64 flows over 4 links: every shard's partition contains flows of
// every link, so a dead link 0 touches all shards in both modes.
const N_LINKS: usize = 4;
const N_FLOWS: usize = 64;
const PACKET_LEN: u32 = 4;

fn buffered(stall_plan: Option<StallPlan>) -> EgressMode {
    EgressMode::Buffered(BufferedConfig {
        ring_capacity: 256,
        credits: 32,
        n_links: N_LINKS,
        stall_plan,
        ..BufferedConfig::default()
    })
}

/// Runs a saturating workload for `window`, returning flits delivered
/// per link during that window. `sync_frozen` (sync mode only) makes
/// the sink block on link-0 flits while set — the synchronous
/// equivalent of a dead downstream.
fn measure_delivered(
    egress: EgressMode,
    sync_frozen: Option<Arc<AtomicBool>>,
    window: Duration,
) -> Vec<u64> {
    let delivered: Arc<Vec<AtomicU64>> =
        Arc::new((0..N_LINKS).map(|_| AtomicU64::new(0)).collect());
    let d2 = Arc::clone(&delivered);
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 4,
            n_flows: N_FLOWS,
            discipline: Discipline::Err,
            // Drop-tail keeps producers non-blocking when the stalled
            // link's flows stop being served.
            admission: AdmissionPolicy::DropTail { max_backlog: 64 },
            egress,
            ..RuntimeConfig::default()
        },
        move |_shard| {
            let delivered = Arc::clone(&d2);
            let frozen = sync_frozen.clone();
            Some(move |_s: usize, f: &ServedFlit| {
                let link = f.flow % N_LINKS;
                if link == 0 {
                    if let Some(flag) = &frozen {
                        while flag.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                }
                delivered[link].fetch_add(1, Ordering::Relaxed);
            })
        },
    );
    let deadline = Instant::now() + window;
    let mut id = 0u64;
    while Instant::now() < deadline {
        for _ in 0..64 {
            let _ = handle.submit(Packet::new(
                id,
                (id % N_FLOWS as u64) as usize,
                PACKET_LEN,
                0,
            ));
            id += 1;
        }
    }
    let counts: Vec<u64> = delivered
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    rt.shutdown();
    counts
}

fn unstalled_sum(counts: &[u64]) -> u64 {
    counts.iter().skip(1).sum()
}

/// The tentpole acceptance criterion: with 1 of 4 links dead under
/// buffered egress, the other links keep >= 90% of their no-stall
/// throughput; the legacy sync path collapses in the same scenario.
#[test]
fn stalled_link_isolation_buffered_while_sync_collapses() {
    let window = Duration::from_millis(250);

    // Buffered: baseline, then with link 0 frozen from flush-clock 0.
    let base_buf = measure_delivered(buffered(None), None, window);
    let stall_buf = measure_delivered(
        buffered(Some(StallPlan::freeze_forever(0, 0))),
        None,
        window,
    );
    let (base, stalled) = (unstalled_sum(&base_buf), unstalled_sum(&stall_buf));
    assert!(
        base > 10_000,
        "baseline too slow to be meaningful: {base_buf:?}"
    );
    assert!(
        stalled as f64 >= 0.9 * base as f64,
        "buffered isolation failed: unstalled links delivered {stalled} with link 0 \
         frozen vs {base} baseline (< 90%)"
    );
    assert!(
        stall_buf[0] <= 256 + 32,
        "frozen link 0 delivered {} flits, beyond ring + credit bound",
        stall_buf[0]
    );

    // Sync: the same dead downstream freezes entire shards.
    let base_sync = measure_delivered(EgressMode::Sync, None, window);
    let frozen = Arc::new(AtomicBool::new(true));
    let f2 = Arc::clone(&frozen);
    // Unfreeze from a watchdog thread after the window so shutdown
    // completes; measurement has already ended by then.
    let unfreezer = std::thread::spawn(move || {
        std::thread::sleep(window + Duration::from_millis(50));
        f2.store(false, Ordering::Release);
    });
    let stall_sync = measure_delivered(EgressMode::Sync, Some(frozen), window);
    unfreezer.join().unwrap();
    let (base_s, stalled_s) = (unstalled_sum(&base_sync), unstalled_sum(&stall_sync));
    assert!(
        (stalled_s as f64) < 0.5 * base_s as f64,
        "sync mode should collapse: unstalled links delivered {stalled_s} of {base_s} \
         baseline with link 0 blocking"
    );
}

/// Shutdown in the middle of an indefinite stall strands nothing: every
/// accepted flit reaches the sink, per-(shard, link) wormhole
/// contiguity holds across the stall, and the watchdog accounts for the
/// never-released stall.
#[test]
fn drain_with_active_stall_strands_no_flit() {
    const SHARDS: usize = 2;
    let streams: Arc<Vec<Mutex<Vec<ServedFlit>>>> =
        Arc::new((0..SHARDS).map(|_| Mutex::new(Vec::new())).collect());
    let s2 = Arc::clone(&streams);
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: SHARDS,
            n_flows: N_FLOWS,
            discipline: Discipline::Err,
            egress: EgressMode::Buffered(BufferedConfig {
                ring_capacity: 64,
                credits: 8,
                n_links: N_LINKS,
                stall_plan: Some(StallPlan::freeze_forever(0, 0)),
                ..BufferedConfig::default()
            }),
            ..RuntimeConfig::default()
        },
        move |shard| {
            let streams = Arc::clone(&s2);
            Some(move |_s: usize, f: &ServedFlit| {
                streams[shard].lock().unwrap().push(*f);
            })
        },
    );
    let mut flits = 0u64;
    for id in 0..2_000u64 {
        let len = 1 + (id % 5) as u32;
        flits += len as u64;
        handle
            .submit(Packet::new(id, (id % N_FLOWS as u64) as usize, len, 0))
            .unwrap();
    }
    // Let the stall bite (some link-0 flows must park) before draining.
    std::thread::sleep(Duration::from_millis(30));
    let report = rt.shutdown();

    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.served_packets(), 2_000);
    let egress = report.stats.egress.as_ref().expect("buffered snapshot");
    assert_eq!(
        egress.flushed_flits(),
        flits,
        "drain left flits in a ring or pending queue"
    );
    let seen: usize = streams.iter().map(|s| s.lock().unwrap().len()).sum();
    assert_eq!(seen as u64, flits, "sink saw fewer flits than were served");

    // Watchdog: the stall began, never released, and was closed out at
    // shutdown with a positive duration.
    let link0 = &egress.links[0];
    assert_eq!(link0.stall_events, 1);
    assert_eq!(
        link0.stalls_completed, 1,
        "drain must close the open window"
    );
    assert!(
        link0.max_stall_cycles > 0,
        "stall spanned deliveries on other links, duration must be positive"
    );
    assert!(link0.mean_stall_cycles > 0.0);

    // Per (shard, link): packets contiguous head..tail — parking whole
    // links preserves wormhole non-interleaving on each output channel.
    for (shard, stream) in streams.iter().enumerate() {
        let stream = stream.lock().unwrap();
        for link in 0..N_LINKS {
            let mut open: Option<(u64, u32)> = None;
            for f in stream.iter().filter(|f| f.flow % N_LINKS == link) {
                match open {
                    None => assert!(
                        f.is_head(),
                        "shard {shard} link {link}: packet {} started at flit {}",
                        f.packet,
                        f.flit_index
                    ),
                    Some((p, i)) => {
                        assert_eq!(
                            f.packet, p,
                            "shard {shard} link {link}: interleaved packets"
                        );
                        assert_eq!(f.flit_index, i + 1);
                    }
                }
                open = if f.is_tail() {
                    None
                } else {
                    Some((f.packet, f.flit_index))
                };
            }
            assert!(
                open.is_none(),
                "shard {shard} link {link}: unfinished packet"
            );
        }
    }
}

/// The bounded-buffering criterion: under a churning stall schedule
/// with a tiny credit pool, no link ever has more than `credits`
/// outstanding flits (so at most `ring_capacity + credits` buffered
/// anywhere), and everything still conserves.
#[test]
fn credit_pool_bounds_buffered_flits_per_link() {
    const CREDITS: u64 = 4;
    let rng = desim::SimRng::new(0xE65);
    // Frequent short stalls across all links over the whole run.
    let plan = StallPlan::from_rng(&rng, N_LINKS, 200_000, 0.005, 20, 200);
    assert!(!plan.is_empty());
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 2,
            n_flows: N_FLOWS,
            discipline: Discipline::Err,
            egress: EgressMode::Buffered(BufferedConfig {
                ring_capacity: 32,
                credits: CREDITS,
                n_links: N_LINKS,
                stall_plan: Some(plan),
                ..BufferedConfig::default()
            }),
            ..RuntimeConfig::default()
        },
        |_shard| Some(|_s: usize, _f: &ServedFlit| {}),
    );
    let mut flits = 0u64;
    for id in 0..5_000u64 {
        let len = 1 + (id % 7) as u32;
        flits += len as u64;
        handle
            .submit(Packet::new(id, (id % N_FLOWS as u64) as usize, len, 0))
            .unwrap();
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "{report:?}");
    let egress = report.stats.egress.as_ref().expect("buffered snapshot");
    assert_eq!(egress.flushed_flits(), flits);
    assert!(egress.stall_events() > 0, "the plan must actually stall");
    for (i, l) in egress.links.iter().enumerate() {
        assert!(
            l.outstanding_peak <= CREDITS,
            "link {i}: {} flits outstanding at once, credit pool is {CREDITS}",
            l.outstanding_peak
        );
        assert_eq!(l.credits_available, CREDITS, "link {i}: credits leaked");
    }
}

/// Buffered egress must not change *what* is scheduled, only how it is
/// delivered: for one shard and an identical pre-loaded workload, every
/// flow sees the identical flit sequence under sync and buffered modes.
#[test]
fn buffered_matches_sync_per_flow_sequences() {
    fn run(egress: EgressMode) -> Vec<ServedFlit> {
        let seen: Arc<Mutex<Vec<ServedFlit>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        let (rt, handle) = Runtime::start_with_egress(
            RuntimeConfig {
                shards: 1,
                n_flows: 8,
                discipline: Discipline::Err,
                egress,
                ..RuntimeConfig::default()
            },
            move |_shard| {
                let seen = Arc::clone(&s2);
                Some(move |_s: usize, f: &ServedFlit| seen.lock().unwrap().push(*f))
            },
        );
        for id in 0..1_000u64 {
            handle
                .submit(Packet::new(id, (id % 8) as usize, 1 + (id % 6) as u32, 0))
                .unwrap();
        }
        rt.shutdown();
        Arc::try_unwrap(seen).unwrap().into_inner().unwrap()
    }

    let sync = run(EgressMode::Sync);
    let buf = run(buffered(None));
    assert_eq!(sync.len(), buf.len(), "flit counts differ");
    for flow in 0..8usize {
        let a: Vec<(u64, u32)> = sync
            .iter()
            .filter(|f| f.flow == flow)
            .map(|f| (f.packet, f.flit_index))
            .collect();
        let b: Vec<(u64, u32)> = buf
            .iter()
            .filter(|f| f.flow == flow)
            .map(|f| (f.packet, f.flit_index))
            .collect();
        assert_eq!(a, b, "flow {flow} diverged between sync and buffered");
    }
}

/// A transient link death under `DeadLinkPolicy::HoldForRecovery`
/// (DESIGN.md §14.2): flits bound for the dead link are held with
/// their credits pinned and replay FIFO when `resurrect` revives it —
/// nothing is dead-lettered, nothing is reordered within a flow, and
/// traffic from phases before, during, and after the outage arrives
/// as one seamless per-flow sequence.
#[test]
fn held_flits_replay_in_flow_fifo_order_across_an_outage() {
    const CREDITS: u64 = 8;
    const PHASE: u64 = 10; // packets per flow per phase
    const LEN: u32 = 2;
    let seen: Arc<Mutex<Vec<ServedFlit>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 1,
            n_flows: 8,
            discipline: Discipline::Err,
            admission: AdmissionPolicy::DropTail { max_backlog: 256 },
            egress: EgressMode::Buffered(BufferedConfig {
                ring_capacity: 64,
                credits: CREDITS,
                n_links: N_LINKS,
                dead_link_policy: DeadLinkPolicy::HoldForRecovery,
                ..BufferedConfig::default()
            }),
            ..RuntimeConfig::default()
        },
        move |_shard| {
            let seen = Arc::clone(&s2);
            Some(move |_s: usize, f: &ServedFlit| seen.lock().unwrap().push(*f))
        },
    );
    let mut next_id = 0u64;
    let mut submit_phase = || {
        for _ in 0..PHASE {
            for flow in 0..8usize {
                handle.submit(Packet::new(next_id, flow, LEN, 0)).unwrap();
                next_id += 1;
            }
        }
    };
    let controller = rt.egress_controller().expect("buffered mode").clone();
    submit_phase();
    std::thread::sleep(Duration::from_millis(20));
    // The outage: link 0 dies under traffic, holding (not dropping)
    // whatever is bound for it.
    controller.declare_dead(0);
    submit_phase();
    std::thread::sleep(Duration::from_millis(50));
    controller.resurrect(0);
    submit_phase();
    let report = rt.shutdown();
    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(report.dropped_packets(), 0, "volumes stay under backlog");
    let egress = report.stats.egress.as_ref().expect("buffered snapshot");
    assert_eq!(
        egress.links[0].dead_letter_flits, 0,
        "a healed outage dead-letters nothing"
    );
    assert!(
        egress.links[0].replayed > 0,
        "flits held across the outage must be counted as replays"
    );
    assert_eq!(egress.links[0].credits_available, CREDITS, "credits leaked");
    // Per-flow FIFO across all three phases: every flow's delivered
    // sequence is exactly its submitted packets, in order, with flit
    // indexes in order within each packet.
    let seen = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
    for flow in 0..8usize {
        let got: Vec<(u64, u32)> = seen
            .iter()
            .filter(|f| f.flow == flow)
            .map(|f| (f.packet, f.flit_index))
            .collect();
        let expect: Vec<(u64, u32)> = (0..3 * PHASE)
            .map(|k| k * 8 + flow as u64)
            .flat_map(|id| (0..LEN).map(move |ix| (id, ix)))
            .collect();
        assert_eq!(got, expect, "flow {flow} reordered across the outage");
    }
}
