//! Property coverage for the §13 flow-ownership authority: a steal
//! racing a salvage over random interleavings conserves every packet
//! and resolves deterministically by epoch.
//!
//! Two properties, two execution styles:
//!
//! * **Scripted interleavings** — both movers' protocol steps (claim /
//!   seize, reroute, release) are interleaved by a proptest-generated
//!   schedule, single-threaded, so the *same schedule replays to the
//!   same outcome* — the §13.2 determinism claim, checked literally by
//!   running every case twice. This is also where
//!   [`Ownership::seize_for_salvage`] is exercised: seizing is only
//!   legal when the seized steal's donor cannot be advancing it
//!   concurrently (the donor *is* the dying thread running salvage),
//!   which the single-threaded script models faithfully.
//! * **Free-running threads** — a thief and a rescuer race with real
//!   parallelism over the claim-from-`Settled` path, and the packet
//!   ledger must still agree with the map: every flow's packets sit at
//!   exactly the shard the [`FlowMap`] names, nothing duplicated,
//!   nothing stranded.

use std::sync::{Arc, Barrier, Mutex};

use err_runtime::{ClaimToken, OwnerState, Ownership};
use proptest::prelude::*;

/// Flits-worth of payload each flow carries in the model ledger.
const PACKETS_PER_FLOW: u64 = 3;

/// One mover (thief or salvager) advanced one protocol stage at a
/// time by the interleaving script.
struct ScriptedMover {
    role: OwnerState,
    /// Claimant id and reroute destination (same shard here: movers
    /// pull flows home).
    me: usize,
    flows: Vec<usize>,
    cursor: usize,
    pending: Option<(usize, ClaimToken)>,
    /// Flows whose reroute CAS this mover won, in win order.
    wins: Vec<usize>,
}

impl ScriptedMover {
    fn new(role: OwnerState, me: usize, flows: Vec<usize>) -> Self {
        Self {
            role,
            me,
            flows,
            cursor: 0,
            pending: None,
            wins: Vec::new(),
        }
    }

    /// Advances one stage: finish a pending claim (reroute + release)
    /// or take the next flow's claim. Returns `false` once this mover
    /// has processed its whole worklist.
    fn step(&mut self, own: &Ownership, ledger: &mut [(usize, u64)]) -> bool {
        if let Some((flow, tok)) = self.pending.take() {
            if own.try_reroute(&tok, self.me) {
                // The reroute CAS is the linearization point: only the
                // winner moves the flow's packets (§13.2), and it does
                // so *before* releasing the claim — exactly the order
                // the runtime's extract/absorb handshake uses.
                ledger[flow].0 = self.me;
                self.wins.push(flow);
            }
            own.release(&tok);
            return true;
        }
        if self.cursor >= self.flows.len() {
            return false;
        }
        let flow = self.flows[self.cursor];
        self.cursor += 1;
        let claimed = match self.role {
            OwnerState::Stealing => own.try_claim(flow, OwnerState::Stealing, self.me),
            // Salvage's claim-or-seize arbitration, as salvage_shard
            // runs it: claim from Settled, else seize a steal whose
            // donor (this thread, in the real protocol) is dying.
            OwnerState::Salvaging => own
                .try_claim(flow, OwnerState::Salvaging, self.me)
                .or_else(|| own.seize_for_salvage(flow, self.me)),
            OwnerState::Settled => unreachable!("movers never claim Settled"),
        };
        if let Some(tok) = claimed {
            self.pending = Some((flow, tok));
        }
        // A lost claim consumes the step: the mover observed the flow
        // held (or already moved) and walks on without touching it.
        true
    }
}

struct Outcome {
    homes: Vec<usize>,
    epochs: Vec<u32>,
    states: Vec<OwnerState>,
    ledger: Vec<(usize, u64)>,
    thief_wins: Vec<usize>,
    salvager_wins: Vec<usize>,
}

/// Runs one full steal-vs-salvage race under `schedule` (true = thief
/// steps next) and returns everything observable about the outcome.
fn run_interleaving(
    n_flows: usize,
    shards: usize,
    thief: usize,
    rescue: usize,
    schedule: &[bool],
) -> Outcome {
    let own = Ownership::new(n_flows, shards);
    // Every flow starts with its packets at the static home the map
    // names at epoch 0.
    let mut ledger: Vec<(usize, u64)> = (0..n_flows)
        .map(|f| (own.shard_of(f).expect("mapped"), PACKETS_PER_FLOW))
        .collect();
    let mut t = ScriptedMover::new(OwnerState::Stealing, thief, (0..n_flows).collect());
    // The salvager walks in reverse so the two worklists meet in the
    // middle and contend for the same flows mid-protocol.
    let mut s = ScriptedMover::new(OwnerState::Salvaging, rescue, (0..n_flows).rev().collect());
    let mut i = 0usize;
    loop {
        let thief_first = schedule.get(i).copied().unwrap_or(i.is_multiple_of(2));
        i += 1;
        // Short-circuit: whoever goes first this round blocks the other
        // from also stepping, so the schedule really is an interleaving.
        let (first, second) = if thief_first {
            (&mut t, &mut s)
        } else {
            (&mut s, &mut t)
        };
        let stepped = first.step(&own, &mut ledger) || second.step(&own, &mut ledger);
        if !stepped {
            break;
        }
    }
    Outcome {
        homes: (0..n_flows).map(|f| own.shard_of(f).unwrap()).collect(),
        epochs: (0..n_flows).map(|f| own.map.epoch_of(f)).collect(),
        states: (0..n_flows).map(|f| own.owner_state(f)).collect(),
        ledger,
        thief_wins: t.wins,
        salvager_wins: s.wins,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// Scripted steal-vs-salvage: per flow, the epoch counts exactly
    /// the successful reroutes, every claim ends released, the packet
    /// ledger agrees with the map, and the whole outcome is a pure
    /// function of the schedule (replay ⇒ identical).
    #[test]
    fn scripted_race_conserves_and_replays_identically(
        n_flows in 2..32usize,
        shards in 2..6usize,
        thief_sel in 0..64usize,
        rescue_sel in 0..64usize,
        schedule in prop::collection::vec(any::<bool>(), 0..192),
    ) {
        let thief = thief_sel % shards;
        let rescue = rescue_sel % shards;
        let out = run_interleaving(n_flows, shards, thief, rescue, &schedule);

        let own_check = Ownership::new(n_flows, shards);
        for f in 0..n_flows {
            let static_home = own_check.shard_of(f).unwrap();
            let t_won = out.thief_wins.contains(&f) as u32;
            let s_won = out.salvager_wins.contains(&f) as u32;
            // Both movers visit every flow, so at least one reroute
            // always lands; a contested flow (seize) yields exactly
            // one winner, sequential visits yield one win each.
            prop_assert!(t_won + s_won >= 1, "flow {f}: no mover won");
            prop_assert_eq!(
                out.epochs[f], t_won + s_won,
                "flow {f}: epoch must count successful reroutes"
            );
            // The final home is the last winner's destination.
            let last_t = out.thief_wins.iter().rposition(|&w| w == f);
            let last_s = out.salvager_wins.iter().rposition(|&w| w == f);
            let expect_home = match (t_won, s_won) {
                (1, 0) => thief,
                (0, 1) => rescue,
                // Both won: the win lists are in global win order only
                // within each mover, but two wins on one flow are
                // necessarily sequential (second claim needs the first
                // release), so whoever claimed later won later — that
                // is whichever mover's *cursor* passed the flow later,
                // which the homes vector itself records. Check the
                // weaker, order-free invariant instead:
                _ => {
                    prop_assert!(
                        out.homes[f] == thief || out.homes[f] == rescue,
                        "flow {f}: double-won flow homed at {}", out.homes[f]
                    );
                    let _ = (last_t, last_s);
                    out.homes[f]
                }
            };
            prop_assert_eq!(
                out.homes[f], expect_home,
                "flow {f} (static {static_home}): map home vs winner"
            );
            // Conservation: the packets live exactly where the map
            // points, none lost, none duplicated.
            prop_assert_eq!(out.ledger[f], (out.homes[f], PACKETS_PER_FLOW), "flow {f}");
            // Every claim ends released — no mover leaks a hold.
            prop_assert_eq!(out.states[f], OwnerState::Settled, "flow {f} left claimed");
        }
        let total: u64 = out.ledger.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, n_flows as u64 * PACKETS_PER_FLOW);

        // Determinism by epoch (§13.2): the same interleaving replays
        // to the identical outcome — homes, epochs, ledger, win lists.
        let replay = run_interleaving(n_flows, shards, thief, rescue, &schedule);
        prop_assert_eq!(out.homes, replay.homes);
        prop_assert_eq!(out.epochs, replay.epochs);
        prop_assert_eq!(out.ledger, replay.ledger);
        prop_assert_eq!(out.thief_wins, replay.thief_wins);
        prop_assert_eq!(out.salvager_wins, replay.salvager_wins);
    }
}

proptest! {
    // Real threads are expensive; fewer, bigger cases.
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// Free-running thief vs rescuer over the claim-from-`Settled`
    /// path: whatever the hardware interleaving, the ledger and the
    /// map agree flow by flow, every claim ends released, and each
    /// flow's epoch equals the number of reroutes that actually won.
    #[test]
    fn threaded_race_keeps_ledger_and_map_in_agreement(
        n_flows in 4..48usize,
        shards in 2..6usize,
        thief_sel in 0..64usize,
        rescue_sel in 0..64usize,
    ) {
        let thief = thief_sel % shards;
        let rescue = rescue_sel % shards;
        let own = Arc::new(Ownership::new(n_flows, shards));
        let ledger: Arc<Vec<Mutex<(usize, u64)>>> = Arc::new(
            (0..n_flows)
                .map(|f| Mutex::new((own.shard_of(f).unwrap(), PACKETS_PER_FLOW)))
                .collect(),
        );
        let barrier = Arc::new(Barrier::new(2));
        let spawn_mover = |dest: usize, role: OwnerState, reversed: bool| {
            let own = Arc::clone(&own);
            let ledger = Arc::clone(&ledger);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut wins = Vec::new();
                let flows: Vec<usize> = if reversed {
                    (0..n_flows).rev().collect()
                } else {
                    (0..n_flows).collect()
                };
                for f in flows {
                    let Some(tok) = own.try_claim(f, role, dest) else {
                        continue;
                    };
                    if own.try_reroute(&tok, dest) {
                        // Winner moves the packets before releasing —
                        // the §13.2 discipline that makes "map says X"
                        // imply "packets at X".
                        *ledger[f].lock().unwrap() = (dest, PACKETS_PER_FLOW);
                        wins.push(f);
                    }
                    own.release(&tok);
                }
                wins
            })
        };
        let t = spawn_mover(thief, OwnerState::Stealing, false);
        let s = spawn_mover(rescue, OwnerState::Salvaging, true);
        let t_wins = t.join().expect("thief thread");
        let s_wins = s.join().expect("rescuer thread");

        let mut total = 0u64;
        for f in 0..n_flows {
            prop_assert_eq!(
                own.owner_state(f), OwnerState::Settled,
                "flow {} left claimed", f
            );
            let wins = t_wins.contains(&f) as u32 + s_wins.contains(&f) as u32;
            prop_assert_eq!(
                own.map.epoch_of(f), wins,
                "flow {}: epoch vs won reroutes", f
            );
            let (at, n) = *ledger[f].lock().unwrap();
            prop_assert_eq!(
                at, own.shard_of(f).unwrap(),
                "flow {}: packets stranded off-map", f
            );
            total += n;
        }
        prop_assert_eq!(total, n_flows as u64 * PACKETS_PER_FLOW);
    }
}
