//! Estimator-vs-fabric cross-validation at integration-test scale
//! (DESIGN.md §12.5): run a seeded mix through the real fabric with
//! one racing producer per source node, and check the err-estimate
//! prediction for every path lands inside its analytical envelope and
//! near the measured §11.8 per-hop attribution. The publishable
//! accuracy gates (p50 ≤ 10% at 800 packets, mean of 3 runs) live in
//! `runtime-bench --estimate`; this test keeps the same machinery
//! honest in seconds, with bounds slack enough for one short run.

use std::time::Duration;

use err_repro::estimate::{estimate, mixes, EstimatorConfig, FlowLoad};
use err_repro::fabric::{Fabric, FabricConfig, FlowSpec, Topology};

const LEN: u32 = 4;
const MAX_BACKLOG: u64 = 8;
const PACKETS: u64 = 150;

/// Measured per-path cycles: the sum of per-hop mean service deltas
/// from one fabric run under racing per-source producers.
fn fabric_path_cycles(flows: &[FlowSpec]) -> Vec<f64> {
    let mut cfg = FabricConfig::new(Topology::mesh(4, 4), flows.to_vec());
    cfg.max_backlog = MAX_BACKLOG;
    let f = Fabric::start(cfg);
    std::thread::scope(|s| {
        for src in 0..16 {
            let mine: Vec<usize> = flows
                .iter()
                .enumerate()
                .filter(|(_, spec)| spec.src == src)
                .map(|(fl, _)| fl)
                .collect();
            if mine.is_empty() {
                continue;
            }
            let f = &f;
            s.spawn(move || {
                for _ in 0..PACKETS {
                    for &flow in &mine {
                        f.submit(flow, LEN).expect("fabric is open");
                    }
                }
            });
        }
    });
    let rep = f.drain_within(Duration::from_secs(60));
    assert!(rep.is_conserving(), "validation run leaked packets");
    (0..flows.len())
        .map(|fl| rep.flow_hops[fl].iter().map(|h| h.mean_cycles()).sum())
        .collect()
}

fn check_mix(name: &str, flows: Vec<FlowSpec>, p50_bound: f64) {
    let topo = Topology::mesh(4, 4);
    let measured = fabric_path_cycles(&flows);
    let loads: Vec<FlowLoad> = flows
        .iter()
        .map(|&spec| FlowLoad {
            spec,
            len: LEN,
            packets: PACKETS,
            weight: 1,
        })
        .collect();
    let cfg = EstimatorConfig {
        max_backlog: MAX_BACKLOG,
        ..EstimatorConfig::default()
    };
    let est = estimate(&topo, &loads, &cfg);

    let mut errs: Vec<f64> = Vec::new();
    for (fl, p) in est.paths.iter().enumerate() {
        assert!(
            p.within_envelope(),
            "{name}: flow {fl} prediction escapes its floor/ceiling envelope"
        );
        assert!(
            measured[fl] >= p.floor_cycles as f64 - 1e-9,
            "{name}: flow {fl} measured {} under the physical floor {}",
            measured[fl],
            p.floor_cycles
        );
        errs.push(((p.cycles - measured[fl]) / measured[fl]).abs());
    }
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let p50 = errs[errs.len() / 2];
    // Ground truth is a live-thread measurement: debug builds serve
    // flits slowly relative to the racing producers, so queues sit
    // deeper than the release-calibrated model expects. Hold the
    // calibrated bound in release; in debug only catch gross breakage
    // (the hotspot mix measures p50 ≈ 0.6 in debug on a loaded host,
    // so ×3 sat exactly on the noise and flickered).
    let bound = if cfg!(debug_assertions) {
        p50_bound * 4.0
    } else {
        p50_bound
    };
    assert!(
        p50 <= bound,
        "{name}: p50 abs path error {p50:.3} over the {bound} integration bound"
    );
}

#[test]
fn transpose_prediction_tracks_the_fabric() {
    check_mix("transpose", mixes::transpose(4, 4), 0.20);
}

#[test]
fn seeded_hotspot_prediction_tracks_the_fabric() {
    let topo = Topology::mesh(4, 4);
    check_mix(
        "hotspot",
        mixes::hotspot_random(&topo, 5, 0x5eed_0002),
        0.20,
    );
}

#[test]
fn estimator_is_deterministic_across_calls() {
    let topo = Topology::mesh(4, 4);
    let loads: Vec<FlowLoad> = mixes::uniform_random(&topo, 0x5eed_0001)
        .into_iter()
        .map(|spec| FlowLoad {
            spec,
            len: LEN,
            packets: PACKETS,
            weight: 1,
        })
        .collect();
    let cfg = EstimatorConfig::default();
    let a = estimate(&topo, &loads, &cfg);
    let b = estimate(&topo, &loads, &cfg);
    assert_eq!(a.interval, b.interval);
    for (pa, pb) in a.paths.iter().zip(&b.paths) {
        assert_eq!(pa.cycles, pb.cycles);
        assert_eq!(pa.wormhole_cycles, pb.wormhole_cycles);
    }
}
