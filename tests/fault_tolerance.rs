//! Tier-1 acceptance for the fault-tolerance layer (DESIGN.md §9).
//!
//! Four parts:
//!
//! * doc–code drift tests in the `tests/migration_stealing.rs` style:
//!   DESIGN.md §9 is a normative spec, so it must keep naming exactly
//!   the lifecycle variants and protocol vocabulary the code exports;
//! * a chaos integration run: a seeded `FaultPlan` kills 1 of 4 shards
//!   mid-run, the runtime finishes without panicking, the ledger
//!   balances including `salvaged`/`lost`, and per-flow emit order is
//!   unchanged vs a fault-free run (except the at-most-one packet cut
//!   mid-wormhole at the death, whose tail is honestly `lost`);
//! * `shutdown_within` under a forever-stalled link: returns within
//!   the deadline instead of hanging, with the abandoned backlog
//!   reported as losses;
//! * a regression for the pre-§9 bug where `Runtime::shutdown`
//!   re-panicked on a panicked worker join.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use desim::SimRng;
use err_runtime::{
    AdmissionPolicy, BufferedConfig, DeadLinkPolicy, EgressMode, FaultKind, FaultPlan, LinkState,
    Runtime, RuntimeConfig, ShardExit, ShardHealth, StallPlan, Submitted, SupervisionConfig,
};
use err_sched::{Packet, ServedFlit};

/// Supervision catches worker panics with `catch_unwind`, which is
/// only possible under unwinding — if a profile ever flips to
/// `panic=abort`, every §9 recovery path silently becomes a crash.
#[test]
// The value is constant *per build* — asserting a build-config
// invariant is the entire point of this test.
#[allow(clippy::assertions_on_constants)]
fn panics_unwind_in_this_build() {
    assert!(
        cfg!(panic = "unwind"),
        "fault tolerance requires -C panic=unwind (catch_unwind is the salvage fence)"
    );
}

/// DESIGN.md §9, as written.
fn design_section_9() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md readable");
    let start = text
        .find("## 9")
        .expect("DESIGN.md must contain a section 9");
    match text[start + 4..].find("\n## ") {
        Some(end) => text[start..start + 4 + end].to_owned(),
        None => text[start..].to_owned(),
    }
}

/// The spec names every lifecycle variant of the real enums, derived
/// via `Debug` so a code rename breaks this test until DESIGN.md §9
/// follows.
#[test]
fn design_section_9_names_the_lifecycle_variants() {
    let spec = design_section_9();
    for exit in [ShardExit::Clean, ShardExit::Panicked, ShardExit::Abandoned] {
        let name = format!("{exit:?}");
        assert!(
            spec.contains(&name),
            "DESIGN.md §9 no longer names shard exit `{name}`"
        );
    }
    for health in [
        ShardHealth::Running,
        ShardHealth::Quarantined,
        ShardHealth::Dead,
        ShardHealth::Exited,
    ] {
        let name = format!("{health:?}");
        assert!(
            spec.contains(&name),
            "DESIGN.md §9 no longer names shard health `{name}`"
        );
    }
    for state in [LinkState::Alive, LinkState::Stalled, LinkState::Dead] {
        let name = format!("{state:?}");
        assert!(
            spec.contains(&name),
            "DESIGN.md §9 no longer names link state `{name}`"
        );
    }
    for policy in [
        DeadLinkPolicy::DropAndAccount,
        DeadLinkPolicy::HoldForRecovery,
    ] {
        let name = format!("{policy:?}");
        assert!(
            spec.contains(&name),
            "DESIGN.md §9 no longer names dead-link policy `{name}`"
        );
    }
}

/// The spec names the public types and verbs the protocol is built
/// from.
#[test]
fn design_section_9_names_the_protocol_vocabulary() {
    let spec = design_section_9();
    for name in [
        "FaultPlan",
        "FaultBoard",
        "shutdown_within",
        "TimedOut",
        "salvaged",
        "lost",
        "heartbeat",
        "resurrect",
        "dead_letter",
        "quarantine",
    ] {
        assert!(
            spec.contains(name),
            "DESIGN.md §9 no longer mentions `{name}`"
        );
    }
}

const CHAOS_FLOWS: usize = 8;
const CHAOS_PACKETS: u64 = 24_000;
const CHAOS_LEN: u32 = 8;

/// First seed whose `FaultPlan::from_rng` draw is exactly one shard
/// panic due inside the run — the chaos scenario of the acceptance
/// criteria, reached through the seeded path rather than the explicit
/// builder. The search is deterministic, so the test replays the same
/// plan forever.
fn seeded_kill_plan(shards: usize) -> FaultPlan {
    for seed in 0..20_000u64 {
        let rng = SimRng::new(seed);
        let plan = FaultPlan::from_rng(&rng, shards, 0, 1.0 / 800.0, 2_000);
        let events = plan.events();
        if events.len() == 1 && events[0].kind == FaultKind::PanicShard && events[0].at >= 200 {
            return plan;
        }
    }
    unreachable!("no seed under 20k yields a lone mid-run shard kill");
}

type FlowLog = Vec<Mutex<Vec<(u64, u32)>>>;

/// Runs the fixed chaos workload, capturing per-flow emissions, and
/// returns (per-flow logs, drain report).
fn chaos_workload(plan: Option<FaultPlan>) -> (Vec<Vec<(u64, u32)>>, err_runtime::DrainReport) {
    let planned_victims: Vec<usize> = plan
        .as_ref()
        .map(|p| {
            p.events()
                .iter()
                .filter(|e| !matches!(e.kind, FaultKind::KillLink(_)))
                .map(|e| e.shard)
                .collect()
        })
        .unwrap_or_default();
    let captured: Arc<FlowLog> =
        Arc::new((0..CHAOS_FLOWS).map(|_| Mutex::new(Vec::new())).collect());
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 4,
            n_flows: CHAOS_FLOWS,
            ring_capacity: 1 << 14,
            supervision: Some(SupervisionConfig::default()),
            fault_plan: plan,
            ..RuntimeConfig::default()
        },
        {
            let captured = Arc::clone(&captured);
            move |_shard| {
                let captured = Arc::clone(&captured);
                Some(move |_s: usize, f: &ServedFlit| {
                    // Only one shard serves a flow at any instant (the
                    // salvage park/absorb handshake keeps it so across a
                    // death), so one lock per flow records a well-defined
                    // per-flow order.
                    captured[f.flow]
                        .lock()
                        .unwrap()
                        .push((f.packet, f.flit_index));
                })
            }
        },
    );
    for id in 0..CHAOS_PACKETS {
        let flow = (id % CHAOS_FLOWS as u64) as usize;
        assert_eq!(
            handle.submit(Packet::new(id, flow, CHAOS_LEN, 0)),
            Ok(Submitted::Enqueued)
        );
    }
    // Wait for every planned shard fault to run its salvage before
    // closing: once `shutdown` flips `closed`, an idle shard may drain
    // out and exit, and a victim dying after that has fewer (or no)
    // rescuers — a legitimate total-loss path, but not the mid-run
    // scenario this test is about.
    if let Some(board) = rt.fault_board() {
        let deadline = Instant::now() + Duration::from_secs(10);
        while planned_victims
            .iter()
            .any(|&v| board.recovery_micros(v).is_none())
        {
            assert!(
                Instant::now() < deadline,
                "planned fault never fired/salvaged"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let report = rt.shutdown();
    let logs = captured.iter().map(|m| m.lock().unwrap().clone()).collect();
    (logs, report)
}

/// The expected fault-free per-flow emission: submission order, flit
/// indices contiguous per packet.
fn expected_flow_log(flow: usize) -> Vec<(u64, u32)> {
    let mut v = Vec::new();
    let mut id = flow as u64;
    while id < CHAOS_PACKETS {
        for idx in 0..CHAOS_LEN {
            v.push((id, idx));
        }
        id += CHAOS_FLOWS as u64;
    }
    v
}

/// Seeded `FaultPlan` kills 1 of 4 shards mid-run: no panic escapes,
/// the ledger balances including `salvaged`/`lost`, and every flow's
/// emit order matches the fault-free run — the only permitted
/// difference is the at-most-one packet whose wormhole was cut by the
/// death: its emitted head is a proper prefix and its unsent tail is
/// exactly what the report counts `lost`.
#[test]
fn seeded_shard_kill_preserves_flow_order_and_conserves() {
    let (clean_logs, clean_report) = chaos_workload(None);
    assert!(clean_report.is_conserving(), "{clean_report:?}");
    assert_eq!(clean_report.served_packets(), CHAOS_PACKETS);
    for (flow, log) in clean_logs.iter().enumerate() {
        assert_eq!(log, &expected_flow_log(flow), "fault-free flow {flow}");
    }

    let plan = seeded_kill_plan(4);
    let victim = plan.events()[0].shard;
    let (logs, report) = chaos_workload(Some(plan));

    assert!(report.is_conserving(), "{report:?}");
    assert!(
        report.exits[victim] == ShardExit::Panicked,
        "victim shard {victim} should be recorded Panicked: {:?}",
        report.exits
    );
    assert!(
        report.salvaged_packets() > 0,
        "a mid-run kill with backlog must salvage something: {report:?}"
    );
    assert!(
        report.lost_packets() <= 1,
        "one death cuts at most one wormhole: {report:?}"
    );
    assert_eq!(
        report.served_packets() + report.lost_packets(),
        CHAOS_PACKETS,
        "{report:?}"
    );

    let mut lost_flits = 0u64;
    let mut cut_packets = 0u64;
    for (flow, log) in logs.iter().enumerate() {
        let expected = expected_flow_log(flow);
        if log == &expected {
            assert_eq!(
                log, &clean_logs[flow],
                "surviving flow {flow} diverged from the fault-free run"
            );
            continue;
        }
        // The flow crossed the death: its log must be the expected
        // sequence with the cut packet's tail (possibly the whole
        // packet) removed — the packet in flight on the dying shard,
        // whose tail cannot be replayed elsewhere without corrupting
        // the wormhole. Greedy in-order match: every expected item the
        // log skipped must belong to that single cut packet, and once
        // cut, a packet may never emit again.
        let mut li = 0usize;
        let mut cut: Option<u64> = None;
        for &(eid, eidx) in &expected {
            if li < log.len() && log[li] == (eid, eidx) {
                assert!(
                    cut != Some(eid),
                    "flow {flow}: packet {eid} resumed after its wormhole was cut"
                );
                li += 1;
                continue;
            }
            match cut {
                None => {
                    cut = Some(eid);
                    cut_packets += 1;
                    lost_flits += 1;
                }
                Some(c) if c == eid => lost_flits += 1,
                Some(c) => panic!(
                    "flow {flow}: packet {eid} flit {eidx} missing but packet {c} \
                     was already cut — one death cuts one wormhole"
                ),
            }
        }
        assert_eq!(
            li,
            log.len(),
            "flow {flow}: emitted flits beyond the submitted sequence (reorder?)"
        );
    }
    assert_eq!(
        cut_packets,
        report.lost_packets(),
        "cut wormholes vs reported lost packets"
    );
    assert_eq!(
        lost_flits,
        report.stats.lost_flits(),
        "unsent tails vs reported lost flits"
    );
}

/// Resurrection (DESIGN.md §13.6): the same seeded mid-run shard kill,
/// but with `SupervisionConfig::resurrection` on, the dying worker
/// bequeaths its scheduler and the supervisor adopts it into a fresh
/// thread — so *nothing* is lost, not even the wormhole in flight: the
/// bequest carries the exact scheduler state between flit emissions,
/// and every flow's emit order is byte-identical to a fault-free run.
#[test]
fn resurrection_recovers_a_killed_shard_with_zero_loss() {
    let plan = seeded_kill_plan(4);
    let victim = plan.events()[0].shard;
    let captured: Arc<FlowLog> =
        Arc::new((0..CHAOS_FLOWS).map(|_| Mutex::new(Vec::new())).collect());
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 4,
            n_flows: CHAOS_FLOWS,
            ring_capacity: 1 << 14,
            supervision: Some(SupervisionConfig {
                resurrection: true,
                ..SupervisionConfig::default()
            }),
            fault_plan: Some(plan),
            ..RuntimeConfig::default()
        },
        {
            let captured = Arc::clone(&captured);
            move |_shard| {
                let captured = Arc::clone(&captured);
                Some(move |_s: usize, f: &ServedFlit| {
                    captured[f.flow]
                        .lock()
                        .unwrap()
                        .push((f.packet, f.flit_index));
                })
            }
        },
    );
    for id in 0..CHAOS_PACKETS {
        let flow = (id % CHAOS_FLOWS as u64) as usize;
        assert_eq!(
            handle.submit(Packet::new(id, flow, CHAOS_LEN, 0)),
            Ok(Submitted::Enqueued)
        );
    }
    // Wait for the kill to fire *and* the successor to be adopted
    // before closing, so the test exercises mid-run resurrection
    // rather than a death racing shutdown.
    let board = rt.fault_board().expect("supervision publishes a board");
    let deadline = Instant::now() + Duration::from_secs(10);
    while board.recovery_micros(victim).is_none() {
        assert!(
            Instant::now() < deadline,
            "planned kill never fired / successor never adopted"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "{report:?}");
    assert_eq!(
        report.lost_packets(),
        0,
        "resurrection adopts the scheduler whole — no wormhole is cut: {report:?}"
    );
    assert_eq!(report.served_packets(), CHAOS_PACKETS, "{report:?}");
    assert_eq!(
        report.salvaged_packets(),
        0,
        "resurrection must not fall back to salvage: {report:?}"
    );
    assert_eq!(
        report.exits[victim],
        ShardExit::Panicked,
        "the shard's death is still on the record even though its \
         lineage recovered: {:?}",
        report.exits
    );
    for (flow, log) in captured.iter().enumerate() {
        let log = log.lock().unwrap();
        assert_eq!(
            *log,
            expected_flow_log(flow),
            "flow {flow} diverged from the fault-free emission order"
        );
    }
}

/// A link whose credits never return, escalated to `Dead` under
/// `HoldForRecovery`, keeps its flits held and its flows parked even
/// through drain mode (drain releases stalls, never deaths — §9.3).
/// `shutdown_within` must still return by its deadline — graceful
/// drain, then forced abort with the abandoned backlog reported as
/// losses — rather than hanging like `shutdown` would.
#[test]
fn shutdown_within_bounds_a_forever_stalled_link() {
    const LINKS: usize = 4;
    const FLOWS: usize = 8;
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards: 2,
        n_flows: FLOWS,
        egress: EgressMode::Buffered(BufferedConfig {
            n_links: LINKS,
            credits: 8,
            ring_capacity: 256,
            // Link 0 never returns a credit from cycle 0 on.
            stall_plan: Some(StallPlan::freeze_forever(0, 0)),
            dead_link_policy: DeadLinkPolicy::HoldForRecovery,
            ..BufferedConfig::default()
        }),
        admission: AdmissionPolicy::DropTail { max_backlog: 512 },
        ..RuntimeConfig::default()
    });
    for id in 0..2_000u64 {
        let _ = handle.submit(Packet::new(id, (id % FLOWS as u64) as usize, 4, 0));
    }
    // The credit-return watchdog's verdict, delivered by hand (same
    // effect, deterministic timing): the stall becomes a death, and
    // HoldForRecovery keeps everything parked waiting for a resurrect
    // that never comes.
    std::thread::sleep(Duration::from_millis(20));
    rt.egress_controller()
        .expect("buffered egress has a controller")
        .declare_dead(0);
    let deadline = Duration::from_millis(400);
    let start = Instant::now();
    let report = rt.shutdown_within(deadline);
    let elapsed = start.elapsed();
    // The promise is deadline ± one drain poll; the slack covers OS
    // scheduling noise on a loaded CI container, not a design margin.
    assert!(
        elapsed < deadline + Duration::from_millis(100),
        "shutdown_within({deadline:?}) took {elapsed:?}"
    );
    assert!(report.forced, "a forever-stall must escalate to abort");
    assert!(
        report.stats.lost_flits() > 0,
        "the stalled link's parked backlog must be reported lost: {report:?}"
    );
    assert!(report.is_conserving(), "{report:?}");
}

/// Regression: before §9, `Runtime::shutdown` called `join().expect()`
/// and re-panicked when an *unsupervised* worker had panicked (e.g. a
/// user sink bug). It must instead report `ShardExit::Panicked` for
/// that shard and return the drain report normally.
#[test]
fn shutdown_reports_worker_panic_instead_of_propagating() {
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards: 2,
            n_flows: 4,
            ..RuntimeConfig::default()
        },
        |_shard| {
            Some(move |_s: usize, f: &ServedFlit| {
                if f.flow == 0 {
                    panic!("sink bug: flow 0 is cursed");
                }
            })
        },
    );
    // Flow 0 detonates whichever shard serves it; flow 1 keeps the
    // runtime busy (on the same shard or the other, either is fine —
    // the point is that shutdown survives the dead worker).
    for id in 0..8u64 {
        let _ = handle.submit(Packet::new(id, (id % 2) as usize, 4, 0));
    }
    // Give the doomed worker time to hit the sink before closing.
    std::thread::sleep(Duration::from_millis(50));
    let report = rt.shutdown();
    assert!(
        report.exits.contains(&ShardExit::Panicked),
        "the panicked worker must surface in exits: {:?}",
        report.exits
    );
    assert!(
        !report.all_clean(),
        "all_clean must be false after a worker panic"
    );
}
