//! Fabric healing (DESIGN.md §14): transient faults must be
//! *transient* — a cut cable that heals loses nothing under
//! `HoldForRecovery`, a flapping cable conserves the ledger and leaks
//! no credits across every cycle, a killed node's revived successor
//! picks up where the corpse left off, and a panicking forwarder is
//! caught by its supervisor instead of wedging the fabric gate.

use std::time::{Duration, Instant};

use desim::SimRng;
use err_repro::fabric::{
    DeadLinkPolicy, DrainOutcome, Fabric, FabricConfig, FabricFaultPlan, FabricReport, FlowSpec,
    Topology,
};
use proptest::prelude::*;

const PKT_LEN: u32 = 4;
const DRAIN: Duration = Duration::from_secs(60);

/// Submits up to `quota[fl]` packets per flow with non-blocking
/// retries until `window` expires: a held flow's admission backlog
/// fills and refuses, and the other flows must keep submitting (and
/// keep the ejection clock moving) regardless. Returns how many each
/// flow actually got in.
fn submit_for(f: &Fabric, quota: &[u64], window: Duration) -> Vec<u64> {
    let deadline = Instant::now() + window;
    let mut sent = vec![0u64; quota.len()];
    loop {
        let mut progressed = false;
        let mut done = true;
        for (fl, n) in sent.iter_mut().enumerate() {
            if *n < quota[fl] {
                done = false;
                if f.try_submit(fl, PKT_LEN).is_ok() {
                    *n += 1;
                    progressed = true;
                }
            }
        }
        if done {
            return sent;
        }
        if !progressed {
            if Instant::now() >= deadline {
                return sent;
            }
            std::thread::yield_now();
        }
    }
}

/// [`submit_for`] for schedules that must admit everything (every cut
/// heals): starvation here is a bug, not an expected outcome.
fn submit_interleaved(f: &Fabric, quota: &[u64]) {
    let sent = submit_for(f, quota, Duration::from_secs(60));
    assert_eq!(sent, quota, "healing schedule starved the submitters");
}

/// §14.2 end-to-end: on a 3×1 line the victim flow 0 → 2 has exactly
/// one path; cutting node 0's east cable is a total outage for it.
/// Under `HoldForRecovery` + a scheduled heal, the outage ends with
/// zero losses and zero dead-letters — every held flit replayed in
/// order — where `DropAndAccount` would have dead-lettered the window.
#[test]
fn transient_cut_heals_with_nothing_lost() {
    let victim = 40u64;
    let keeper = 160u64;
    let topo = Topology::mesh(3, 1);
    let east = topo.link_to(0, 1).expect("0-1 are neighbors");
    let mut cfg = FabricConfig::new(
        topo,
        vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 0, dst: 0 }],
    );
    cfg.max_backlog = 8;
    cfg.credits = 4;
    cfg.dead_link_policy = DeadLinkPolicy::HoldForRecovery;
    cfg.fault_plan = Some(
        FabricFaultPlan::new()
            .kill_link_at(0, east, 10)
            .heal_link_at(0, east, 60),
    );
    let f = Fabric::start(cfg);
    submit_interleaved(&f, &[victim, keeper]);
    let rep = f.drain_within(DRAIN);
    assert!(rep.is_conserving());
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert_eq!(rep.events.len(), 2, "kill and heal both fired");
    assert_eq!(rep.lost_packets, 0);
    assert_eq!(rep.dead_lettered_packets(), 0, "held, not dead-lettered");
    assert_eq!(rep.flows[0].ejected_packets, victim);
    assert_eq!(rep.flows[1].ejected_packets, keeper);
    assert!(
        rep.replayed_flits() > 0,
        "the cut landed mid-run, so some flit must have crossed the death window"
    );
}

/// §14.2 during a drain: the monitor must outlive `drain_within`'s
/// wait loop, because in-flight traffic keeps ejecting through a
/// drain and a heal scheduled inside that window must still fire.
#[test]
fn heal_scheduled_inside_the_drain_window_still_fires() {
    let topo = Topology::mesh(2, 1);
    let east = topo.link_to(0, 1).expect("0-1 are neighbors");
    let mut cfg = FabricConfig::new(
        topo,
        vec![FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 0, dst: 0 }],
    );
    cfg.max_backlog = 8;
    cfg.credits = 4;
    cfg.dead_link_policy = DeadLinkPolicy::HoldForRecovery;
    // The cut fires almost immediately; the heal needs ~50 keeper
    // ejections, most of which happen after the drain has begun.
    cfg.fault_plan = Some(
        FabricFaultPlan::new()
            .kill_link_at(0, east, 2)
            .heal_link_at(0, east, 50),
    );
    let f = Fabric::start(cfg);
    submit_interleaved(&f, &[8, 100]);
    let rep = f.drain_within(DRAIN);
    assert!(rep.is_conserving());
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert_eq!(rep.events.len(), 2, "the heal fired inside the drain");
    assert_eq!(rep.lost_packets, 0);
    assert_eq!(rep.dead_lettered_packets(), 0);
    assert_eq!(rep.flows[0].ejected_packets, 8);
}

/// §14.3: when the fabric holds for a recovery that never comes, the
/// drain must end in bounded time with `HeldForRecovery` — stranded
/// flits dead-lettered honestly at shutdown — instead of spinning to
/// the full deadline.
#[test]
fn unhealed_hold_ends_in_bounded_held_outcome() {
    let topo = Topology::mesh(2, 1);
    let east = topo.link_to(0, 1).expect("0-1 are neighbors");
    let mut cfg = FabricConfig::new(topo, vec![FlowSpec { src: 0, dst: 1 }]);
    cfg.max_backlog = 8;
    cfg.credits = 4;
    cfg.dead_link_policy = DeadLinkPolicy::HoldForRecovery;
    cfg.fault_plan = Some(FabricFaultPlan::new().kill_link_at(0, east, 5));
    let f = Fabric::start(cfg);
    // The cut never heals, so the victim's admission backlog stays
    // full and submission starves by design: stop pushing after a
    // bounded window with whatever got in.
    let sent = submit_for(&f, &[40], Duration::from_secs(2));
    assert!(sent[0] > 0, "some packets were admitted before the cut");
    let started = Instant::now();
    let rep = f.drain_within(Duration::from_secs(300));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a hopeless hold must not spin toward the 300s deadline"
    );
    assert_eq!(rep.outcome, DrainOutcome::HeldForRecovery);
    assert!(rep.is_conserving(), "held flits account at shutdown");
    assert_eq!(rep.events.len(), 1);
    assert!(
        rep.dead_lettered_packets() > 0 || rep.lost_packets > 0,
        "the unhealed backlog reaches a terminal outcome"
    );
}

/// §14.1: a killed node is revived from its boot recipe; traffic held
/// by its neighbors replays into the successor, the corpse's report
/// stays auditable in `prior_reports`, and the ledger conserves
/// across both incarnations.
#[test]
fn killed_node_revives_and_held_traffic_replays() {
    let victim = 40u64;
    let keeper = 200u64;
    let topo = Topology::mesh(3, 1);
    let mut cfg = FabricConfig::new(
        topo,
        vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 0, dst: 0 }],
    );
    cfg.max_backlog = 8;
    cfg.credits = 4;
    cfg.dead_link_policy = DeadLinkPolicy::HoldForRecovery;
    cfg.fault_plan = Some(
        FabricFaultPlan::new()
            .kill_node_at(1, 10)
            .revive_node_at(1, 60),
    );
    let f = Fabric::start(cfg);
    submit_interleaved(&f, &[victim, keeper]);
    let rep = f.drain_within(DRAIN);
    assert!(rep.is_conserving(), "losses counted, nothing leaked");
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert_eq!(rep.events.len(), 2, "kill and revive both fired");
    assert_eq!(
        rep.prior_reports.len(),
        1,
        "the corpse's incarnation stays auditable"
    );
    assert_eq!(rep.prior_reports[0].0, 1);
    assert_eq!(
        rep.dead_lettered_packets(),
        0,
        "neighbors held, not dropped"
    );
    assert_eq!(
        rep.flows[0].ejected_packets + rep.lost_packets,
        victim,
        "every victim packet ejects or is counted lost inside the corpse"
    );
    assert_eq!(rep.flows[1].ejected_packets, keeper);
}

/// §14.4: an injected forwarder panic is caught by the supervisor —
/// the in-hand packet dead-letters, the next-hop cable is poisoned so
/// later tails fail over, and the fabric drains clean with the exit
/// on the report instead of wedging on a crashed flusher.
#[test]
fn injected_forwarder_panic_recovers_with_honest_ledger() {
    let packets = 60u64;
    let topo = Topology::mesh(2, 2);
    let east = topo.link_to(0, 1).expect("0-1 are neighbors");
    let mut cfg = FabricConfig::new(
        topo,
        vec![FlowSpec { src: 0, dst: 3 }, FlowSpec { src: 3, dst: 0 }],
    );
    cfg.max_backlog = 8;
    cfg.credits = 4;
    cfg.fault_plan = Some(FabricFaultPlan::new().panic_forwarder_at(0, 10));
    let f = Fabric::start(cfg);
    submit_interleaved(&f, &[packets, packets]);
    let rep = f.drain_within(DRAIN);
    assert!(rep.is_conserving());
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert_eq!(rep.lost_packets, 0);
    assert_eq!(rep.forwarder_exits.len(), 1, "caught exactly once");
    let exit = &rep.forwarder_exits[0];
    assert_eq!(exit.node, 0);
    assert_eq!(exit.poisoned_link, Some(east), "next-hop cable poisoned");
    assert!(exit.message.contains("injected forwarder panic"));
    assert_eq!(
        rep.flows[0].dead_lettered, 1,
        "only the in-hand packet dies"
    );
    assert_eq!(rep.flows[0].ejected_packets, packets - 1);
    assert!(
        rep.flows[0].rerouted > 0,
        "later tails take the YX alternate"
    );
    assert_eq!(
        rep.flows[1].ejected_packets, packets,
        "reverse flow unharmed"
    );
}

/// Regression (§14 satellite): a fault event scheduled far beyond the
/// run's total ejections must not keep the drain waiting — once the
/// gate is closed and empty the monitor exits on its own, and the
/// drain returns promptly and graceful.
#[test]
fn far_future_event_does_not_stall_the_drain() {
    let mut cfg = FabricConfig::new(Topology::mesh(2, 1), vec![FlowSpec { src: 0, dst: 1 }]);
    cfg.fault_plan = Some(FabricFaultPlan::new().kill_link_at(0, 1, 1_000_000));
    let f = Fabric::start(cfg);
    submit_interleaved(&f, &[20]);
    let started = Instant::now();
    let rep = f.drain_within(Duration::from_secs(300));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "an event that can never fire must not hold the drain open"
    );
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert!(rep.events.is_empty(), "the far-future event never fired");
    assert_eq!(rep.flows[0].ejected_packets, 20);
}

fn assert_flap_invariants(rep: &FabricReport, cycles: u64, victim: u64, keeper: u64, credits: u64) {
    assert!(rep.is_conserving());
    assert_eq!(rep.outcome, DrainOutcome::Graceful);
    assert_eq!(rep.events.len(), (2 * cycles) as usize, "every flap fired");
    assert_eq!(rep.lost_packets, 0);
    assert_eq!(rep.dead_lettered_packets(), 0);
    assert_eq!(rep.flows[0].ejected_packets, victim);
    assert_eq!(rep.flows[1].ejected_packets, keeper);
    // No credit leaks: after the drain every link of every node has
    // its full pool back.
    for (node, nrep) in rep.node_reports.iter().enumerate() {
        let egress = nrep.stats.egress.as_ref().expect("buffered mode");
        for (link, snap) in egress.links.iter().enumerate() {
            assert_eq!(
                snap.credits_available, credits,
                "node {node} link {link} leaked credits across flaps"
            );
        }
    }
}

proptest! {
    // Each case boots a fabric (two nodes, four threads) and runs a
    // seeded flap schedule end to end; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// §14.2 property: for seeded kill→heal schedules of 1..=3 cycles
    /// at random clock offsets, the ledger conserves exactly — no
    /// losses, no dead-letters, no leaked credits — and every victim
    /// packet ejects.
    #[test]
    fn flap_cycles_conserve_ledger_and_credits(
        seed in 0..u64::MAX,
        cycles in 1..=3u64,
    ) {
        let victim = 30u64;
        let keeper = 150u64;
        let topo = Topology::mesh(2, 1);
        let east = topo.link_to(0, 1).expect("0-1 are neighbors");
        // Random strictly-increasing event times the keeper flow can
        // always reach on its own, even with the victim fully held.
        let mut rng = SimRng::new(seed);
        let mut plan = FabricFaultPlan::new();
        let mut at = 0u64;
        for _ in 0..cycles {
            at += 3 + rng.index(15) as u64;
            plan = plan.kill_link_at(0, east, at);
            at += 3 + rng.index(15) as u64;
            plan = plan.heal_link_at(0, east, at);
        }
        prop_assert!(at < keeper, "schedule must stay keeper-reachable");
        let mut cfg = FabricConfig::new(
            topo,
            vec![FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 0, dst: 0 }],
        );
        cfg.max_backlog = 8;
        cfg.credits = 4;
        cfg.dead_link_policy = DeadLinkPolicy::HoldForRecovery;
        cfg.fault_plan = Some(plan);
        let f = Fabric::start(cfg);
        submit_interleaved(&f, &[victim, keeper]);
        let rep = f.drain_within(DRAIN);
        assert_flap_invariants(&rep, cycles, victim, keeper, 4);
    }
}
