//! Reproducibility: every layer of the stack is a pure function of its
//! seed. Reviewers of the original paper could not re-run the authors'
//! simulator; anyone can re-run this one and get bit-identical numbers.

use err_repro::experiments::{fig4, fig6};
use err_repro::sched::Packet;
use err_repro::traffic::flows::{fig4_flows, fig6_flows};
use err_repro::traffic::{PacketTrace, Workload};
use err_repro::wormhole::{ArbiterKind, Mesh2D, MeshNetwork};

#[test]
fn workload_bit_identical_across_runs() {
    let a = PacketTrace::capture(&mut Workload::new(fig4_flows(0.006), 123), 50_000);
    let b = PacketTrace::capture(&mut Workload::new(fig4_flows(0.006), 123), 50_000);
    assert_eq!(a, b);
    let c = PacketTrace::capture(&mut Workload::new(fig4_flows(0.006), 124), 50_000);
    assert_ne!(a, c);
}

#[test]
fn fig4_experiment_bit_identical() {
    let cfg = fig4::Fig4Config {
        cycles: 60_000,
        seed: 9,
        base_rate: 0.006,
    };
    let a = fig4::run(&cfg);
    let b = fig4::run(&cfg);
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.label, sb.label);
        assert_eq!(sa.kbytes, sb.kbytes);
    }
    assert_eq!(a.m, b.m);
}

#[test]
fn fig6_experiment_bit_identical() {
    let cfg = fig6::Fig6Config {
        flows: vec![3, 7],
        cycles: 80_000,
        intervals: 500,
        seed: 33,
    };
    let a = fig6::run(&cfg);
    let b = fig6::run(&cfg);
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.n_flows, pb.n_flows);
        assert_eq!(pa.err_rfm_bytes.to_bits(), pb.err_rfm_bytes.to_bits());
        assert_eq!(pa.drr_rfm_bytes.to_bits(), pb.drr_rfm_bytes.to_bits());
    }
}

#[test]
fn mesh_network_bit_identical() {
    let run = || {
        let mesh = Mesh2D::new(3, 3);
        let mut net = MeshNetwork::new(mesh, 3, ArbiterKind::Err);
        let mut rng = err_repro::desim::SimRng::new(55);
        let mut id = 0;
        for src in 0..9usize {
            for _ in 0..15 {
                let dest = rng.index(9);
                if dest != src {
                    net.inject(
                        src,
                        &Packet::new(id, src, 1 + rng.uniform_u32(0, 9), 0),
                        dest,
                    );
                    id += 1;
                }
            }
        }
        net.run(0, 1_000_000);
        assert!(net.is_idle());
        net.deliveries().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn fig6_flows_same_regardless_of_trailing_flows() {
    // Seed streams are derived per flow, so a 5-flow run's flow 0-2
    // traffic matches a 3-flow run's exactly (same master seed).
    let short = PacketTrace::capture(&mut Workload::new(fig6_flows(3), 7), 20_000);
    let long = PacketTrace::capture(&mut Workload::new(fig6_flows(5), 7), 20_000);
    // Flow rates differ (2/n scaling), so compare only the structure:
    // per-flow length sequences differ with rate, so instead check
    // determinism of the 5-flow capture against itself.
    let long2 = PacketTrace::capture(&mut Workload::new(fig6_flows(5), 7), 20_000);
    assert_eq!(long, long2);
    assert!(!short.packets().is_empty());
}
