//! Cross-validation of err-fabric against the wormhole-net simulator
//! (DESIGN.md §11.5): on a small single-VC mesh the fabric's published
//! per-path latency model must agree, cycle-exact, with what the
//! discrete simulator measures for the same paths, and a deterministic
//! fabric run must account for every flit at every hop.

use std::time::Duration;

use err_repro::fabric::{Fabric, FabricConfig, FlowSpec, Topology};
use err_repro::sched::Packet;
use err_repro::wormhole::{ArbiterKind, Mesh2D, MeshNetwork};

const COLS: usize = 2;
const ROWS: usize = 2;

/// All ordered pairs including the diagonal (a local flow ejects
/// without crossing a cable — hops = 0 — and both models cover it).
fn all_pairs() -> Vec<FlowSpec> {
    let n = COLS * ROWS;
    let mut flows = Vec::with_capacity(n * n);
    for src in 0..n {
        for dst in 0..n {
            flows.push(FlowSpec { src, dst });
        }
    }
    flows
}

/// A packet alone in the network is the serialized workload: its
/// latency is the analytic wormhole minimum `hops + len − 1` (the head
/// pipelines one hop per cycle, the tail trails `len − 1` flit cycles
/// behind). The simulator measures it; the fabric publishes it as
/// [`PathStats::min_cycles`]. They must agree exactly for every
/// (src, dst, len) on the mesh.
///
/// [`PathStats::min_cycles`]: err_repro::fabric::PathStats
#[test]
fn serialized_per_path_latency_matches_the_simulator() {
    let flows = all_pairs();
    let fabric = Fabric::start(FabricConfig::new(Topology::mesh(COLS, ROWS), flows.clone()));
    for (flow, spec) in flows.iter().enumerate() {
        for len in [1u32, 3, 5] {
            let mut net = MeshNetwork::new(Mesh2D::new(COLS, ROWS), 3, ArbiterKind::Err);
            net.inject(spec.src, &Packet::new(0, flow, len, 0), spec.dst);
            net.run(0, 10_000);
            assert!(net.is_idle(), "simulator did not drain {spec:?}");
            let delivery = &net.deliveries()[0];
            assert_eq!(delivery.node, spec.dst);
            let stats = fabric.path_stats(flow, len);
            assert_eq!(
                delivery.delivered_at, stats.min_cycles,
                "{}->{} len {len}: simulator delivered at cycle {} but the fabric \
                 models hops({}) + len - 1 = {}",
                spec.src, spec.dst, delivery.delivered_at, stats.hops, stats.min_cycles,
            );
        }
    }
    let rep = fabric.drain_within(Duration::from_secs(20));
    assert!(rep.is_conserving());
}

/// A deterministic workload on the same mesh: with blocking submits and
/// no faults nothing can drop, dead-letter, or reroute, so the ledger
/// is flit-exact per flow and each node's scheduler serves exactly the
/// flits of the flows whose XY path crosses it.
#[test]
fn deterministic_run_accounts_for_every_flit_at_every_hop() {
    const PACKETS: u64 = 25;
    const LEN: u32 = 4;
    let flows = all_pairs();
    let topo = Topology::mesh(COLS, ROWS);
    // Per-node expected service: every node on a flow's path (source
    // through destination inclusive) serves each of its flits once.
    let mut expected_served = vec![0u64; topo.n_nodes()];
    for (flow, &spec) in flows.iter().enumerate() {
        for node in topo.path(flow, spec) {
            expected_served[node] += PACKETS * u64::from(LEN);
        }
    }
    let fabric = Fabric::start(FabricConfig::new(topo, flows.clone()));
    for _ in 0..PACKETS {
        for flow in 0..flows.len() {
            fabric.submit(flow, LEN).expect("fabric is open");
        }
    }
    let rep = fabric.drain_within(Duration::from_secs(20));
    assert!(!rep.forced, "graceful drain expected");
    assert!(rep.is_conserving());
    assert_eq!(rep.lost_packets, 0);
    for (flow, snap) in rep.flows.iter().enumerate() {
        assert_eq!(snap.submitted, PACKETS, "flow {flow}");
        assert_eq!(snap.ejected_packets, PACKETS, "flow {flow}");
        assert_eq!(
            snap.ejected_flits,
            PACKETS * u64::from(LEN),
            "flow {flow} lost flits in transit"
        );
        assert_eq!(snap.dropped, 0, "flow {flow}");
        assert_eq!(snap.dead_lettered, 0, "flow {flow}");
        assert_eq!(snap.rerouted, 0, "no faults, no reroutes (flow {flow})");
    }
    for (node, rep) in rep.node_reports.iter().enumerate() {
        assert_eq!(
            rep.stats.served_flits(),
            expected_served[node],
            "node {node} served a different flit count than its path membership"
        );
    }
}
