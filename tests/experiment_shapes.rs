//! Scaled-down versions of every experiment in the harness, asserting
//! the qualitative shapes the paper reports. The full-size runs live in
//! `cargo run -p err-experiments --release -- all`; these keep the whole
//! evaluation honest on every `cargo test`.

use err_repro::experiments::{
    ablation, fig3, fig4, fig5, fig6, fmwindow, latency, loadsweep, table1, topo, wormhole_exp,
};

#[test]
fn fig3_trace_matches_reconstruction() {
    let r = fig3::run();
    assert!(r.matches, "trace diverged:\n{:#?}", r.trace);
}

#[test]
fn fig4_shapes() {
    let cfg = fig4::Fig4Config {
        cycles: 250_000,
        seed: 2,
        base_rate: 0.006,
    };
    let r = fig4::run(&cfg);
    let fails = fig4::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
    // Quantify panel (a): under PBRR flow 2 ends up with roughly twice
    // the KBytes of an ordinary flow, while ERR gives everyone ~1/8.
    let err = &r.series[0];
    let total_kb: f64 = err.kbytes.iter().sum();
    for f in 0..8 {
        let share = err.kbytes[f] / total_kb;
        assert!(
            (0.115..0.135).contains(&share),
            "ERR flow {f} share {share:.4}"
        );
    }
}

#[test]
fn fig5_shapes() {
    let cfg = fig5::Fig5Config {
        intensities: vec![1.0, 1.15, 1.3],
        transient: 10_000,
        seeds: (0..5).collect(),
    };
    let r = fig5::run(&cfg);
    let fails = fig5::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn fig6_shapes() {
    let cfg = fig6::Fig6Config {
        flows: vec![2, 6, 10],
        cycles: 300_000,
        intervals: 1_500,
        seed: 12,
    };
    let r = fig6::run(&cfg);
    let fails = fig6::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn table1_bounds() {
    let cfg = table1::Table1Config {
        fm_cycles: 120_000,
        seed: 6,
        op_flow_counts: vec![16],
        ops_per_point: 4_000,
    };
    let r = table1::run(&cfg);
    let fails = table1::check_bounds(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn wormhole_shapes() {
    let cfg = wormhole_exp::WormholeConfig {
        switch_cycles: 50_000,
        mesh_packets_per_node: 20,
        seed: 4,
    };
    let r = wormhole_exp::run(&cfg);
    let fails = wormhole_exp::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn fmwindow_shapes() {
    let cfg = fmwindow::FmWindowConfig {
        flows: 6,
        cycles: 250_000,
        windows: vec![131, 2_053, 32_771],
        intervals: 1_000,
        seed: 21,
    };
    let r = fmwindow::run(&cfg);
    let fails = fmwindow::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn latency_shapes() {
    let cfg = latency::LatencyConfig {
        cycles: 120_000,
        seed: 14,
    };
    let r = latency::run(&cfg);
    let fails = latency::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn topo_shapes() {
    let cfg = topo::TopoConfig {
        horizon: 10_000,
        seed: 6,
        ..Default::default()
    };
    let r = topo::run(&cfg);
    let fails = topo::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn loadsweep_shapes() {
    let cfg = loadsweep::LoadSweepConfig {
        loads: vec![0.05, 0.25, 0.5],
        horizon: 9_000,
        seed: 2,
        ..Default::default()
    };
    let r = loadsweep::run(&cfg);
    let fails = loadsweep::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn ablation_shapes() {
    let cfg = ablation::AblationConfig {
        cycles: 150_000,
        seed: 8,
    };
    let r = ablation::run(&cfg);
    let fails = ablation::check_shapes(&r);
    assert!(fails.is_empty(), "{fails:#?}");
}
