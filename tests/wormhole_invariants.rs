//! Wormhole network integration: conservation, ordering, the
//! no-interleaving invariant, and occupancy-time fairness, exercised
//! through the public crate APIs under randomized traffic.

use err_repro::desim::SimRng;
use err_repro::sched::Packet;
use err_repro::wormhole::{
    ArbiterKind, BlockingSink, Mesh2D, MeshNetwork, Sink, ThrottledSink, WormholeSwitch,
};

#[test]
fn mesh_conserves_flits_under_random_traffic() {
    for seed in 0..5u64 {
        let mesh = Mesh2D::new(4, 4);
        let mut net = MeshNetwork::new(mesh, 3, ArbiterKind::Err);
        let mut rng = SimRng::new(seed);
        let mut id = 0;
        let mut expected_pkts = 0;
        for src in 0..mesh.n_nodes() {
            for _ in 0..30 {
                let dest = rng.index(mesh.n_nodes());
                if dest == src {
                    continue;
                }
                net.inject(
                    src,
                    &Packet::new(id, src, 1 + rng.uniform_u32(0, 19), 0),
                    dest,
                );
                id += 1;
                expected_pkts += 1;
            }
        }
        let injected = net.injected_flits();
        net.run(0, 2_000_000);
        assert!(net.is_idle(), "seed {seed}: network did not drain");
        assert_eq!(net.delivered_flits(), injected, "seed {seed}: flits lost");
        assert_eq!(net.deliveries().len(), expected_pkts);
        assert_eq!(net.in_flight_flits(), 0);
    }
}

#[test]
fn mesh_preserves_source_destination_order() {
    // Wormhole + deterministic XY routing: packets between one (src,
    // dest) pair arrive in injection order.
    let mesh = Mesh2D::new(4, 4);
    let mut net = MeshNetwork::new(mesh, 4, ArbiterKind::Rr);
    let mut rng = SimRng::new(3);
    let mut id = 0u64;
    // Background noise plus an ordered stream 0 -> 15.
    for src in 0..16usize {
        for _ in 0..10 {
            let dest = rng.index(16);
            if dest != src {
                net.inject(
                    src,
                    &Packet::new(1000 + id, src, 1 + rng.uniform_u32(0, 7), 0),
                    dest,
                );
                id += 1;
            }
        }
    }
    for k in 0..25u64 {
        net.inject(0, &Packet::new(k, 0, 4, 0), 15);
    }
    net.run(0, 2_000_000);
    assert!(net.is_idle());
    let stream: Vec<u64> = net
        .deliveries()
        .iter()
        .filter(|d| d.packet < 1000 && d.node == 15 && d.flow == 0)
        .map(|d| d.packet)
        .collect();
    assert_eq!(stream, (0..25).collect::<Vec<_>>());
}

#[test]
fn switch_output_never_interleaves_packets() {
    // Deliveries at a PerfectSink record tails; to check interleaving we
    // watch the sink's flit stream via a recording sink.
    struct RecordingSink {
        flits: Vec<err_repro::wormhole::Flit>,
    }
    impl Sink for RecordingSink {
        fn can_accept(&self, _now: u64) -> bool {
            true
        }
        fn accept(&mut self, flit: err_repro::wormhole::Flit, _now: u64) {
            self.flits.push(flit);
        }
        fn delivered(&self) -> u64 {
            self.flits.len() as u64
        }
    }
    let sink = Box::new(RecordingSink { flits: Vec::new() });
    let mut sw = WormholeSwitch::new(3, vec![ArbiterKind::Err.build(3)], vec![sink]);
    let mut rng = SimRng::new(8);
    let mut id = 0;
    for q in 0..3usize {
        for _ in 0..40 {
            sw.inject(q, &Packet::new(id, q, 1 + rng.uniform_u32(0, 11), 0), 0);
            id += 1;
        }
    }
    sw.run_until_idle(0, 100_000);
    // Downcast back via the public accessor is not possible; rely on the
    // occupancy log + total count instead: each record's `held` >= len
    // and the total delivered equals the total injected.
    let total_len: u64 = sw.occupancy_log().iter().map(|r| r.len as u64).sum();
    assert_eq!(sw.sink(0).delivered(), total_len);
    for rec in sw.occupancy_log() {
        assert!(
            rec.held >= rec.len as u64,
            "occupancy {} below length {}",
            rec.held,
            rec.len
        );
    }
}

#[test]
fn throttled_sink_stretches_occupancy_proportionally() {
    let sink: Box<dyn Sink> = Box::new(ThrottledSink::new(4));
    let mut sw = WormholeSwitch::new(1, vec![ArbiterKind::Err.build(1)], vec![sink]);
    for k in 0..10u64 {
        sw.inject(0, &Packet::new(k, 0, 6, 0), 0);
    }
    sw.run_until_idle(0, 100_000);
    for rec in sw.occupancy_log() {
        // One flit every 4 cycles: occupancy ~4x length.
        let stretch = rec.held as f64 / rec.len as f64;
        assert!(
            (3.0..5.0).contains(&stretch),
            "packet {}: stretch {stretch}",
            rec.packet
        );
    }
}

#[test]
fn err_arbitration_time_shares_converge_under_blocking() {
    // Three queues with wildly different packet sizes (2 / 8 / 32 flits)
    // into a randomly blocking output: ERR gives each ~1/3 of the
    // output's occupied time.
    let sink: Box<dyn Sink> = Box::new(BlockingSink::new(4, 0.1, 0.2));
    let mut sw = WormholeSwitch::new(3, vec![ArbiterKind::Err.build(3)], vec![sink]);
    let mut id = 0;
    for _ in 0..3000 {
        sw.inject(0, &Packet::new(id, 0, 2, 0), 0);
        id += 1;
    }
    for _ in 0..750 {
        sw.inject(1, &Packet::new(id, 1, 8, 0), 0);
        id += 1;
    }
    for _ in 0..190 {
        sw.inject(2, &Packet::new(id, 2, 32, 0), 0);
        id += 1;
    }
    for now in 0..18_000u64 {
        sw.step(now);
    }
    let mut held = [0u64; 3];
    for rec in sw.occupancy_log() {
        held[rec.queue] += rec.held;
    }
    let total: u64 = held.iter().sum();
    for (q, h) in held.iter().enumerate() {
        let share = *h as f64 / total as f64;
        assert!(
            (0.26..0.40).contains(&share),
            "queue {q} share {share:.3}, expected ~1/3 ({held:?})"
        );
    }
}

#[test]
fn mesh_latency_scales_with_distance_when_uncontended() {
    let mesh = Mesh2D::new(8, 1);
    for hops in [1usize, 3, 6] {
        let mut net = MeshNetwork::new(mesh, 4, ArbiterKind::Err);
        net.inject(0, &Packet::new(0, 0, 4, 0), hops);
        net.run(0, 10_000);
        assert!(net.is_idle());
        let lat = net.latency().mean();
        // Lower bound: each hop costs >= 1 cycle of link latency plus the
        // serialization of 4 flits at the end.
        assert!(lat >= (hops + 3) as f64, "{hops} hops: latency {lat}");
        assert!(
            lat < (hops as f64 + 4.0) * 4.0,
            "{hops} hops: latency {lat} too big"
        );
    }
}
