//! Property: the drain ledger balances under arbitrary seeded chaos
//! (DESIGN.md §9.2).
//!
//! For random `FaultPlan`s (shard panics and wedges at random cycles)
//! crossed with random shard counts and admission policies, every
//! submitted packet must be accounted exactly once — served, dropped,
//! rejected, timed out, or lost — and the backlog gauge must read zero
//! after the drain. This is `DrainReport::is_conserving`, the identity
//! the whole salvage protocol exists to preserve; a fault path that
//! leaks or double-counts even one packet fails here.

use std::time::Duration;

use desim::SimRng;
use err_runtime::{
    AdmissionPolicy, FaultPlan, Runtime, RuntimeConfig, SubmitError, SupervisionConfig,
};
use err_sched::Packet;
use proptest::prelude::*;

const FLOWS: usize = 8;

fn admission_strategy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Unlimited),
        (32..512u64).prop_map(|max_backlog| AdmissionPolicy::DropTail { max_backlog }),
        (32..512u64).prop_map(|max_backlog| AdmissionPolicy::Reject { max_backlog }),
        (64..512u64).prop_map(|max_backlog| AdmissionPolicy::Backpressure { max_backlog }),
    ]
}

proptest! {
    // Each case spins up a real multi-threaded runtime (and a stuck
    // shard costs a quarantine deadline), so keep the case count modest
    // and the supervisor aggressive.
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn conservation_holds_under_random_faults(
        seed in 0..u64::MAX,
        shards in 1..=5usize,
        admission in admission_strategy(),
        packets in 1_000..4_000u64,
    ) {
        let rng = SimRng::new(seed);
        // Rate and horizon chosen so plans actually fire mid-run for
        // most draws: a shard's share of the served flits is roughly
        // packets * mean_len / shards.
        let plan = FaultPlan::from_rng(&rng, shards, 0, 1.0 / 500.0, 1_500);
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards,
            n_flows: FLOWS,
            ring_capacity: 1 << 13,
            admission,
            supervision: Some(SupervisionConfig {
                poll: Duration::from_millis(1),
                heartbeat_deadline: Duration::from_millis(15),
                resurrection: false,
            }),
            fault_plan: Some(plan),
            ..RuntimeConfig::default()
        });
        let mut rng = rng.derive(0xC0DE);
        for id in 0..packets {
            let flow = rng.uniform_u32(0, FLOWS as u32 - 1) as usize;
            let len = 1 + rng.uniform_u32(0, 11);
            // Bounded submit: a die-off can close the runtime mid-loop
            // (total loss is a legal outcome and must also conserve),
            // and Backpressure against a collapsing system must not
            // wedge the test. Every outcome is accounted by the ledger.
            match handle.submit_within(Packet::new(id, flow, len, 0), Duration::from_secs(5)) {
                Ok(_) | Err(SubmitError::Rejected | SubmitError::Closed | SubmitError::TimedOut) => {
                }
            }
        }
        let report = rt.shutdown();
        prop_assert!(report.is_conserving(), "ledger out of balance: {report:?}");
        prop_assert_eq!(report.stats.backlog_flits(), 0);
    }
}

/// Pinned instance the property test originally found (seed
/// 852716844335134574: two shards, both planned to die, Backpressure
/// admission). The second death finds no live rescuer and takes the
/// total-loss path; before the fix, that path drained the dead ring
/// without quiescing in-flight submits, so a producer mid-push could
/// land one more packet after the final drain — enqueued, never served
/// or lost, a one-packet ledger leak.
#[test]
fn double_death_total_loss_conserves() {
    let rng = SimRng::new(852_716_844_335_134_574);
    let plan = FaultPlan::from_rng(&rng, 2, 0, 1.0 / 500.0, 1_500);
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards: 2,
        n_flows: FLOWS,
        ring_capacity: 1 << 13,
        admission: AdmissionPolicy::Backpressure { max_backlog: 431 },
        supervision: Some(SupervisionConfig {
            poll: Duration::from_millis(1),
            heartbeat_deadline: Duration::from_millis(15),
            resurrection: false,
        }),
        fault_plan: Some(plan),
        ..RuntimeConfig::default()
    });
    let mut rng = rng.derive(0xC0DE);
    for id in 0..3_142u64 {
        let flow = rng.uniform_u32(0, FLOWS as u32 - 1) as usize;
        let len = 1 + rng.uniform_u32(0, 11);
        match handle.submit_within(Packet::new(id, flow, len, 0), Duration::from_secs(5)) {
            Ok(_) | Err(SubmitError::Rejected | SubmitError::Closed | SubmitError::TimedOut) => {}
        }
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "ledger out of balance: {report:?}");
    assert_eq!(report.stats.backlog_flits(), 0);
    // The draw must actually reproduce the shape that leaked: both
    // shards die, and the second death loses its backlog wholesale.
    assert!(
        report
            .exits
            .iter()
            .all(|e| matches!(e, err_runtime::ShardExit::Panicked)),
        "seed drift: expected both shards to panic, got {:?}",
        report.exits
    );
    assert!(
        report.lost_packets() > 0,
        "seed drift: expected a total-loss salvage, got {report:?}"
    );
}
