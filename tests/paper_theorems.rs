//! End-to-end checks of the paper's analytical results through the
//! public API: Theorem 1 (O(1) work), Lemma 1 / Corollary 1 (surplus
//! bounds), and Theorem 3 (FM < 3m), driven by the real workload
//! generator rather than hand-built traffic.

use err_repro::fairness::FairnessMonitor;
use err_repro::sched::err::ErrScheduler;
use err_repro::sched::{Discipline, Scheduler};
use err_repro::traffic::{ArrivalProcess, FlowSpec, LenDist, Workload};

fn overloaded_specs(n: usize, max_len: u32) -> Vec<FlowSpec> {
    let lengths = LenDist::Uniform { lo: 1, hi: max_len };
    let rate = (2.0 / n as f64 / lengths.mean()).min(1.0);
    (0..n)
        .map(|_| FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate },
            lengths,
        })
        .collect()
}

#[test]
fn theorem3_fm_below_3m_across_seeds_and_sizes() {
    for (seed, n, max_len, cycles) in [
        (1u64, 3usize, 16u32, 60_000u64),
        (2, 6, 64, 120_000),
        (3, 10, 32, 120_000),
    ] {
        let specs = overloaded_specs(n, max_len);
        let mut sched = ErrScheduler::new(n);
        let mut workload = Workload::with_horizon(specs, seed, cycles);
        let mut monitor = FairnessMonitor::new(n);
        let mut arrivals = Vec::new();
        for now in 0..cycles {
            arrivals.clear();
            workload.poll(now, &mut arrivals);
            for pkt in &arrivals {
                monitor.on_enqueue(pkt, now);
                sched.enqueue(*pkt, now);
            }
            if let Some(flit) = sched.service_flit(now) {
                monitor.on_flit(&flit, now);
            }
        }
        monitor.finish(cycles);
        let m = sched.core().largest_served();
        let fm = monitor.exact_fm();
        assert!(m >= 1);
        assert!(
            fm < 3 * m,
            "seed {seed}, n={n}: FM {fm} >= 3m = {} (m = {m})",
            3 * m
        );
    }
}

#[test]
fn lemma1_and_corollary1_hold_under_live_traffic() {
    let n = 5;
    let specs = overloaded_specs(n, 40);
    let mut sched = ErrScheduler::new(n);
    let mut workload = Workload::new(specs, 9);
    let mut arrivals = Vec::new();
    let mut m = 0u64;
    for now in 0..80_000u64 {
        arrivals.clear();
        workload.poll(now, &mut arrivals);
        for pkt in &arrivals {
            sched.enqueue(*pkt, now);
        }
        if let Some(flit) = sched.service_flit(now) {
            if flit.is_tail() {
                m = m.max(flit.len as u64);
                for f in 0..n {
                    let sc = sched.core().surplus_count(f);
                    assert!(sc < m, "SC_{f} = {sc} exceeds m-1 (m = {m})");
                }
                assert!(sched.core().max_sc() < m, "Corollary 1");
            }
        }
    }
    assert_eq!(m, sched.core().largest_served());
}

#[test]
fn theorem1_err_cost_does_not_scale_with_flows() {
    // O(1) work: per-flit time at 8192 flows within a small factor of
    // 32 flows (generous slack for cache effects and timer noise).
    let measure = |n: usize| -> f64 {
        let mut sched = ErrScheduler::new(n);
        let mut id = 0u64;
        for f in 0..n {
            sched.enqueue(err_repro::sched::Packet::new(id, f, 6, 0), 0);
            id += 1;
            sched.enqueue(err_repro::sched::Packet::new(id, f, 6, 0), 0);
            id += 1;
        }
        let ops = 150_000u64;
        let start = std::time::Instant::now();
        for now in 0..ops {
            let flit = sched.service_flit(now).expect("backlogged");
            if flit.is_tail() {
                sched.enqueue(err_repro::sched::Packet::new(id, flit.flow, 6, now), now);
                id += 1;
            }
        }
        start.elapsed().as_nanos() as f64 / ops as f64
    };
    // Warm up the allocator and caches once.
    let _ = measure(32);
    let small = measure(32);
    let large = measure(8192);
    assert!(
        large < small * 10.0,
        "per-flit cost grew from {small:.1} ns to {large:.1} ns across 256x more flows"
    );
}

#[test]
fn drr_needs_lengths_err_does_not() {
    // Structural check of the central claim: DRR's dequeue path inspects
    // the head packet's length before serving (FlowQueues::head_len),
    // while ERR's never does. We verify behaviorally: with identical
    // traffic, DRR's decisions change when lengths are inflated, even
    // when the serve order of the first packet could not (the first
    // visit), whereas ERR serves the same *first packet* regardless —
    // its decision cannot depend on length it has not yet observed.
    let build_traffic = |len0: u32| {
        vec![
            err_repro::sched::Packet::new(0, 0, len0, 0),
            err_repro::sched::Packet::new(1, 1, 2, 0),
        ]
    };
    for len0 in [1u32, 50] {
        // ERR always serves flow 0's packet first (head of ActiveList),
        // no matter its length.
        let mut err = Discipline::Err.build(2);
        for p in build_traffic(len0) {
            err.enqueue(p, 0);
        }
        let first = err.service_flit(0).unwrap();
        assert_eq!(first.flow, 0, "ERR first grant independent of length");
    }
    // DRR with quantum 4: a 50-flit head doesn't fit the deficit, so it
    // *skips* flow 0 — a decision that required knowing the length.
    let mut drr = Discipline::Drr { quantum: 4 }.build(2);
    for p in build_traffic(50) {
        drr.enqueue(p, 0);
    }
    let first = drr.service_flit(0).unwrap();
    assert_eq!(
        first.flow, 1,
        "DRR skipped the long head packet using a-priori length"
    );
}
