//! ERR as a datagram scheduler: protecting well-behaved flows from a
//! bursty neighbor.
//!
//! The paper notes ERR "may also be implemented in Internet routers for
//! fair scheduling of various flows of traffic" and that FCFS "does not
//! provide adequate protection from a bursty source" (§2). Here three
//! well-behaved flows share a link with an aggressive on/off burster;
//! we compare the well-behaved flows' mean delay under FCFS vs ERR.
//!
//! Run with: `cargo run --example internet_router`

use err_repro::desim::P2Quantile;
use err_repro::fairness::DelayRecorder;
use err_repro::sched::Discipline;
use err_repro::traffic::{ArrivalProcess, FlowSpec, LenDist, Workload};

fn specs() -> Vec<FlowSpec> {
    let steady = FlowSpec {
        arrivals: ArrivalProcess::Bernoulli { rate: 0.02 },
        lengths: LenDist::Uniform { lo: 1, hi: 16 },
    };
    let burster = FlowSpec {
        // ~0.9 packets/cycle while ON, ON ~11% of the time: long greedy
        // bursts that would monopolize an FCFS queue.
        arrivals: ArrivalProcess::OnOff {
            rate_on: 0.9,
            p_on: 0.005,
            p_off: 0.04,
        },
        lengths: LenDist::Uniform { lo: 1, hi: 16 },
    };
    vec![steady, steady, steady, burster]
}

fn run(d: &Discipline, seed: u64) -> (f64, f64, f64) {
    const HORIZON: u64 = 400_000;
    let mut sched = d.build(4);
    let mut workload = Workload::with_horizon(specs(), seed, HORIZON);
    let mut delays = DelayRecorder::new(4, 64, 8192);
    // Tail of the well-behaved flows' delays, tracked in O(1) memory.
    let mut steady_p99 = P2Quantile::new(0.99);
    let mut arrivals = Vec::new();
    let mut now = 0;
    loop {
        if now < HORIZON {
            arrivals.clear();
            workload.poll(now, &mut arrivals);
            for pkt in &arrivals {
                sched.enqueue(*pkt, now);
            }
        }
        match sched.service_flit(now) {
            Some(flit) => {
                delays.on_flit(&flit, now);
                if flit.is_tail() && flit.flow < 3 {
                    steady_p99.push((now - flit.arrival) as f64);
                }
            }
            None if now >= HORIZON => break,
            None => {}
        }
        now += 1;
    }
    let steady_mean = (delays.flow_mean(0) + delays.flow_mean(1) + delays.flow_mean(2)) / 3.0;
    (
        steady_mean,
        steady_p99.estimate().unwrap_or(0.0),
        delays.flow_mean(3),
    )
}

fn main() {
    println!("3 well-behaved flows + 1 on/off burster share a router output.\n");
    println!(
        "{:<22} {:>24} {:>18} {:>20}",
        "discipline", "steady flows mean delay", "steady p99", "burster mean delay"
    );
    for d in [
        Discipline::Fcfs,
        Discipline::Err,
        Discipline::Drr { quantum: 16 },
        Discipline::Wfq,
    ] {
        let mut steady = 0.0;
        let mut p99 = 0.0;
        let mut burst = 0.0;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let (s, q, b) = run(&d, seed);
            steady += s;
            p99 += q;
            burst += b;
        }
        println!(
            "{:<22} {:>18.1} cycles {:>11.1} cyc {:>14.1} cycles",
            d.label(),
            steady / SEEDS as f64,
            p99 / SEEDS as f64,
            burst / SEEDS as f64
        );
    }
    println!("\nUnder FCFS the burster's queue spikes inflate everyone's delay;");
    println!("ERR isolates the steady flows and pushes the cost onto the burster —");
    println!("the 'firewall' property the paper motivates, at O(1) cost and without");
    println!("needing packet lengths in advance (unlike DRR/WFQ).");
}
