//! A wormhole switch under downstream congestion: why ERR exists.
//!
//! Four input queues contend for one output whose downstream randomly
//! blocks, so a packet's occupancy of the output is *not* its length and
//! is unknown until its tail flit leaves. Compare ERR arbitration
//! (fairness over occupancy time) against plain round robin (fairness
//! over packet count).
//!
//! Run with: `cargo run --example wormhole_switch`

use err_repro::sched::Packet;
use err_repro::wormhole::{ArbiterKind, BlockingSink, Sink, WormholeSwitch};

fn run(kind: ArbiterKind) -> (Vec<u64>, Vec<u64>, f64) {
    let n_queues = 4;
    let sink: Box<dyn Sink> = Box::new(BlockingSink::new(99, 0.08, 0.16));
    let mut sw = WormholeSwitch::new(n_queues, vec![kind.build(n_queues)], vec![sink]);

    // Queue 0: 32-flit packets; queues 1-3: 4-flit packets; all deeply
    // backlogged toward output 0.
    let mut id = 0;
    for _ in 0..2_000 {
        sw.inject(0, &Packet::new(id, 0, 32, 0), 0);
        id += 1;
        for q in 1..n_queues {
            for _ in 0..8 {
                sw.inject(q, &Packet::new(id, q, 4, 0), 0);
                id += 1;
            }
        }
    }
    for now in 0..150_000u64 {
        sw.step(now);
    }
    let mut held = vec![0u64; n_queues];
    let mut pkts = vec![0u64; n_queues];
    let mut stretch = 0.0;
    for rec in sw.occupancy_log() {
        held[rec.queue] += rec.held;
        pkts[rec.queue] += 1;
        stretch += rec.held as f64 / rec.len as f64;
    }
    stretch /= sw.occupancy_log().len() as f64;
    (held, pkts, stretch)
}

fn main() {
    println!("4 queues -> 1 blocked output. Queue 0 sends 32-flit packets, queues 1-3 send 4-flit packets.\n");
    for kind in [ArbiterKind::Err, ArbiterKind::Rr, ArbiterKind::Fcfs] {
        let (held, pkts, stretch) = run(kind);
        let total: u64 = held.iter().sum();
        println!("{kind:?} arbitration:");
        println!("  mean occupancy/length ratio: {stretch:.2} (service time != packet length)");
        for q in 0..4 {
            println!(
                "  queue {q}: {:>8} cycles of output time ({:>5.1}%), {:>5} packets",
                held[q],
                100.0 * held[q] as f64 / total as f64,
                pkts[q]
            );
        }
        println!();
    }
    println!("ERR splits *output time* ~25% each without ever knowing a packet's cost up front;");
    println!("RR/FCFS split packet counts, handing the long-packet queue most of the port.");
}
