//! Multi-user isolation and differentiated service with weighted ERR.
//!
//! The paper motivates fairness partly by "multi-user environments in
//! parallel systems, with the interconnection network shared by several
//! users" and by "customer-specific differentiated services" (§1). Here
//! a premium user (weight 3) and two standard users (weight 1) share a
//! link; each user's traffic mix differs, yet the bandwidth split tracks
//! the configured weights — and a user flooding the link cannot push the
//! others below their share.
//!
//! Run with: `cargo run --example multiuser_isolation`

use err_repro::sched::werr::WerrScheduler;
use err_repro::sched::Scheduler;
use err_repro::traffic::{ArrivalProcess, FlowSpec, LenDist, Workload};

fn main() {
    // User 0: premium (weight 3), moderate load, large packets.
    // User 1: standard (weight 1), heavy flood of small packets.
    // User 2: standard (weight 1), moderate mixed traffic.
    let specs = vec![
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: 0.04 },
            lengths: LenDist::Uniform { lo: 16, hi: 48 },
        },
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: 0.9 },
            lengths: LenDist::Uniform { lo: 1, hi: 4 },
        },
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: 0.08 },
            lengths: LenDist::Uniform { lo: 1, hi: 16 },
        },
    ];
    let weights = vec![3u64, 1, 1];
    let mut sched = WerrScheduler::new(weights.clone());
    let mut workload = Workload::new(specs, 2024);

    const CYCLES: u64 = 1_000_000;
    let mut totals = [0u64; 3];
    let mut arrivals = Vec::new();
    for now in 0..CYCLES {
        arrivals.clear();
        workload.poll(now, &mut arrivals);
        for pkt in &arrivals {
            sched.enqueue(*pkt, now);
        }
        if let Some(flit) = sched.service_flit(now) {
            totals[flit.flow] += 1;
        }
    }

    let served: u64 = totals.iter().sum();
    println!("weighted ERR on a shared link, {CYCLES} cycles (flit = 8 B):\n");
    println!(
        "{:<10} {:>7} {:>14} {:>15} {:>15}",
        "user", "weight", "MB served", "share", "entitlement"
    );
    let wsum: u64 = weights.iter().sum();
    for (u, &t) in totals.iter().enumerate() {
        println!(
            "{:<10} {:>7} {:>11.2} MB {:>14.1}% {:>14.1}%",
            format!("user {u}"),
            weights[u],
            (t * 8) as f64 / 1e6,
            100.0 * t as f64 / served as f64,
            100.0 * weights[u] as f64 / wsum as f64,
        );
    }
    println!(
        "\nUser 1 floods the link (≈0.9 packets/cycle) yet cannot exceed its 20% share;\n\
         the premium user's 60% holds. Isolation comes from Eq. (2)'s surplus memory,\n\
         with O(1) work per packet and no packet-length oracle."
    );
}
