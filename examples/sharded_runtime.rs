//! Sharded runtime tour: multi-threaded producers feeding a 4-shard ERR
//! runtime through admission control, then a graceful drain.
//!
//! Run with: `cargo run --release --example sharded_runtime`
//!
//! Demonstrates the full pipeline of the `err-runtime` crate:
//!
//! 1. a `Runtime` with four shard workers, each privately running ERR;
//! 2. `traffic_gen::par_feed` submitting a 64-flow Bernoulli workload
//!    from two producer threads concurrently;
//! 3. drop-tail admission bounding every flow's outstanding flits;
//! 4. `shutdown()` serving the residual backlog and joining the workers,
//!    with the conservation invariant checked on the final report.

use err_repro::runtime::{AdmissionPolicy, Runtime, RuntimeConfig, SubmitError, Submitted};
use err_repro::sched::Discipline;
use err_repro::traffic::{ArrivalProcess, FlowSpec, LenDist};

fn main() {
    const N_FLOWS: usize = 64;
    const SHARDS: usize = 4;
    const HORIZON: u64 = 200_000;

    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards: SHARDS,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        admission: AdmissionPolicy::DropTail { max_backlog: 512 },
        ..RuntimeConfig::default()
    });
    println!("started {SHARDS} shard workers, {N_FLOWS} flows, drop-tail cap 512 flits/flow");
    for flow in [0usize, 1, 17, 63] {
        println!("  flow {flow:2} -> shard {}", handle.shard_of(flow));
    }

    // Two producer threads replay the same seeded workload a serial
    // Workload would generate, partitioned by flow.
    let specs: Vec<FlowSpec> = (0..N_FLOWS)
        .map(|_| FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: 0.02 },
            lengths: LenDist::Uniform { lo: 1, hi: 32 },
        })
        .collect();
    let submit_handle = handle.clone();
    let offered =
        err_repro::traffic::par_feed(specs, 7, HORIZON, 2, move |pkt| {
            match submit_handle.submit(pkt) {
                Ok(Submitted::Enqueued | Submitted::Dropped) => true,
                Err(SubmitError::Closed) => false,
                Err(e) => panic!("submit failed: {e}"),
            }
        });

    let live = handle.stats();
    println!(
        "offered {offered} packets from 2 producers; live: {} enqueued, {} dropped, {} served",
        live.enqueued_packets(),
        live.dropped_packets(),
        live.served_packets()
    );

    let report = rt.shutdown();
    println!("drained: every worker joined, report:");
    for s in &report.stats.shards {
        println!(
            "  shard {}: {:>6} pkts in, {:>6} served, {:>7} flits, {} parks",
            s.shard, s.enqueued_packets, s.served_packets, s.served_flits, s.parks
        );
    }
    println!(
        "totals: {} submitted = {} served + {} dropped (loss rate {:.4})",
        report.submitted_packets(),
        report.served_packets(),
        report.dropped_packets(),
        report.stats.loss_rate()
    );
    println!(
        "aggregate {:.2} flits/shard-cycle over {} shards",
        report.flits_per_shard_cycle(),
        report.shard_cycles.len()
    );
    assert!(report.is_conserving(), "conservation violated: {report:?}");
    println!("conservation invariant holds ✓");
}
