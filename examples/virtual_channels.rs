//! Virtual channels and the two scheduling points of a wormhole switch.
//!
//! One output link, two traffic classes: 32-flit DMA transfers on VC 0
//! and latency-sensitive 1-4-flit messages on the last VC. Sweeping the
//! VC count shows head-of-line blocking disappearing; the stage-2 link
//! scheduler (flit round robin vs packet-granular ERR) trades the short
//! class's latency against strict packet contiguity on the link.
//!
//! Run with: `cargo run --release --example virtual_channels`

use err_repro::desim::{OnlineStats, SimRng};
use err_repro::sched::Packet;
use err_repro::wormhole::{ArbiterKind, LinkSched, VcSwitch};

fn run(n_vcs: usize, link: LinkSched) -> (f64, f64) {
    let mut rng = SimRng::new(7);
    let mut sw = VcSwitch::new(2, n_vcs, ArbiterKind::Err, link, 8);
    // Staggered, ~70% load: one long packet per 80 cycles, one short
    // message per 8 cycles.
    let horizon = 80_000u64;
    let mut schedule = Vec::new();
    let mut t = 0;
    while t < horizon {
        schedule.push((t, 0usize, 0usize, 32u32));
        t += 80;
    }
    let mut t = 3;
    while t < horizon {
        schedule.push((t, 1, n_vcs - 1, 1 + rng.uniform_u32(0, 3)));
        t += 8;
    }
    schedule.sort_by_key(|&(t, ..)| t);
    let (mut cursor, mut now, mut id) = (0usize, 0u64, 0u64);
    while cursor < schedule.len() || !sw.is_idle() {
        while cursor < schedule.len() && schedule[cursor].0 <= now {
            let (t, port, vc, len) = schedule[cursor];
            sw.inject(port, vc, &Packet::new(id, port, len, t));
            id += 1;
            cursor += 1;
        }
        sw.step(now);
        now += 1;
    }
    let mut short = OnlineStats::new();
    let mut long = OnlineStats::new();
    for d in sw.deliveries() {
        let delay = (d.departed_at - d.injected_at) as f64;
        if d.input == 0 {
            long.push(delay);
        } else {
            short.push(delay);
        }
    }
    (short.mean(), long.mean())
}

fn main() {
    println!("One link; 32-flit transfers on VC 0 vs 1-4-flit messages, ~70% load.\n");
    println!(
        "{:<28} {:>22} {:>22}",
        "configuration", "short msg mean delay", "long xfer mean delay"
    );
    for (vcs, link) in [
        (1usize, LinkSched::FlitRr),
        (2, LinkSched::FlitRr),
        (4, LinkSched::FlitRr),
        (4, LinkSched::Err),
    ] {
        let (s, l) = run(vcs, link);
        println!(
            "{:<28} {:>16.1} cyc {:>16.1} cyc",
            format!("{vcs} VC(s), link={link:?}"),
            s,
            l
        );
    }
    println!(
        "\nWith one VC a short message can sit a full 32-flit transfer behind the\n\
         output queue; flit-tagged VCs let the link interleave and the short\n\
         class cuts through. Packet-granular ERR at the link keeps per-VC\n\
         bandwidth fair without flit interleaving — the trade §1 describes."
    );
}
