//! Quickstart: schedule packets from three flows with Elastic Round
//! Robin and watch the allowance/surplus mechanism at work.
//!
//! Run with: `cargo run --example quickstart`

use err_repro::sched::err::ErrScheduler;
use err_repro::sched::{Packet, Scheduler};

fn main() {
    // Three flows share one output link. Flow 0 sends long packets,
    // flows 1 and 2 short ones; everyone is backlogged.
    let mut sched = ErrScheduler::new(3);
    sched.core_mut().set_trace(true);

    let mut id = 0;
    for round in 0..50u32 {
        sched.enqueue(Packet::new(id, 0, 24, 0), 0); // long packets
        id += 1;
        for flow in 1..3 {
            for _ in 0..3 {
                sched.enqueue(Packet::new(id, flow, 2 + round % 4, 0), 0);
                id += 1;
            }
        }
    }

    // Serve one flit per cycle. Measure shares over the first 1200
    // cycles, while every flow is still backlogged — that is the regime
    // Theorem 3 speaks about.
    let mut totals = [0u64; 3];
    let mut now = 0;
    const MEASURE: u64 = 1200;
    while now < MEASURE {
        let flit = sched.service_flit(now).expect("all flows backlogged");
        totals[flit.flow] += 1;
        now += 1;
    }
    println!("ERR quickstart: shares over {MEASURE} backlogged cycles: {totals:?}");
    let m = sched.core().largest_served();
    let spread = totals.iter().max().unwrap() - totals.iter().min().unwrap();
    println!(
        "largest packet served (m) = {m} flits; spread {spread} < 3m = {} (Theorem 3)",
        3 * m
    );
    assert!(spread < 3 * m);
    // Drain the rest.
    while sched.service_flit(now).is_some() {
        now += 1;
    }
    println!();

    println!("first three rounds of the ERR trace (Eq. 1-2 in action):");
    println!(
        "{:>5} {:>5} {:>10} {:>6} {:>8}",
        "round", "flow", "allowance", "sent", "surplus"
    );
    for rec in sched.core_mut().take_trace().iter().take(9) {
        println!(
            "{:>5} {:>5} {:>10} {:>6} {:>8}",
            rec.round, rec.flow, rec.allowance, rec.sent, rec.surplus
        );
    }
}
