//! A 4×4 wormhole mesh: XY routing, credit flow control, and the effect
//! of output arbitration on end-to-end latency under a hotspot.
//!
//! Run with: `cargo run --example mesh_network`

use err_repro::desim::SimRng;
use err_repro::sched::Packet;
use err_repro::wormhole::{ArbiterKind, Mesh2D, MeshNetwork};

fn run(kind: ArbiterKind, seed: u64) -> (f64, f64, usize, u64) {
    let mesh = Mesh2D::new(4, 4);
    let mut net = MeshNetwork::new(mesh, 4, kind);
    let mut rng = SimRng::new(seed);
    let hotspot = mesh.node(1, 1);
    let mut id = 0;
    // Mixed workload: 40% of packets target the hotspot, the rest are
    // uniform; lengths 2-16 flits.
    for src in 0..mesh.n_nodes() {
        for _ in 0..80 {
            let dest = if rng.bernoulli(0.4) {
                hotspot
            } else {
                rng.index(mesh.n_nodes())
            };
            if dest == src {
                continue;
            }
            net.inject(
                src,
                &Packet::new(id, src, 2 + rng.uniform_u32(0, 14), 0),
                dest,
            );
            id += 1;
        }
    }
    let end = net.run(0, 5_000_000);
    assert!(net.is_idle(), "mesh did not drain");
    let lat = net.latency();
    (
        lat.mean(),
        lat.max().unwrap_or(0.0),
        net.deliveries().len(),
        end,
    )
}

fn main() {
    println!("4x4 wormhole mesh, XY routing, 4-flit input buffers, hotspot at (1,1).\n");
    println!(
        "{:<8} {:>16} {:>14} {:>12} {:>12}",
        "arbiter", "mean latency", "max latency", "delivered", "drain cycle"
    );
    for kind in [ArbiterKind::Err, ArbiterKind::Rr, ArbiterKind::Fcfs] {
        let mut mean = 0.0;
        let mut max: f64 = 0.0;
        let mut delivered = 0;
        let mut drain = 0;
        const SEEDS: u64 = 3;
        for seed in 1..=SEEDS {
            let (m, mx, d, e) = run(kind, seed);
            mean += m / SEEDS as f64;
            max = max.max(mx);
            delivered += d;
            drain = drain.max(e);
        }
        println!(
            "{:<8} {:>10.1} cyc {:>10.0} cyc {:>12} {:>12}",
            format!("{kind:?}"),
            mean,
            max,
            delivered,
            drain
        );
    }
    println!(
        "\nEvery arbiter drains the same traffic (wormhole + XY is deadlock-free);\n\
         the interesting part is *who waits*: ERR keeps port time fair per input\n\
         under back-pressure, where a blocked long packet would otherwise hold\n\
         shared links while cheaper traffic starves."
    );
}
