//! Torus vs mesh, and why the dateline virtual channel exists.
//!
//! A 6×6 torus halves worst-case distances relative to a mesh — but its
//! wrap-around links close a channel-dependency cycle that deadlocks
//! naive wormhole routing. The dateline scheme (packets switch to VC 1
//! when they cross a dimension's wrap link) breaks the cycle; this
//! example measures the latency win and then demonstrates the deadlock
//! by switching the dateline off.
//!
//! Run with: `cargo run --release --example torus_network`

use err_repro::desim::SimRng;
use err_repro::sched::Packet;
use err_repro::wormhole::{ArbiterKind, Mesh2D, MeshNetwork, Torus2D, TorusNetwork};

fn main() {
    // Uniform random traffic on 6x6.
    let (cols, rows) = (6usize, 6usize);
    let mut rng = SimRng::new(42);
    let mut pairs = Vec::new();
    for src in 0..cols * rows {
        for _ in 0..20 {
            let dest = rng.index(cols * rows);
            if dest != src {
                pairs.push((src, dest, 2 + rng.uniform_u32(0, 10)));
            }
        }
    }

    let tm = Torus2D::new(cols, rows);
    let mut torus = TorusNetwork::new(tm, 4, ArbiterKind::Err);
    let mm = Mesh2D::new(cols, rows);
    let mut mesh = MeshNetwork::new(mm, 4, ArbiterKind::Err);
    for (k, &(s, d, len)) in pairs.iter().enumerate() {
        torus.inject(s, &Packet::new(k as u64, s, len, 0), d);
        mesh.inject(s, &Packet::new(k as u64, s, len, 0), d);
    }
    torus.run(0, 5_000_000);
    mesh.run(0, 5_000_000);
    assert!(torus.is_idle() && mesh.is_idle());

    println!(
        "6x6, uniform random traffic, {} packets, ERR arbitration:\n",
        pairs.len()
    );
    println!(
        "  mesh : mean latency {:>7.1} cycles ({} delivered)",
        mesh.latency().mean(),
        mesh.deliveries().len()
    );
    println!(
        "  torus: mean latency {:>7.1} cycles ({} delivered)  <- wrap links halve distances",
        torus.latency().mean(),
        torus.deliveries().len()
    );

    // The deadlock demo: same ring-pressure traffic, dateline on vs off.
    let t = Torus2D::new(6, 2);
    let build = |dateline: bool| {
        let mut net = TorusNetwork::new(t, 1, ArbiterKind::Rr);
        if !dateline {
            net.disable_dateline_for_ablation();
        }
        let mut id = 0;
        for x in 0..6usize {
            for _ in 0..6 {
                net.inject(
                    t.node(x, 0),
                    &Packet::new(id, x, 6, 0),
                    t.node((x + 3) % 6, 0),
                );
                id += 1;
            }
        }
        net
    };
    let mut with = build(true);
    with.run(0, 200_000);
    let mut without = build(false);
    without.run(0, 200_000);
    println!("\nring-pressure workload (36 packets around one ring, 1-flit buffers):");
    println!(
        "  dateline ON : drained = {:5}, delivered {} / 36",
        with.is_idle(),
        with.deliveries().len()
    );
    println!(
        "  dateline OFF: drained = {:5}, delivered {} / 36   <- wormhole deadlock",
        without.is_idle(),
        without.deliveries().len()
    );
}
