//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — implemented as a plain
//! wall-clock harness: per benchmark it warms up briefly, takes
//! `sample_size` timed samples, and prints median/min/max ns per
//! iteration (plus element throughput when configured). No statistics,
//! plots, or baselines; swap the workspace dependency back to the real
//! crate for those.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a group's benchmarks.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
            throughput: None,
        }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\ngroup {name}");
        BenchmarkGroup {
            _c: self,
            name,
            settings: Settings::default(),
        }
    }

    /// Runs a standalone benchmark (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            _c: self,
            name: String::new(),
            settings: Settings::default(),
        };
        group.bench_function(id, f);
        self
    }
}

/// Units the measured iterations process, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the throughput used to derive rates for following benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.settings);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.settings);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing driver handed to each benchmark closure. Measurement happens
/// inside [`iter`](Self::iter) so the routine may borrow locals.
pub struct Bencher {
    settings: Settings,
    routine_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(settings: Settings) -> Self {
        Self {
            settings,
            routine_ns: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Measures the routine: warms it up, picks an iteration count
    /// targeting the group's measurement time, and records
    /// `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut run = |iters: u64| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        };
        // Warm-up: single iterations until the warm-up budget is spent,
        // which also yields a first per-iter estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_elapsed = Duration::ZERO;
        while warm_elapsed < self.settings.warm_up || warm_iters == 0 {
            warm_elapsed += run(1);
            warm_iters += 1;
            if warm_start.elapsed() > self.settings.warm_up * 4 {
                break;
            }
        }
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns =
            self.settings.measurement_time.as_nanos() as f64 / self.settings.sample_size as f64;
        self.iters_per_sample = (budget_ns / est_ns).max(1.0).round() as u64;
        self.routine_ns.clear();
        for _ in 0..self.settings.sample_size {
            let d = run(self.iters_per_sample);
            self.routine_ns
                .push(d.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }

    fn report(self, group: &str, id: &str) {
        let label = if group.is_empty() {
            id.to_owned()
        } else {
            format!("{group}/{id}")
        };
        if self.routine_ns.is_empty() {
            eprintln!("  {label}: no routine registered");
            return;
        }
        let mut s = self.routine_ns;
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let (min, max) = (s[0], s[s.len() - 1]);
        let rate = match self.settings.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / median * 1e3 / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        eprintln!(
            "  {label}: median {median:.1} ns/iter (min {min:.1}, max {max:.1}, \
             {} iters x {} samples){rate}",
            self.iters_per_sample,
            s.len()
        );
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, honouring `--test` (smoke mode
/// used by `cargo test --benches`) by still running the benches once.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 128u64), &128u64, |b, &n| {
            b.iter(move || (0..n).sum::<u64>());
        });
        group.finish();
    }
}
