//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in. Deriving is legal on any item and expands to nothing; the
//! annotations stay in place for when the real crates are restored.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` compiling offline.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` compiling offline.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
