//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`rngs::SmallRng`] (a
//! xoshiro256++ generator, the same algorithm real `rand 0.8` uses for
//! `SmallRng` on 64-bit targets), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The streams are deterministic but **not** bit-identical to the real
//! crate's; all consumers in this workspace only rely on determinism and
//! statistical quality, not on specific values.

#![warn(missing_docs)]

/// Core infallible generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` into `[0, span)` by fixed-point scaling.
#[inline]
fn scale_u64(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + scale_u64(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + scale_u64(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit
    /// `SmallRng`. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(5..=9);
            assert!((5..=9).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn f64_uniform_mean() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
