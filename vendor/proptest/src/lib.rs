//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * [`Strategy`] implemented for integer ranges, tuples, [`Just`], and
//!   [`collection::vec`];
//! * [`any`]`::<bool>()` via a tiny [`Arbitrary`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assume!`], and [`prop_oneof!`] macros.
//!
//! Differences from the real crate: no shrinking (a failing case is
//! reported with its full input instead of a minimized one) and a
//! deterministic per-test seed — derived from the test name, overridable
//! with the `PROPTEST_SEED` environment variable — so CI runs are
//! reproducible.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator feeding strategies (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `name`, XOR-ed with the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                h ^= v;
            }
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than the real crate's 256: there is no shrinking here,
        // and the workspace's cases are simulation-heavy.
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the real crate's
    /// `Strategy::prop_map`, minus shrinking).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy producing a fixed value (cloned per case).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `bool` drawing both values uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify arm types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

/// Mirror of the real crate's `prop` module path (`prop::collection`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the `proptest!` macros need in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// over `cases` random inputs. On failure the generating inputs are
/// printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = {
                        $(let $arg = ::core::clone::Clone::clone(&$arg);)+
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            move || { $body }
                        ))
                    };
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs:",
                            stringify!($name), case + 1, cfg.cases
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let s = collection::vec((0usize..4, 1u32..=16), 1..50);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 50);
            for (f, len) in v {
                assert!(f < 4);
                assert!((1..=16).contains(&len));
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires arguments, assumptions, and assertions.
        #[test]
        fn macro_end_to_end(xs in collection::vec(0u64..100, 1..20), flag in any::<bool>()) {
            prop_assume!(!xs.is_empty());
            let total: u64 = xs.iter().sum();
            prop_assert!(total <= 100 * xs.len() as u64);
            let _ = flag;
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
