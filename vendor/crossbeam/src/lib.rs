//! Minimal offline stand-in for `crossbeam`.
//!
//! Only the surface the workspace consumes is provided: the
//! [`channel::unbounded`] and [`channel::bounded`] constructors, backed
//! by `std::sync::mpsc`. The semantics the callers rely on — cloneable
//! senders, blocking receive, iteration until all senders drop — are
//! identical; crossbeam's multi-consumer receivers and `select!` are not
//! provided (nothing here uses them).

#![warn(missing_docs)]

/// Multi-producer channels (std-backed subset of `crossbeam-channel`).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError, TrySendError,
    };

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded MPSC channel; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_fan_in_preserves_messages() {
        let (tx, rx) = channel::unbounded::<usize>();
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(k * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<usize> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_and_delivers() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err());
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![2, 3]);
    }
}
