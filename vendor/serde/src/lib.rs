//! Minimal offline stand-in for `serde`.
//!
//! Nothing in this workspace currently serializes at runtime (there is no
//! `serde_json`/`bincode` consumer), but many types carry
//! `#[derive(Serialize, Deserialize)]` so they are ready for one. This
//! stub keeps those annotations compiling without network access: the
//! traits are markers and the derive macros (re-exported from
//! `serde_derive` under the `derive` feature) expand to nothing.
//!
//! Swap the workspace `serde` path dependency back to the registry crate
//! to restore real serialization.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
