//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the ergonomics the workspace relies on — `lock()` returns the
//! guard directly (poisoning is swallowed, as `parking_lot` has none) —
//! without the registry dependency.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(*m.lock(), vec![1, 2, 3, 4]);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
