//! The model-checking engine: serialized OS threads driven over an
//! explicit schedule.
//!
//! One *execution* runs the model closure with every modeled operation
//! (atomic access, cell access, spawn/join/yield) serialized through a
//! token: exactly one model thread runs at a time, and at every point
//! where more than one thread could take the next step the engine
//! consults the schedule. The driver ([`crate::model::Builder`])
//! enumerates schedules depth-first, so re-running the closure under
//! each recorded choice sequence enumerates the interleavings.
//!
//! Happens-before is tracked with vector clocks:
//!
//! * every modeled operation bumps the running thread's own epoch;
//! * a `Release` (or stronger) store publishes the writer's clock on the
//!   atomic; an `Acquire` (or stronger) load joins it — the C11
//!   release/acquire edge. RMWs extend a release sequence even when
//!   relaxed;
//! * `SeqCst` operations additionally join through a global SC clock
//!   (slightly stronger than C11, which does not make the SC order a
//!   happens-before source; the approximation is conservative for the
//!   protocols modeled here and is documented in DESIGN.md §10);
//! * [`crate::cell::UnsafeCell`] accesses are checked against the
//!   clocks FastTrack-style: a read must happen-after every write, a
//!   write must happen-after every read and write, otherwise the
//!   execution is reported as a **data race** with the schedule that
//!   produced it.
//!
//! Values are sequentially consistent (every load observes the latest
//! store in the interleaving); weak-memory *value* effects such as
//! stale `Relaxed` reads are not simulated. An `Acquire` weakened to
//! `Relaxed` is still caught — not through the value it reads but
//! through the missing happens-before edge on the data it guards.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use desim::SimRng;

/// Hard cap on model threads per execution (vector clocks are fixed
/// width). Models here use 2–4 threads.
pub(crate) const MAX_THREADS: usize = 8;

/// Cap on remembered operations for failure reports.
const TRACE_CAP: usize = 64;

/// A fixed-width vector clock over model-thread ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(pub(crate) [u64; MAX_THREADS]);

impl VClock {
    /// Pointwise max, in place.
    pub(crate) fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` (i.e. everything recorded in `self` happens-before a
    /// thread whose clock is `other`).
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] <= other.0[i])
    }
}

/// One recorded scheduling decision: which of the `alts` eligible
/// threads ran. Decisions are only recorded where `alts >= 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoiceRec {
    /// Index into the (tid-sorted) eligible set that was chosen.
    pub chosen: u16,
    /// Size of the eligible set at this decision.
    pub alts: u16,
}

/// Why an execution was declared a violation.
#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub(crate) msg: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the thread with this id to finish.
    Blocked(usize),
    Finished,
}

struct ThreadInfo {
    status: Status,
    /// Set by `yield_now`; cleared when another thread performs a
    /// state-changing operation. A yielded thread is not eligible until
    /// then, which is what keeps modeled spin loops from exploding the
    /// schedule space — and turns spins nobody can satisfy into
    /// step-bounded livelock reports instead of infinite loops.
    yielded: bool,
    clock: VClock,
}

/// Per-execution engine state, guarded by [`Engine::state`].
pub(crate) struct EngineState {
    threads: Vec<ThreadInfo>,
    /// The thread currently holding the run token; `usize::MAX` once
    /// every thread has finished.
    current: usize,
    abort: Option<Failure>,
    steps: u64,
    /// Next decision index into / past `schedule`.
    decision: usize,
    /// Replay prefix (from the driver) followed by freshly recorded
    /// decisions.
    schedule: Vec<ChoiceRec>,
    /// Involuntary context switches taken so far (for bounding).
    preemptions: u32,
    /// Global SC clock: every `SeqCst` operation joins through it.
    sc_clock: VClock,
    /// Recent operations, for failure reports.
    trace: VecDeque<String>,
    /// Random scheduler for choices past the prefix; `None` = take the
    /// first (systematic DFS) branch.
    rng: Option<SimRng>,
    finished: usize,
}

/// Execution limits, owned by the driver.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ExecCfg {
    pub(crate) max_steps: u64,
    pub(crate) max_preemptions: Option<u32>,
}

/// Panic payload used to unwind model threads when an execution aborts.
/// Recognized (and swallowed) by the thread wrapper.
pub(crate) struct AbortPayload;

pub(crate) struct Engine {
    pub(crate) state: Mutex<EngineState>,
    pub(crate) cv: Condvar,
    cfg: ExecCfg,
    /// OS handles of every model thread, joined by the driver at the
    /// end of the execution.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// The engine and model-thread id of the current OS thread, set for
    /// the lifetime of one execution.
    static CTX: RefCell<Option<(Arc<Engine>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model-thread context; panics if called
/// outside [`crate::model`].
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Engine>, usize) -> R) -> R {
    CTX.with(|ctx| {
        let borrow = ctx.borrow();
        let (engine, tid) = borrow
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        f(engine, *tid)
    })
}

/// Whether the current OS thread is a model thread.
pub(crate) fn in_model() -> bool {
    CTX.with(|ctx| ctx.borrow().is_some())
}

impl Engine {
    pub(crate) fn new(cfg: ExecCfg, prefix: Vec<ChoiceRec>, rng: Option<SimRng>) -> Self {
        Self {
            state: Mutex::new(EngineState {
                threads: Vec::new(),
                current: 0,
                abort: None,
                steps: 0,
                decision: 0,
                schedule: prefix,
                preemptions: 0,
                sc_clock: VClock::default(),
                trace: VecDeque::new(),
                rng,
                finished: 0,
            }),
            cv: Condvar::new(),
            cfg,
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Spawns the root model thread (tid 0) running `f`.
    pub(crate) fn spawn_root(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) {
        {
            let mut st = self.state.lock().expect("engine state");
            debug_assert!(st.threads.is_empty());
            let mut clock = VClock::default();
            clock.0[0] = 1;
            st.threads.push(ThreadInfo {
                status: Status::Runnable,
                yielded: false,
                clock,
            });
            st.current = 0;
        }
        self.spawn_os_thread(0, Box::new(move || f()));
    }

    /// Registers a new model thread whose closure is `body`; must be
    /// called while `parent` holds the token. Returns the child tid.
    ///
    /// Spawn is a scheduling point, but only *after* the child's OS
    /// thread exists: the registration itself is token-local (choosing
    /// a child with no OS thread would deadlock), then the parent
    /// re-enters the scheduler so the child can legally run before the
    /// parent's next operation — without this, every effect the parent
    /// issues right after `spawn` would be unobservable-in-the-past to
    /// the child, hiding real interleavings (e.g. a child reading a
    /// flag the parent sets immediately after spawning it).
    pub(crate) fn spawn_model_thread(
        self: &Arc<Self>,
        parent: usize,
        site: &'static Location<'static>,
        body: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let child = self.op_local(parent, site, "spawn", |state, _| {
            let child = state.threads.len();
            if child >= MAX_THREADS {
                return Err(format!("model spawned more than {MAX_THREADS} threads"));
            }
            // The child starts with (and therefore happens-after)
            // everything the parent has done so far.
            let mut clock = state.threads[parent].clock;
            clock.0[child] = 1;
            state.threads.push(ThreadInfo {
                status: Status::Runnable,
                yielded: false,
                clock,
            });
            Ok(child)
        });
        self.spawn_os_thread(child, body);
        // The child's OS thread now exists (parked in
        // `wait_for_token`), so hand the decision to the scheduler:
        // this is the choice point that lets the child run first.
        let mut st = self.state.lock().expect("engine state");
        if st.abort.is_none() {
            self.schedule_next(&mut st, parent);
        }
        loop {
            if st.abort.is_some() {
                if std::thread::panicking() {
                    return child;
                }
                drop(st);
                panic::panic_any(AbortPayload);
            }
            if st.current == parent {
                return child;
            }
            st = self.cv.wait(st).expect("engine state");
        }
    }

    fn spawn_os_thread(self: &Arc<Self>, tid: usize, body: Box<dyn FnOnce() + Send>) {
        let engine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                CTX.with(|ctx| *ctx.borrow_mut() = Some((Arc::clone(&engine), tid)));
                let wait = panic::catch_unwind(AssertUnwindSafe(|| engine.wait_for_token(tid)));
                let result = match wait {
                    Ok(()) => panic::catch_unwind(AssertUnwindSafe(body)).err(),
                    // Aborted before first being scheduled: the body
                    // never ran.
                    Err(payload) => Some(payload),
                };
                engine.thread_finished(tid, result);
                CTX.with(|ctx| *ctx.borrow_mut() = None);
            })
            .expect("spawning model thread");
        self.handles.lock().expect("engine handles").push(handle);
    }

    /// Blocks the calling OS thread until its model thread holds the
    /// token (or the execution aborted, in which case it unwinds).
    fn wait_for_token(&self, tid: usize) {
        let mut st = self.state.lock().expect("engine state");
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortPayload);
            }
            if st.current == tid {
                return;
            }
            st = self.cv.wait(st).expect("engine state");
        }
    }

    /// Performs one modeled operation for `tid`: bumps the thread's
    /// epoch, applies `f` under the engine lock, then makes the next
    /// scheduling decision and waits until `tid` is scheduled again.
    ///
    /// `f` returns `Err(reason)` to declare a violation (data race,
    /// model limit); the execution then aborts and this call unwinds.
    ///
    /// `rearm` re-enables yielded threads — pass `true` for operations
    /// that change shared state (stores, RMWs, cell writes), `false`
    /// for pure observations (loads, cell reads, yields): a spinner's
    /// condition cannot change when no state changed, so not re-arming
    /// it keeps the schedule space smaller without losing behaviors.
    pub(crate) fn op<R>(
        self: &Arc<Self>,
        tid: usize,
        site: &'static Location<'static>,
        what: &str,
        rearm: bool,
        f: impl FnOnce(&mut EngineState, usize) -> Result<R, String>,
    ) -> R {
        let (v, bypassed) = self.op_effect(tid, site, what, rearm, f);
        if bypassed {
            // Unwind-bypass: the effect was applied without scheduling
            // so drop glue can finish while the execution fails.
            return v;
        }
        // Make the next scheduling decision and wait for the token.
        let mut st = self.state.lock().expect("engine state");
        if st.abort.is_none() {
            self.schedule_next(&mut st, tid);
        }
        loop {
            if st.abort.is_some() {
                if std::thread::panicking() {
                    // Already unwinding (drop glue re-entered the
                    // engine): do not panic again, just hand the value
                    // back so the destructor can finish.
                    return v;
                }
                drop(st);
                panic::panic_any(AbortPayload);
            }
            if st.current == tid {
                return v;
            }
            st = self.cv.wait(st).expect("engine state");
        }
    }

    /// The bookkeeping half of [`Engine::op`] without rescheduling —
    /// the caller still holds the token when this returns. Used by
    /// `spawn`, which must not lose the token before the child's OS
    /// thread exists.
    fn op_local<R>(
        self: &Arc<Self>,
        tid: usize,
        site: &'static Location<'static>,
        what: &str,
        f: impl FnOnce(&mut EngineState, usize) -> Result<R, String>,
    ) -> R {
        self.op_effect(tid, site, what, true, f).0
    }

    /// Applies one operation's bookkeeping and effect. Returns the
    /// effect's value plus whether the unwind-bypass path was taken
    /// (abort already set while this thread is panicking). Unwinds on
    /// violation.
    fn op_effect<R>(
        self: &Arc<Self>,
        tid: usize,
        site: &'static Location<'static>,
        what: &str,
        rearm: bool,
        f: impl FnOnce(&mut EngineState, usize) -> Result<R, String>,
    ) -> (R, bool) {
        let mut st = self.state.lock().expect("engine state");
        if st.abort.is_some() {
            // The execution already failed. If this thread is mid-unwind
            // its drop glue still needs raw effects (ring destructors
            // read cursors); apply them without scheduling. Otherwise
            // start unwinding.
            if std::thread::panicking() {
                if let Ok(v) = f(&mut st, tid) {
                    return (v, true);
                }
            }
            drop(st);
            panic::panic_any(AbortPayload);
        }
        debug_assert_eq!(st.current, tid, "op from a thread not holding the token");
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            let msg = format!(
                "execution exceeded {} steps — unbounded spin or livelock in the model",
                self.cfg.max_steps
            );
            self.fail(st, msg);
        }
        if rearm {
            // A state-changing operation by `tid` re-arms every other
            // yielded (spinning) thread.
            for (u, t) in st.threads.iter_mut().enumerate() {
                if u != tid {
                    t.yielded = false;
                }
            }
        }
        st.threads[tid].clock.0[tid] += 1;
        if st.trace.len() == TRACE_CAP {
            st.trace.pop_front();
        }
        let line = format!("thread {tid}: {what} at {site}");
        st.trace.push_back(line);
        match f(&mut st, tid) {
            Ok(v) => (v, false),
            Err(reason) => self.fail(st, reason),
        }
    }

    /// Marks the thread yielded, then schedules. The yielded thread is
    /// ineligible until another thread performs a state-changing
    /// operation.
    pub(crate) fn yield_now(self: &Arc<Self>, tid: usize, site: &'static Location<'static>) {
        self.op(tid, site, "yield", false, |state, tid| {
            state.threads[tid].yielded = true;
            Ok(())
        });
    }

    /// Models `join`: blocks until `target` finishes, then joins its
    /// final clock into the caller's (the happens-before edge of a real
    /// `JoinHandle::join`).
    pub(crate) fn join_thread(
        self: &Arc<Self>,
        tid: usize,
        target: usize,
        site: &'static Location<'static>,
    ) {
        self.op(tid, site, "join", false, |state, tid| {
            if state.threads[target].status != Status::Finished {
                state.threads[tid].status = Status::Blocked(target);
            }
            Ok(())
        });
        // Back on the token: the blocked status was cleared by the
        // target's finish (or the target was already finished).
        let mut st = self.state.lock().expect("engine state");
        if st.abort.is_some() && !std::thread::panicking() {
            drop(st);
            panic::panic_any(AbortPayload);
        }
        let target_clock = st.threads[target].clock;
        st.threads[tid].clock.join(&target_clock);
    }

    /// Marks `tid` finished, unblocks joiners, hands the token on.
    /// `panicked` carries a non-abort user panic out as a violation.
    fn thread_finished(
        self: &Arc<Self>,
        tid: usize,
        panicked: Option<Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = self.state.lock().expect("engine state");
        st.threads[tid].status = Status::Finished;
        st.threads[tid].yielded = false;
        st.finished += 1;
        if let Some(payload) = panicked {
            if !payload.is::<AbortPayload>() && st.abort.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                let failure = self.render_failure(&st, format!("thread {tid} panicked: {msg}"));
                st.abort = Some(failure);
            }
            self.cv.notify_all();
            return;
        }
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(tid) {
                t.status = Status::Runnable;
            }
        }
        self.schedule_next(&mut st, tid);
    }

    /// Picks the next thread to hold the token. Called with the state
    /// lock held by the thread releasing the token.
    fn schedule_next(self: &Arc<Self>, st: &mut EngineState, from: usize) {
        if st.finished == st.threads.len() {
            st.current = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&u| st.threads[u].status == Status::Runnable)
            .collect();
        let mut eligible: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&u| !st.threads[u].yielded)
            .collect();
        if eligible.is_empty() {
            // Only yielded threads remain runnable: re-arm them all
            // rather than reporting a false deadlock. If they are
            // spinning on something no thread will ever change, the
            // step bound converts the spin into a livelock report.
            for &u in &runnable {
                st.threads[u].yielded = false;
            }
            eligible = runnable;
        }
        if eligible.is_empty() {
            let msg = "deadlock: every unfinished thread is blocked".to_string();
            self.fail_in_place(st, msg);
            return;
        }
        // Preemption bounding: once the budget is spent, a runnable
        // token holder keeps running (other threads still get their
        // turn when this one blocks, yields, or finishes).
        if let Some(bound) = self.cfg.max_preemptions {
            if st.preemptions >= bound && eligible.contains(&from) {
                eligible = vec![from];
            }
        }
        let chosen = if eligible.len() == 1 {
            eligible[0]
        } else {
            let d = st.decision;
            let idx = if d < st.schedule.len() {
                let rec = st.schedule[d];
                debug_assert_eq!(
                    rec.alts as usize,
                    eligible.len(),
                    "schedule replay diverged — the model closure is nondeterministic"
                );
                (rec.chosen as usize).min(eligible.len() - 1)
            } else {
                let idx = match st.rng.as_mut() {
                    Some(rng) => rng.uniform_u32(0, eligible.len() as u32 - 1) as usize,
                    None => 0,
                };
                st.schedule.push(ChoiceRec {
                    chosen: idx as u16,
                    alts: eligible.len() as u16,
                });
                idx
            };
            st.decision += 1;
            eligible[idx]
        };
        // Count an involuntary switch away from a thread that could
        // have kept running (voluntary yields are not preemptions).
        if chosen != from
            && from < st.threads.len()
            && st.threads[from].status == Status::Runnable
            && !st.threads[from].yielded
        {
            st.preemptions += 1;
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Declares a violation and unwinds the calling thread. Consumes
    /// the state guard.
    fn fail(self: &Arc<Self>, mut st: MutexGuard<'_, EngineState>, reason: String) -> ! {
        self.fail_in_place(&mut st, reason);
        drop(st);
        panic::panic_any(AbortPayload);
    }

    fn fail_in_place(self: &Arc<Self>, st: &mut EngineState, reason: String) {
        if st.abort.is_none() {
            let failure = self.render_failure(st, reason);
            st.abort = Some(failure);
        }
        self.cv.notify_all();
    }

    fn render_failure(&self, st: &EngineState, reason: String) -> Failure {
        let trace: Vec<String> = st.trace.iter().cloned().collect();
        let schedule: Vec<u16> = st.schedule[..st.decision.min(st.schedule.len())]
            .iter()
            .map(|c| c.chosen)
            .collect();
        Failure {
            msg: format!(
                "{reason}\nschedule (branch indices): {schedule:?}\nlast operations:\n  {}",
                trace.join("\n  ")
            ),
        }
    }

    /// Driver side: waits for the execution to end, joins every model
    /// OS thread, and returns the recorded schedule plus any failure.
    pub(crate) fn finish(self: &Arc<Self>) -> (Vec<ChoiceRec>, Option<Failure>) {
        {
            let mut st = self.state.lock().expect("engine state");
            while st.abort.is_none() && st.finished < st.threads.len() {
                st = self.cv.wait(st).expect("engine state");
            }
        }
        // On abort, threads unwind at their next engine touch; the cv
        // broadcast in fail() wakes any that are parked.
        loop {
            // Pop under the lock, join outside it: a model thread
            // calling spawn pushes into `handles`.
            let handle = self.handles.lock().expect("engine handles").pop();
            let Some(h) = handle else { break };
            let _ = h.join();
        }
        let st = self.state.lock().expect("engine state");
        (st.schedule.clone(), st.abort.clone())
    }

    // ---- effects used by the sync primitives ------------------------

    /// The calling thread's clock (for primitives that record accesses).
    pub(crate) fn thread_clock(st: &EngineState, tid: usize) -> VClock {
        st.threads[tid].clock
    }

    /// Joins `other` into `tid`'s clock (acquire edges).
    pub(crate) fn acquire_into(st: &mut EngineState, tid: usize, other: &VClock) {
        st.threads[tid].clock.join(other);
    }

    /// SC-clock exchange for `SeqCst` operations.
    pub(crate) fn seqcst_exchange(st: &mut EngineState, tid: usize) {
        let thread_clock = st.threads[tid].clock;
        st.sc_clock.join(&thread_clock);
        let sc = st.sc_clock;
        st.threads[tid].clock.join(&sc);
    }
}
