//! A minimal, offline, loom-style concurrency model checker.
//!
//! This is a from-scratch shim with the same surface shape as the real
//! [`loom`](https://crates.io/crates/loom) crate, vendored because the
//! build environment has no network access. It explores thread
//! interleavings of a model closure:
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::AcqRel);
//!     });
//!     n.fetch_add(1, Ordering::AcqRel);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Acquire), 2);
//! });
//! ```
//!
//! The engine serializes the model's threads (one runs at a time) and
//! performs a depth-first search over every point where more than one
//! thread could take the next step, so `loom::model` runs the closure
//! once per interleaving. Happens-before is tracked with vector clocks;
//! [`cell::UnsafeCell`] accesses are checked against them, so a missing
//! `Release`/`Acquire` pairing on the atomic that publishes a cell
//! surfaces as a reported **data race** even though atomic *values*
//! are sequentially consistent in this simulation (see `rt` module docs
//! for the exact memory-model approximation). Assertion failures,
//! deadlocks, and livelocks (step-bounded) are reported with the
//! schedule that produced them.
//!
//! Differences from real loom, beyond the memory-model approximation:
//! no `loom::sync::Mutex`/`Condvar`/`Notify` (the code under test here
//! is lock-free; [`sync::RwLock`] exists for the fabric's handle-table
//! swap, built on a tracked reader-count atomic), no
//! `lazy_static`/`thread_local` modeling, and
//! exploration is bounded by `max_iterations`/`max_steps` with an
//! optional seeded random tail ([`model::Builder::random_iterations`])
//! instead of loom's partial-order reduction.

#![warn(missing_docs)]

pub mod cell;
pub mod hint;
pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::model;
