//! Modeled synchronization primitives: tracked atomics and `Arc`.
//!
//! Atomic *values* are sequentially consistent in the simulation (every
//! load observes the latest store of the current interleaving); the
//! `Ordering` argument drives the happens-before bookkeeping instead:
//!
//! * `Release` (store side) publishes the writer's vector clock on the
//!   atomic; `Acquire` (load side) joins it into the reader's clock;
//! * a `Relaxed` store *clears* the published clock (it starts a new,
//!   unsynchronized store), while a `Relaxed` RMW *keeps* it — an RMW
//!   continues the release sequence headed by the store it read from;
//! * `SeqCst` additionally joins through a single global SC clock.
//!
//! Non-atomic data guarded by these clocks lives in
//! [`crate::cell::UnsafeCell`], whose accesses are checked against the
//! clocks — weakening a publishing `Release` or a consuming `Acquire`
//! to `Relaxed` severs the edge and surfaces as a reported data race.
//!
//! `compare_exchange_weak` never fails spuriously here (modeling
//! spurious failure would only add schedules to retry loops, not
//! happens-before edges).

use std::panic::Location;
use std::sync::Mutex;

use crate::rt::{self, Engine, VClock, MAX_THREADS};

pub use std::sync::Arc;

/// Modeled atomic integer and boolean types.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    /// Shared state of one modeled atomic location.
    struct AtomicState {
        value: u64,
        /// Clock published by the last `Release`-or-stronger store (and
        /// extended by subsequent RMWs — the release sequence); `None`
        /// after a plain `Relaxed` store.
        release: Option<VClock>,
    }

    fn acquires(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn releases(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Modeled load: a scheduling point plus the acquire-side clock
    /// joins dictated by `ord`.
    fn do_load(
        state: &Mutex<AtomicState>,
        ord: Ordering,
        what: &'static str,
        site: &'static Location<'static>,
    ) -> u64 {
        if !rt::in_model() {
            return state.lock().expect("atomic state").value;
        }
        rt::with_ctx(|engine, tid| {
            engine.op(tid, site, what, false, |es, tid| {
                let st = state.lock().expect("atomic state");
                if acquires(ord) {
                    if let Some(rel) = st.release {
                        Engine::acquire_into(es, tid, &rel);
                    }
                }
                if ord == Ordering::SeqCst {
                    Engine::seqcst_exchange(es, tid);
                }
                Ok(st.value)
            })
        })
    }

    /// Modeled store: a scheduling point plus the release-side clock
    /// publication dictated by `ord`.
    fn do_store(
        state: &Mutex<AtomicState>,
        value: u64,
        ord: Ordering,
        what: &'static str,
        site: &'static Location<'static>,
    ) {
        if !rt::in_model() {
            state.lock().expect("atomic state").value = value;
            return;
        }
        rt::with_ctx(|engine, tid| {
            engine.op(tid, site, what, true, |es, tid| {
                if ord == Ordering::SeqCst {
                    Engine::seqcst_exchange(es, tid);
                }
                let mut st = state.lock().expect("atomic state");
                st.release = if releases(ord) {
                    Some(Engine::thread_clock(es, tid))
                } else {
                    // A relaxed store heads a new, unsynchronized
                    // release sequence: readers acquire nothing.
                    None
                };
                st.value = value;
                Ok(())
            })
        })
    }

    /// Modeled read-modify-write: one scheduling point; acquire side
    /// joins the published clock, release side extends the release
    /// sequence (a `Relaxed` RMW keeps the existing head's clock).
    fn do_rmw(
        state: &Mutex<AtomicState>,
        ord: Ordering,
        what: &'static str,
        site: &'static Location<'static>,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        if !rt::in_model() {
            let mut st = state.lock().expect("atomic state");
            let old = st.value;
            st.value = f(old);
            return old;
        }
        rt::with_ctx(|engine, tid| {
            engine.op(tid, site, what, true, |es, tid| {
                let mut st = state.lock().expect("atomic state");
                if acquires(ord) {
                    if let Some(rel) = st.release {
                        Engine::acquire_into(es, tid, &rel);
                    }
                }
                if ord == Ordering::SeqCst {
                    Engine::seqcst_exchange(es, tid);
                }
                if releases(ord) {
                    let mut clock = Engine::thread_clock(es, tid);
                    if let Some(rel) = st.release {
                        clock.join(&rel);
                    }
                    st.release = Some(clock);
                }
                let old = st.value;
                st.value = f(old);
                Ok(old)
            })
        })
    }

    /// Modeled compare-exchange: an RMW with `success` ordering when
    /// the comparison holds, a load with `failure` ordering otherwise.
    fn do_cas(
        state: &Mutex<AtomicState>,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        what: &'static str,
        site: &'static Location<'static>,
    ) -> Result<u64, u64> {
        if !rt::in_model() {
            let mut st = state.lock().expect("atomic state");
            let old = st.value;
            if old == current {
                st.value = new;
                return Ok(old);
            }
            return Err(old);
        }
        rt::with_ctx(|engine, tid| {
            engine.op(tid, site, what, true, |es, tid| {
                let mut st = state.lock().expect("atomic state");
                let old = st.value;
                let (hit, ord) = if old == current {
                    (true, success)
                } else {
                    (false, failure)
                };
                if acquires(ord) {
                    if let Some(rel) = st.release {
                        Engine::acquire_into(es, tid, &rel);
                    }
                }
                if ord == Ordering::SeqCst {
                    Engine::seqcst_exchange(es, tid);
                }
                if hit {
                    if releases(success) {
                        let mut clock = Engine::thread_clock(es, tid);
                        if let Some(rel) = st.release {
                            clock.join(&rel);
                        }
                        st.release = Some(clock);
                    }
                    st.value = new;
                }
                Ok(if hit { Ok(old) } else { Err(old) })
            })
        })
    }

    macro_rules! atomic_int {
        ($(#[$meta:meta])* $name:ident, $ty:ty) => {
            $(#[$meta])*
            pub struct $name {
                state: Mutex<AtomicState>,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(value: $ty) -> Self {
                    Self {
                        state: Mutex::new(AtomicState {
                            value: value as u64,
                            release: None,
                        }),
                    }
                }

                /// Modeled atomic load.
                #[track_caller]
                pub fn load(&self, ord: Ordering) -> $ty {
                    do_load(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::load"),
                        Location::caller(),
                    ) as $ty
                }

                /// Modeled atomic store.
                #[track_caller]
                pub fn store(&self, value: $ty, ord: Ordering) {
                    do_store(
                        &self.state,
                        value as u64,
                        ord,
                        concat!(stringify!($name), "::store"),
                        Location::caller(),
                    )
                }

                /// Modeled atomic swap; returns the previous value.
                #[track_caller]
                pub fn swap(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::swap"),
                        Location::caller(),
                        |_| value as u64,
                    ) as $ty
                }

                /// Modeled compare-exchange.
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    do_cas(
                        &self.state,
                        current as u64,
                        new as u64,
                        success,
                        failure,
                        concat!(stringify!($name), "::compare_exchange"),
                        Location::caller(),
                    )
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
                }

                /// Modeled weak compare-exchange (never fails
                /// spuriously here — see module docs).
                #[track_caller]
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    do_cas(
                        &self.state,
                        current as u64,
                        new as u64,
                        success,
                        failure,
                        concat!(stringify!($name), "::compare_exchange_weak"),
                        Location::caller(),
                    )
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
                }

                /// Modeled wrapping add; returns the previous value.
                #[track_caller]
                pub fn fetch_add(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_add"),
                        Location::caller(),
                        |old| (old as $ty).wrapping_add(value) as u64,
                    ) as $ty
                }

                /// Modeled wrapping subtract; returns the previous value.
                #[track_caller]
                pub fn fetch_sub(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_sub"),
                        Location::caller(),
                        |old| (old as $ty).wrapping_sub(value) as u64,
                    ) as $ty
                }

                /// Modeled bitwise AND; returns the previous value.
                #[track_caller]
                pub fn fetch_and(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_and"),
                        Location::caller(),
                        |old| ((old as $ty) & value) as u64,
                    ) as $ty
                }

                /// Modeled bitwise OR; returns the previous value.
                #[track_caller]
                pub fn fetch_or(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_or"),
                        Location::caller(),
                        |old| ((old as $ty) | value) as u64,
                    ) as $ty
                }

                /// Modeled max; returns the previous value.
                #[track_caller]
                pub fn fetch_max(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_max"),
                        Location::caller(),
                        |old| (old as $ty).max(value) as u64,
                    ) as $ty
                }

                /// Modeled min; returns the previous value.
                #[track_caller]
                pub fn fetch_min(&self, value: $ty, ord: Ordering) -> $ty {
                    do_rmw(
                        &self.state,
                        ord,
                        concat!(stringify!($name), "::fetch_min"),
                        Location::caller(),
                        |old| (old as $ty).min(value) as u64,
                    ) as $ty
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    let v = self.state.lock().expect("atomic state").value;
                    f.debug_tuple(stringify!($name)).field(&(v as $ty)).finish()
                }
            }
        };
    }

    atomic_int!(
        /// Modeled `AtomicUsize`.
        AtomicUsize,
        usize
    );
    atomic_int!(
        /// Modeled `AtomicU64`.
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Modeled `AtomicU32`.
        AtomicU32,
        u32
    );

    /// Modeled `AtomicBool`.
    pub struct AtomicBool {
        state: Mutex<AtomicState>,
    }

    impl AtomicBool {
        /// Creates a new atomic boolean with the given initial value.
        pub const fn new(value: bool) -> Self {
            Self {
                state: Mutex::new(AtomicState {
                    value: value as u64,
                    release: None,
                }),
            }
        }

        /// Modeled atomic load.
        #[track_caller]
        pub fn load(&self, ord: Ordering) -> bool {
            do_load(&self.state, ord, "AtomicBool::load", Location::caller()) != 0
        }

        /// Modeled atomic store.
        #[track_caller]
        pub fn store(&self, value: bool, ord: Ordering) {
            do_store(
                &self.state,
                value as u64,
                ord,
                "AtomicBool::store",
                Location::caller(),
            )
        }

        /// Modeled atomic swap; returns the previous value.
        #[track_caller]
        pub fn swap(&self, value: bool, ord: Ordering) -> bool {
            do_rmw(
                &self.state,
                ord,
                "AtomicBool::swap",
                Location::caller(),
                |_| value as u64,
            ) != 0
        }

        /// Modeled compare-exchange.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            do_cas(
                &self.state,
                current as u64,
                new as u64,
                success,
                failure,
                "AtomicBool::compare_exchange",
                Location::caller(),
            )
            .map(|v| v != 0)
            .map_err(|v| v != 0)
        }

        /// Modeled bitwise OR; returns the previous value.
        #[track_caller]
        pub fn fetch_or(&self, value: bool, ord: Ordering) -> bool {
            do_rmw(
                &self.state,
                ord,
                "AtomicBool::fetch_or",
                Location::caller(),
                |old| old | value as u64,
            ) != 0
        }

        /// Modeled bitwise AND; returns the previous value.
        #[track_caller]
        pub fn fetch_and(&self, value: bool, ord: Ordering) -> bool {
            do_rmw(
                &self.state,
                ord,
                "AtomicBool::fetch_and",
                Location::caller(),
                |old| old & value as u64,
            ) != 0
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let v = self.state.lock().expect("atomic state").value;
            f.debug_tuple("AtomicBool").field(&(v != 0)).finish()
        }
    }

    // The unused-width guard: values are stored widened to u64.
    const _: () = assert!(MAX_THREADS <= u16::MAX as usize);
}

/// Modeled reader-writer lock: a reader count held in a tracked
/// [`atomic::AtomicUsize`] (`usize::MAX` while write-locked), spun
/// with [`crate::thread::yield_now`] so the engine bounds the
/// schedule instead of exploding it.
///
/// The happens-before edges the checker validates are the lock's own
/// atomic operations: `read`/`write` acquire on the state CAS —
/// joining every prior unlock's published clock (reader unlocks are
/// releasing RMWs, so their clocks merge into one release sequence) —
/// and each unlock releases. Accesses to the guarded `T` itself are
/// *not* individually tracked (the lock excludes them by
/// construction); anything the protected update publishes through
/// tracked [`crate::cell::UnsafeCell`]s is still checked across these
/// edges exactly as it would be under real loom.
///
/// `read`/`write` mirror `std::sync::RwLock`'s `LockResult` signatures
/// (always `Ok`: a model-thread panic aborts the whole execution, so
/// poisoning is unobservable).
pub struct RwLock<T> {
    /// Reader count, or [`WRITE_LOCKED`].
    state: atomic::AtomicUsize,
    data: std::cell::UnsafeCell<T>,
}

const WRITE_LOCKED: usize = usize::MAX;

// SAFETY: the lock protocol gives a writer exclusive access and
// readers shared access, with the state CAS/RMW edges carrying the
// happens-before; `T: Send` moves with the lock, `T: Sync` is needed
// because readers on several threads hold `&T` concurrently.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        Self {
            state: atomic::AtomicUsize::new(0),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquires shared read access, spinning (with a modeled yield)
    /// while a writer holds the lock.
    #[track_caller]
    pub fn read(&self) -> std::sync::LockResult<RwLockReadGuard<'_, T>> {
        loop {
            let readers = self.state.load(atomic::Ordering::Relaxed);
            if readers != WRITE_LOCKED
                && self
                    .state
                    .compare_exchange(
                        readers,
                        readers + 1,
                        // Joins the last writer-unlock's Release.
                        atomic::Ordering::Acquire,
                        atomic::Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return Ok(RwLockReadGuard { lock: self });
            }
            crate::thread::yield_now();
        }
    }

    /// Acquires exclusive write access, spinning (with a modeled
    /// yield) while readers or another writer hold the lock.
    #[track_caller]
    pub fn write(&self) -> std::sync::LockResult<RwLockWriteGuard<'_, T>> {
        loop {
            if self
                .state
                .compare_exchange(
                    0,
                    WRITE_LOCKED,
                    // Joins every prior unlock's release clock, so the
                    // writer sees all earlier readers' and writers'
                    // work before touching the data.
                    atomic::Ordering::Acquire,
                    atomic::Ordering::Relaxed,
                )
                .is_ok()
            {
                return Ok(RwLockWriteGuard { lock: self });
            }
            crate::thread::yield_now();
        }
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the reader count excludes writers while this guard
        // lives.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        // A releasing RMW: merges this reader's clock into the release
        // sequence the next writer's Acquire CAS joins.
        self.lock.state.fetch_sub(1, atomic::Ordering::Release);
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `WRITE_LOCKED` excludes every other guard.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: `WRITE_LOCKED` excludes every other guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        // Publishes everything written under the guard to the next
        // Acquire CAS (reader or writer).
        self.lock.state.store(0, atomic::Ordering::Release);
    }
}
