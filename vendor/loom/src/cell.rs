//! Race-checked [`UnsafeCell`]: the modeled home of non-atomic data
//! published through atomics.

use std::panic::Location;
use std::sync::Mutex;

use crate::rt::{self, Engine, VClock};

/// Access history of one cell: the epoch of every thread's last write
/// and last read, compared FastTrack-style against the accessor's
/// vector clock.
#[derive(Debug, Default)]
struct CellState {
    writes: VClock,
    reads: VClock,
}

/// A cell whose raw accesses are checked for data races against the
/// happens-before relation tracked by the engine.
///
/// [`with`](UnsafeCell::with) models an immutable (read) access: every
/// prior write must happen-before it. [`with_mut`](UnsafeCell::with_mut)
/// models a mutable (write) access: every prior read *and* write must
/// happen-before it. A violation aborts the execution with a data-race
/// report carrying the schedule.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    state: Mutex<CellState>,
}

// SAFETY: the engine serializes model threads (exactly one runs at a
// time), so the raw accesses handed out by `with`/`with_mut` never
// physically overlap; logically-concurrent accesses are *reported* via
// the vector-clock check instead of being UB.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above — cross-thread sharing is mediated by the engine's
// serialization plus the race check.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates a new race-checked cell.
    pub fn new(data: T) -> Self {
        Self {
            data: std::cell::UnsafeCell::new(data),
            state: Mutex::new(CellState::default()),
        }
    }

    /// Models a read access and hands `f` a shared raw pointer.
    #[track_caller]
    pub fn with<F, R>(&self, f: F) -> R
    where
        F: FnOnce(*const T) -> R,
    {
        self.access(false, Location::caller());
        f(self.data.get() as *const T)
    }

    /// Models a write access and hands `f` an exclusive raw pointer.
    #[track_caller]
    pub fn with_mut<F, R>(&self, f: F) -> R
    where
        F: FnOnce(*mut T) -> R,
    {
        self.access(true, Location::caller());
        f(self.data.get())
    }

    /// Consumes the cell, returning the wrapped value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn access(&self, write: bool, site: &'static Location<'static>) {
        if !rt::in_model() {
            return;
        }
        if std::thread::panicking() {
            // Drop glue during an already-failing execution (e.g. a
            // ring destructor draining its cells): skip modeling — a
            // race report here could not be surfaced without a double
            // panic, and the execution has already been judged.
            return;
        }
        let what = if write { "cell write" } else { "cell read" };
        rt::with_ctx(|engine, tid| {
            engine.op(tid, site, what, write, |es, tid| {
                let clock = Engine::thread_clock(es, tid);
                let mut st = self.state.lock().expect("cell state");
                if !st.writes.leq(&clock) {
                    return Err(format!(
                        "data race: concurrent {what} at {site} — a prior write to this cell \
                         does not happen-before it (missing release/acquire pairing on the \
                         atomic that publishes this data?)"
                    ));
                }
                if write {
                    if !st.reads.leq(&clock) {
                        return Err(format!(
                            "data race: concurrent cell write at {site} — a prior read of this \
                             cell does not happen-before it (missing release/acquire pairing on \
                             the atomic that publishes this data?)"
                        ));
                    }
                    st.writes.0[tid] = clock.0[tid];
                } else {
                    st.reads.0[tid] = clock.0[tid];
                }
                Ok(())
            })
        });
    }
}
