//! Modeled threads: [`spawn`], [`JoinHandle`], and [`yield_now`].

use std::panic::Location;
use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a modeled thread; joining establishes the usual
/// happens-before edge from everything the thread did.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Unlike `std`, a panic in the model thread aborts the whole
    /// execution (it is a model violation), so this only returns `Err`
    /// if the result slot is unexpectedly empty.
    #[track_caller]
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let site = Location::caller();
        rt::with_ctx(|engine, tid| engine.join_thread(tid, self.tid, site));
        match self.result.lock().expect("thread result").take() {
            Some(v) => Ok(v),
            None => Err(Box::new("model thread produced no result")),
        }
    }
}

/// Spawns a modeled thread running `f`.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let site = Location::caller();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::with_ctx(|engine, parent| {
        engine.spawn_model_thread(
            parent,
            site,
            Box::new(move || {
                let v = f();
                *slot.lock().expect("thread result") = Some(v);
            }),
        )
    });
    JoinHandle { tid, result }
}

/// Yields the modeled thread: it becomes ineligible to run until some
/// other thread performs an operation. This is what keeps modeled spin
/// loops (`while !flag.load(..) { yield_now() }`) from generating
/// unbounded schedules — the spinner only re-runs after the state it is
/// polling could have changed.
#[track_caller]
pub fn yield_now() {
    let site = Location::caller();
    rt::with_ctx(|engine, tid| engine.yield_now(tid, site));
}
