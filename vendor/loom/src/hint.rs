//! Modeled spin hints.

/// Modeled `std::hint::spin_loop`: inside a model this is a scheduling
/// yield (the spinning thread steps aside until the state it is polling
/// could have changed), outside it falls through to the real hint.
#[track_caller]
pub fn spin_loop() {
    if crate::rt::in_model() {
        crate::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}
