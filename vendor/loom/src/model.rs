//! The exploration driver: [`Builder`] configuration and the
//! [`model`] entry point.

use std::sync::Arc;

use desim::SimRng;

use crate::rt::{ChoiceRec, Engine, ExecCfg};

/// Exploration statistics returned by [`Builder::check`].
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of executions (interleavings) actually run, including the
    /// random tail.
    pub executions: u64,
    /// `true` when the systematic DFS exhausted the schedule space —
    /// every interleaving (under the step/preemption bounds) was
    /// explored.
    pub complete: bool,
}

/// Configures a model-checking run.
///
/// ```
/// let report = loom::model::Builder::new().check(|| {
///     // model body
/// });
/// assert!(report.complete);
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    /// Budget for the systematic DFS phase. When the space is larger,
    /// the run stops early (`Report::complete == false`) after this
    /// many executions. Default 100 000.
    pub max_iterations: u64,
    /// Per-execution operation bound; exceeding it is reported as a
    /// livelock (an unbounded spin the yield-gating did not tame).
    /// Default 10 000.
    pub max_steps: u64,
    /// Extra seeded-random executions appended after an *incomplete*
    /// systematic phase, probing schedules the truncated DFS never
    /// reached. Ignored when the DFS completes. Default 0.
    pub random_iterations: u64,
    /// Seed for the random tail (desim `SimRng`). Default 0.
    pub seed: u64,
    /// When set, bounds involuntary context switches per execution —
    /// classic preemption bounding: most real bugs need only a few
    /// preemptions, and the bound cuts the space combinatorially.
    /// `None` (default) explores everything.
    pub max_preemptions: Option<u32>,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            max_iterations: 100_000,
            max_steps: 10_000,
            random_iterations: 0,
            seed: 0,
            max_preemptions: None,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores interleavings of `f`, panicking (with the failing
    /// schedule) on the first violation: data race, assertion failure,
    /// deadlock, or livelock.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Sync + Send + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let cfg = ExecCfg {
            max_steps: self.max_steps,
            max_preemptions: self.max_preemptions,
        };
        let mut executions = 0u64;
        let mut complete = false;

        // Systematic phase: depth-first search over schedule prefixes.
        // Each execution replays `prefix` then takes first-branch
        // choices; advancing = bump the deepest non-exhausted choice.
        let mut prefix: Vec<ChoiceRec> = Vec::new();
        loop {
            if executions >= self.max_iterations {
                break;
            }
            let engine = Arc::new(Engine::new(cfg, prefix.clone(), None));
            engine.spawn_root(Arc::clone(&f));
            let (schedule, failure) = engine.finish();
            executions += 1;
            if let Some(failure) = failure {
                panic!(
                    "loom model violation after {executions} execution(s):\n{}",
                    failure.msg
                );
            }
            match advance(schedule) {
                Some(next) => prefix = next,
                None => {
                    complete = true;
                    break;
                }
            }
        }

        // Random tail: probe schedules beyond the truncated DFS.
        if !complete && self.random_iterations > 0 {
            let rng = SimRng::new(self.seed);
            for _ in 0..self.random_iterations {
                let engine = Arc::new(Engine::new(cfg, Vec::new(), Some(rng.derive(executions))));
                engine.spawn_root(Arc::clone(&f));
                let (_, failure) = engine.finish();
                executions += 1;
                if let Some(failure) = failure {
                    panic!(
                        "loom model violation after {executions} execution(s) (random phase):\n{}",
                        failure.msg
                    );
                }
            }
        }

        Report {
            executions,
            complete,
        }
    }
}

/// DFS successor of a fully-taken schedule: increment the deepest
/// decision that still has an untried branch, dropping everything after
/// it; `None` when every decision is exhausted.
fn advance(mut schedule: Vec<ChoiceRec>) -> Option<Vec<ChoiceRec>> {
    while let Some(last) = schedule.pop() {
        if last.chosen + 1 < last.alts {
            schedule.push(ChoiceRec {
                chosen: last.chosen + 1,
                alts: last.alts,
            });
            return Some(schedule);
        }
    }
    None
}

/// Explores interleavings of `f` with the default [`Builder`] bounds,
/// panicking on the first violation.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    Builder::new().check(f);
}
