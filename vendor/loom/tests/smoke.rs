//! Engine smoke tests: correct protocols pass exhaustively, broken
//! ones are reported.

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;

/// Runs `f` under the checker and returns the violation message.
fn expect_violation(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(move || loom::model(f)));
    let payload = result.expect_err("the model checker should have reported a violation");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn single_thread_completes() {
    let report = loom::model::Builder::new().check(|| {
        let n = AtomicUsize::new(0);
        n.store(7, Ordering::Relaxed);
        assert_eq!(n.load(Ordering::Relaxed), 7);
    });
    assert!(report.complete);
    assert_eq!(report.executions, 1);
}

#[test]
fn explores_multiple_interleavings() {
    let report = loom::model::Builder::new().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
    assert!(report.complete);
    // Two threads race over the RMWs: there must be more than one
    // schedule, and the RMW atomicity must hold in all of them.
    assert!(report.executions > 1, "executions = {}", report.executions);
}

#[test]
fn lost_update_is_caught() {
    // Non-atomic increment (separate load and store): some
    // interleaving loses an update and the final assert fires.
    let msg = expect_violation(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(loom::thread::spawn(move || {
                let v = n.load(Ordering::Acquire);
                n.store(v + 1, Ordering::Release);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
    assert!(msg.contains("panicked"), "unexpected report: {msg}");
}

#[test]
fn release_acquire_publish_passes() {
    let report = loom::model::Builder::new().check(|| {
        let data = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            data2.with_mut(|p| unsafe { *p = 42 });
            flag2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            loom::thread::yield_now();
        }
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 42);
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn relaxed_publish_is_a_data_race() {
    // Same protocol with the Release store weakened to Relaxed: the
    // consumer's cell read no longer happens-after the producer's cell
    // write.
    let msg = expect_violation(|| {
        let data = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            data2.with_mut(|p| unsafe { *p = 42 });
            flag2.store(true, Ordering::Relaxed);
        });
        while !flag.load(Ordering::Acquire) {
            loom::thread::yield_now();
        }
        let _ = data.with(|p| unsafe { *p });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected report: {msg}");
}

#[test]
fn weak_consume_is_a_data_race() {
    // The dual: Release store kept, Acquire load weakened to Relaxed.
    let msg = expect_violation(|| {
        let data = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            data2.with_mut(|p| unsafe { *p = 42 });
            flag2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Relaxed) {
            loom::thread::yield_now();
        }
        let _ = data.with(|p| unsafe { *p });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected report: {msg}");
}

#[test]
fn unsatisfiable_spin_reports_livelock() {
    let msg = expect_violation(|| {
        let flag = AtomicBool::new(false);
        // Nobody ever sets the flag.
        while !flag.load(Ordering::Acquire) {
            loom::thread::yield_now();
        }
    });
    assert!(
        msg.contains("livelock") || msg.contains("exceeded"),
        "unexpected report: {msg}"
    );
}

#[test]
fn join_establishes_happens_before() {
    let report = loom::model::Builder::new().check(|| {
        let data = Arc::new(UnsafeCell::new(0u32));
        let data2 = Arc::clone(&data);
        let t = loom::thread::spawn(move || {
            data2.with_mut(|p| unsafe { *p = 9 });
        });
        t.join().unwrap();
        // No atomics at all: the join edge alone must order the write
        // before this read.
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 9);
    });
    assert!(report.complete);
}

#[test]
fn random_phase_runs_when_budget_truncates() {
    // Tiny systematic budget forces the seeded random tail to run.
    let report = loom::model::Builder {
        max_iterations: 2,
        random_iterations: 8,
        seed: 42,
        ..loom::model::Builder::new()
    }
    .check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(loom::thread::spawn(move || {
                n.fetch_add(1, Ordering::AcqRel);
                n.fetch_add(1, Ordering::AcqRel);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 4);
    });
    assert!(!report.complete);
    assert_eq!(report.executions, 2 + 8);
}

#[test]
fn spin_loop_hint_is_a_yield() {
    let report = loom::model::Builder::new().check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            flag2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            loom::hint::spin_loop();
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}
