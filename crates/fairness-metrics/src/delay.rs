//! Packet delay measurement (paper Figure 5).

use desim::{Cycle, Histogram, OnlineStats};
use err_sched::ServedFlit;

/// Records per-packet delays, overall and per flow.
///
/// Delay follows the paper's definition: "the number of cycles between
/// the instant it is placed in the queue for scheduling, to the instant
/// its last flit is dequeued" — i.e. `tail_service_cycle - arrival`.
#[derive(Clone, Debug)]
pub struct DelayRecorder {
    overall: OnlineStats,
    per_flow: Vec<OnlineStats>,
    histogram: Histogram,
}

impl DelayRecorder {
    /// Creates a recorder for `n_flows` flows. The histogram spans
    /// delays up to `hist_bins * hist_bin_width` cycles.
    pub fn new(n_flows: usize, hist_bin_width: u64, hist_bins: usize) -> Self {
        Self {
            overall: OnlineStats::new(),
            per_flow: vec![OnlineStats::new(); n_flows],
            histogram: Histogram::new(hist_bin_width, hist_bins),
        }
    }

    /// Feeds a served flit; only tail flits record a delay sample.
    pub fn on_flit(&mut self, flit: &ServedFlit, now: Cycle) {
        if !flit.is_tail() {
            return;
        }
        debug_assert!(now >= flit.arrival, "departure before arrival");
        let delay = now - flit.arrival;
        self.overall.push(delay as f64);
        if let Some(s) = self.per_flow.get_mut(flit.flow) {
            s.push(delay as f64);
        }
        self.histogram.record(delay);
    }

    /// Mean delay across all packets, in cycles.
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Number of packets measured.
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Mean delay of one flow's packets.
    pub fn flow_mean(&self, flow: usize) -> f64 {
        self.per_flow.get(flow).map_or(0.0, |s| s.mean())
    }

    /// Packet count of one flow.
    pub fn flow_count(&self, flow: usize) -> u64 {
        self.per_flow.get(flow).map_or(0, |s| s.count())
    }

    /// Largest observed delay.
    pub fn max(&self) -> u64 {
        self.overall.max().map_or(0, |v| v as u64)
    }

    /// Approximate delay quantile (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.histogram.quantile(q)
    }

    /// Merges another recorder (e.g. from a parallel sweep shard).
    pub fn merge(&mut self, other: &DelayRecorder) {
        self.overall.merge(&other.overall);
        assert_eq!(self.per_flow.len(), other.per_flow.len());
        for (a, b) in self.per_flow.iter_mut().zip(&other.per_flow) {
            a.merge(b);
        }
        self.histogram.merge(&other.histogram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use err_sched::Packet;

    fn tail(flow: usize, arrival: u64, len: u32) -> ServedFlit {
        ServedFlit::of(&Packet::new(0, flow, len, arrival), len - 1)
    }

    #[test]
    fn only_tail_flits_count() {
        let mut d = DelayRecorder::new(1, 10, 100);
        let p = Packet::new(0, 0, 3, 5);
        d.on_flit(&ServedFlit::of(&p, 0), 6);
        d.on_flit(&ServedFlit::of(&p, 1), 7);
        assert_eq!(d.count(), 0);
        d.on_flit(&ServedFlit::of(&p, 2), 8);
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 3.0); // 8 - 5
    }

    #[test]
    fn per_flow_and_overall_means() {
        let mut d = DelayRecorder::new(2, 10, 100);
        d.on_flit(&tail(0, 0, 1), 4); // delay 4
        d.on_flit(&tail(0, 10, 1), 16); // delay 6
        d.on_flit(&tail(1, 0, 1), 10); // delay 10
        assert_eq!(d.flow_mean(0), 5.0);
        assert_eq!(d.flow_mean(1), 10.0);
        assert!((d.mean() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.flow_count(0), 2);
        assert_eq!(d.max(), 10);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = DelayRecorder::new(1, 10, 100);
        let mut b = DelayRecorder::new(1, 10, 100);
        a.on_flit(&tail(0, 0, 1), 2);
        b.on_flit(&tail(0, 0, 1), 6);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 4.0);
    }

    #[test]
    fn quantiles_monotone() {
        let mut d = DelayRecorder::new(1, 5, 200);
        for delay in 0..500u64 {
            d.on_flit(&tail(0, 0, 1), delay);
        }
        let q50 = d.quantile(0.5).unwrap();
        let q95 = d.quantile(0.95).unwrap();
        assert!(q50 <= q95);
    }
}
