//! Per-flow service accounting and the relative fairness measure.

use desim::{CumulativeCurve, Cycle, SimRng};
use err_sched::{FlowId, Packet, ServedFlit};

/// Records per-flow cumulative service and backlog ("busy") windows,
/// and answers the paper's fairness queries.
///
/// Feed it every arrival ([`on_enqueue`](Self::on_enqueue)) and every
/// served flit ([`on_flit`](Self::on_flit)), then call
/// [`finish`](Self::finish) once at the end of the run.
#[derive(Clone, Debug)]
pub struct FairnessMonitor {
    curves: Vec<CumulativeCurve>,
    backlog: Vec<u64>,
    busy_start: Vec<Option<Cycle>>,
    /// Closed busy windows `[start, end]` per flow (end = cycle of the
    /// flit that emptied the flow).
    busy: Vec<Vec<(Cycle, Cycle)>>,
    finished: bool,
}

impl FairnessMonitor {
    /// Creates a monitor for `n_flows` flows.
    pub fn new(n_flows: usize) -> Self {
        Self {
            curves: (0..n_flows).map(|_| CumulativeCurve::new()).collect(),
            backlog: vec![0; n_flows],
            busy_start: vec![None; n_flows],
            busy: (0..n_flows).map(|_| Vec::new()).collect(),
            finished: false,
        }
    }

    /// Number of flows tracked.
    pub fn n_flows(&self) -> usize {
        self.curves.len()
    }

    /// Records a packet arrival at cycle `now`.
    pub fn on_enqueue(&mut self, pkt: &Packet, now: Cycle) {
        let f = pkt.flow;
        assert!(f < self.curves.len(), "flow {f} out of range");
        if self.backlog[f] == 0 {
            self.busy_start[f] = Some(now);
        }
        self.backlog[f] += pkt.len as u64;
    }

    /// Records a served flit at cycle `now`.
    pub fn on_flit(&mut self, flit: &ServedFlit, now: Cycle) {
        let f = flit.flow;
        self.curves[f].add(now, 1);
        debug_assert!(self.backlog[f] > 0, "flit served with zero backlog");
        self.backlog[f] -= 1;
        if self.backlog[f] == 0 {
            let start = self.busy_start[f].take().expect("busy window open");
            self.busy[f].push((start, now));
        }
    }

    /// Closes any still-open busy windows at cycle `now`. Call once when
    /// the measurement interval ends.
    pub fn finish(&mut self, now: Cycle) {
        for f in 0..self.curves.len() {
            if let Some(start) = self.busy_start[f].take() {
                self.busy[f].push((start, now));
            }
        }
        self.finished = true;
    }

    /// `Sent_f(t1, t2)`: flits flow `f` sent in `(t1, t2]`.
    pub fn sent(&self, f: FlowId, t1: Cycle, t2: Cycle) -> u64 {
        self.curves[f].delta(t1, t2)
    }

    /// Total flits flow `f` has sent.
    pub fn total(&self, f: FlowId) -> u64 {
        self.curves[f].total()
    }

    /// Whether flow `f` was continuously backlogged throughout `[t1, t2]`.
    pub fn busy_through(&self, f: FlowId, t1: Cycle, t2: Cycle) -> bool {
        // Binary search the closed windows for one containing [t1, t2].
        let windows = &self.busy[f];
        let idx = windows.partition_point(|&(_, end)| end < t2);
        windows
            .get(idx)
            .is_some_and(|&(start, end)| start <= t1 && t2 <= end)
    }

    /// The jointly busy windows of flows `i` and `j` (interval
    /// intersection of their busy windows).
    fn jointly_busy(&self, i: FlowId, j: FlowId) -> Vec<(Cycle, Cycle)> {
        let (a, b) = (&self.busy[i], &self.busy[j]);
        let mut out = Vec::new();
        let (mut x, mut y) = (0, 0);
        while x < a.len() && y < b.len() {
            let lo = a[x].0.max(b[y].0);
            let hi = a[x].1.min(b[y].1);
            if lo < hi {
                out.push((lo, hi));
            }
            if a[x].1 < b[y].1 {
                x += 1;
            } else {
                y += 1;
            }
        }
        out
    }

    /// The exact relative fairness measure: the supremum of
    /// `|Sent_i(t1,t2) - Sent_j(t1,t2)|` over all flow pairs and all
    /// intervals throughout which both flows are active.
    ///
    /// Per the paper's Lemma 2 the supremum is attained with `t1, t2` at
    /// service-event instants, so a single sweep over the merged event
    /// times of each pair suffices: track the running difference
    /// `D(t) = Sent_i(0,t) - Sent_j(0,t)` and its running min/max within
    /// each jointly-busy window (a maximum-drawdown scan). O(pairs ×
    /// events).
    ///
    /// Panics unless [`finish`](Self::finish) was called.
    pub fn exact_fm(&self) -> u64 {
        assert!(self.finished, "call finish() before exact_fm()");
        let n = self.curves.len();
        let mut fm = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                for &(lo, hi) in &self.jointly_busy(i, j) {
                    fm = fm.max(self.pair_fm_in_window(i, j, lo, hi));
                }
            }
        }
        fm as u64
    }

    /// Max |D(t2) - D(t1)| for lo <= t1 < t2 <= hi, where D is the
    /// cumulative service difference of flows `i` and `j`.
    fn pair_fm_in_window(&self, i: FlowId, j: FlowId, lo: Cycle, hi: Cycle) -> i64 {
        // Merge the event times of both curves restricted to (lo, hi].
        let ci = &self.curves[i];
        let cj = &self.curves[j];
        let mut best = 0i64;
        // Baselines at the window start.
        let bi = ci.value_at(lo) as i64;
        let bj = cj.value_at(lo) as i64;
        let mut min_d = 0i64;
        let mut max_d = 0i64;
        let mut iter_i = ci.iter().skip_while(|&(t, _)| t <= lo).peekable();
        let mut iter_j = cj.iter().skip_while(|&(t, _)| t <= lo).peekable();
        let (mut vi, mut vj) = (bi, bj);
        loop {
            // Advance to the next event time within the window.
            let ti = iter_i.peek().map(|&(t, _)| t).filter(|&t| t <= hi);
            let tj = iter_j.peek().map(|&(t, _)| t).filter(|&t| t <= hi);
            let t = match (ti, tj) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if let Some(&(ta, v)) = iter_i.peek() {
                if ta == t {
                    vi = v as i64;
                    iter_i.next();
                }
            }
            if let Some(&(tb, v)) = iter_j.peek() {
                if tb == t {
                    vj = v as i64;
                    iter_j.next();
                }
            }
            let d = (vi - bi) - (vj - bj);
            best = best.max(d - min_d).max(max_d - d);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
        best
    }

    /// The Figure 6 statistic: the average of `FM(t1, t2)` over
    /// `n_intervals` random intervals drawn within `[t_lo, t_hi]`,
    /// counting only intervals throughout which **all** flows are active.
    /// Returns `None` if no valid interval could be drawn.
    pub fn avg_random_fm(
        &self,
        n_intervals: usize,
        t_lo: Cycle,
        t_hi: Cycle,
        rng: &mut SimRng,
    ) -> Option<f64> {
        assert!(self.finished, "call finish() before avg_random_fm()");
        assert!(t_lo < t_hi);
        let n = self.curves.len();
        let span = t_hi - t_lo;
        let mut sum = 0.0;
        let mut valid = 0usize;
        let max_attempts = n_intervals.saturating_mul(10);
        let mut attempts = 0usize;
        while valid < n_intervals && attempts < max_attempts {
            attempts += 1;
            let a = t_lo + (rng.uniform_f64() * span as f64) as u64;
            let b = t_lo + (rng.uniform_f64() * span as f64) as u64;
            let (t1, t2) = if a < b { (a, b) } else { (b, a) };
            if t1 == t2 {
                continue;
            }
            if !(0..n).all(|f| self.busy_through(f, t1, t2)) {
                continue;
            }
            let sents: Vec<u64> = (0..n).map(|f| self.sent(f, t1, t2)).collect();
            let max = *sents.iter().max().expect("n > 0");
            let min = *sents.iter().min().expect("n > 0");
            sum += (max - min) as f64;
            valid += 1;
        }
        (valid > 0).then(|| sum / valid as f64)
    }

    /// Empirical latency-rate characterization of flow `f` at reserved
    /// rate `rho` (flits/cycle): the smallest `theta` such that in every
    /// busy period starting at `tau`,
    /// `W(tau, t) >= rho * (t - tau - theta)` for all `t` — the
    /// Stiliadis–Varghese LR-server model. A scheduler with a small
    /// `theta` at `rho = fair share` gives flows a rate guarantee that
    /// kicks in quickly; PBRR/FCFS have no such guarantee and their
    /// empirical `theta` grows with the competing traffic.
    ///
    /// Returns `None` if the flow was never busy.
    pub fn empirical_latency(&self, f: FlowId, rho: f64) -> Option<f64> {
        assert!(rho > 0.0, "rate must be positive");
        assert!(self.finished, "call finish() before empirical_latency()");
        let windows = &self.busy[f];
        if windows.is_empty() {
            return None;
        }
        let curve = &self.curves[f];
        let mut theta = 0.0f64;
        for &(start, end) in windows {
            let base = curve.value_at(start);
            let mut prev_cum = base;
            // Lag is maximized just before a service event lands (the
            // elapsed time has grown, the service has not), and at the
            // busy-period end.
            for (t, cum) in curve.iter() {
                if t <= start {
                    continue;
                }
                if t > end {
                    break;
                }
                let lag = (t - start) as f64 - (prev_cum - base) as f64 / rho;
                theta = theta.max(lag);
                prev_cum = cum;
            }
            let lag_end = (end - start) as f64 - (curve.value_at(end) - base) as f64 / rho;
            theta = theta.max(lag_end);
        }
        Some(theta)
    }

    /// Average `FM(t1, t1 + window)` over `n_intervals` random
    /// placements of a **fixed-length** window inside `[t_lo, t_hi]`,
    /// counting only placements where all flows are active throughout.
    ///
    /// Sweeping `window` exposes a discipline's burst structure: for ERR
    /// the curve saturates near its `3m` bound (unfairness never
    /// accumulates beyond one round's elasticity), while quantum-based
    /// disciplines saturate at their quantum scale.
    pub fn avg_fixed_window_fm(
        &self,
        n_intervals: usize,
        window: Cycle,
        t_lo: Cycle,
        t_hi: Cycle,
        rng: &mut SimRng,
    ) -> Option<f64> {
        assert!(self.finished, "call finish() before avg_fixed_window_fm()");
        assert!(window >= 1);
        if t_lo + window > t_hi {
            return None;
        }
        let n = self.curves.len();
        let span = t_hi - t_lo - window;
        let mut sum = 0.0;
        let mut valid = 0usize;
        let max_attempts = n_intervals.saturating_mul(10);
        let mut attempts = 0usize;
        while valid < n_intervals && attempts < max_attempts {
            attempts += 1;
            let t1 = t_lo + (rng.uniform_f64() * span as f64) as u64;
            let t2 = t1 + window;
            if !(0..n).all(|f| self.busy_through(f, t1, t2)) {
                continue;
            }
            let sents: Vec<u64> = (0..n).map(|f| self.sent(f, t1, t2)).collect();
            let max = *sents.iter().max().expect("n > 0");
            let min = *sents.iter().min().expect("n > 0");
            sum += (max - min) as f64;
            valid += 1;
        }
        (valid > 0).then(|| sum / valid as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use err_sched::Discipline;

    fn pkt(id: u64, flow: FlowId, len: u32, arrival: u64) -> Packet {
        Packet::new(id, flow, len, arrival)
    }

    /// Run a discipline over a fully backlogged workload, feeding the
    /// monitor, and return it.
    fn run_backlogged(
        d: &Discipline,
        n_flows: usize,
        pkts_per_flow: u64,
        len: u32,
    ) -> FairnessMonitor {
        let mut s = d.build(n_flows);
        let mut mon = FairnessMonitor::new(n_flows);
        let mut id = 0;
        for f in 0..n_flows {
            for _ in 0..pkts_per_flow {
                let p = pkt(id, f, len, 0);
                s.enqueue(p, 0);
                mon.on_enqueue(&p, 0);
                id += 1;
            }
        }
        let mut now = 0;
        while let Some(fl) = s.service_flit(now) {
            mon.on_flit(&fl, now);
            now += 1;
        }
        mon.finish(now);
        mon
    }

    #[test]
    fn sent_and_total_accounting() {
        let mut mon = FairnessMonitor::new(2);
        let p0 = pkt(0, 0, 3, 0);
        let p1 = pkt(1, 1, 2, 0);
        mon.on_enqueue(&p0, 0);
        mon.on_enqueue(&p1, 0);
        let flits = [
            (0u64, ServedFlit::of(&p0, 0)),
            (1, ServedFlit::of(&p0, 1)),
            (2, ServedFlit::of(&p1, 0)),
            (3, ServedFlit::of(&p0, 2)),
            (4, ServedFlit::of(&p1, 1)),
        ];
        for (t, f) in &flits {
            mon.on_flit(f, *t);
        }
        mon.finish(5);
        assert_eq!(mon.total(0), 3);
        assert_eq!(mon.total(1), 2);
        assert_eq!(mon.sent(0, 0, 3), 2); // flits at cycles 1 and 3
        assert_eq!(mon.sent(1, 1, 4), 2);
    }

    #[test]
    fn busy_windows_track_backlog() {
        let mut mon = FairnessMonitor::new(1);
        let p0 = pkt(0, 0, 2, 5);
        mon.on_enqueue(&p0, 5);
        mon.on_flit(&ServedFlit::of(&p0, 0), 6);
        mon.on_flit(&ServedFlit::of(&p0, 1), 7);
        let p1 = pkt(1, 0, 1, 20);
        mon.on_enqueue(&p1, 20);
        mon.on_flit(&ServedFlit::of(&p1, 0), 21);
        mon.finish(30);
        assert!(mon.busy_through(0, 5, 7));
        assert!(!mon.busy_through(0, 5, 8));
        assert!(!mon.busy_through(0, 10, 21));
        assert!(mon.busy_through(0, 20, 21));
    }

    #[test]
    fn exact_fm_zero_for_single_flow() {
        let mon = run_backlogged(&Discipline::Err, 1, 10, 4);
        assert_eq!(mon.exact_fm(), 0);
    }

    #[test]
    fn exact_fm_small_for_fbrr() {
        // FBRR alternates flits: the difference never exceeds 1.
        let mon = run_backlogged(&Discipline::Fbrr, 2, 20, 4);
        assert!(mon.exact_fm() <= 1, "FBRR fm = {}", mon.exact_fm());
    }

    #[test]
    fn exact_fm_matches_hand_computation() {
        // Two flows served as whole packets alternately (PBRR with equal
        // lengths L): within a packet the leader gets up to L ahead; the
        // FM is exactly L plus... for equal-length alternation the
        // difference oscillates in [-L, L] peak-to-peak 2L? Check: serve
        // 4-flit packets A,B,A,B. D goes 1,2,3,4 then 3,2,1,0 then ...
        // max drawdown within a window = 4.
        let mon = run_backlogged(&Discipline::Pbrr, 2, 6, 4);
        assert_eq!(mon.exact_fm(), 4);
    }

    #[test]
    fn err_fm_bounded_by_3m_on_random_traffic() {
        use desim::SimRng;
        // End-to-end Theorem 3 check on a random always-backlogged mix.
        let mut s = Discipline::Err.build(4);
        let mut mon = FairnessMonitor::new(4);
        let mut rng = SimRng::new(5);
        let mut id = 0;
        let mut m = 0u64;
        for f in 0..4usize {
            for _ in 0..400 {
                let len = rng.uniform_u32(1, 32);
                m = m.max(len as u64);
                let p = pkt(id, f, len, 0);
                s.enqueue(p, 0);
                mon.on_enqueue(&p, 0);
                id += 1;
            }
        }
        let mut now = 0;
        while let Some(fl) = s.service_flit(now) {
            mon.on_flit(&fl, now);
            now += 1;
        }
        mon.finish(now);
        let fm = mon.exact_fm();
        assert!(fm < 3 * m, "FM {fm} >= 3m = {}", 3 * m);
        assert!(fm > 0);
    }

    #[test]
    fn avg_random_fm_respects_activity() {
        let mon = run_backlogged(&Discipline::Err, 3, 50, 5);
        let mut rng = SimRng::new(9);
        let horizon = 3 * 50 * 5;
        let avg = mon.avg_random_fm(200, 0, horizon - 1, &mut rng);
        let avg = avg.expect("flows backlogged the whole run");
        assert!(avg >= 0.0);
        assert!(avg < 15.0, "avg fm {avg} should be below 3m = 15");
    }

    #[test]
    fn empirical_latency_flit_rr_is_tight() {
        // FBRR at fair rate 1/2: a flow is served every other cycle, so
        // its service never lags the rho * t line by more than ~2 cycles.
        let mon = run_backlogged(&Discipline::Fbrr, 2, 30, 4);
        let theta = mon.empirical_latency(0, 0.5).unwrap();
        assert!(theta <= 2.5, "FBRR theta {theta}");
    }

    #[test]
    fn empirical_latency_ranks_disciplines() {
        // Two flows, flow 1 sends 16x longer packets. At fair rate 1/2,
        // ERR's latency for the short-packet flow is bounded by a few
        // max packets; PBRR's is much worse (it must sit through the
        // long packets at equal packet cadence).
        let run = |d: &Discipline| -> f64 {
            let mut s = d.build(2);
            let mut mon = FairnessMonitor::new(2);
            let mut id = 0;
            for k in 0..200u64 {
                for (f, len) in [(0usize, 2u32), (1, 32)] {
                    let p = Packet::new(id, f, len, 0);
                    s.enqueue(p, 0);
                    mon.on_enqueue(&p, 0);
                    id += 1;
                    let _ = k;
                }
            }
            let mut now = 0;
            while let Some(fl) = s.service_flit(now) {
                mon.on_flit(&fl, now);
                now += 1;
            }
            mon.finish(now);
            mon.empirical_latency(0, 0.5).unwrap()
        };
        let err = run(&Discipline::Err);
        let pbrr = run(&Discipline::Pbrr);
        assert!(err < pbrr, "ERR theta {err} vs PBRR {pbrr}");
        // ERR's lag for the compliant flow stays within a handful of
        // max-size packets.
        assert!(err < 6.0 * 32.0, "ERR theta {err} too large");
        assert!(pbrr > err * 1.5, "PBRR should be clearly worse: {pbrr}");
    }

    #[test]
    fn empirical_latency_none_for_idle_flow() {
        let mut mon = FairnessMonitor::new(2);
        mon.finish(100);
        assert_eq!(mon.empirical_latency(1, 0.5), None);
    }

    #[test]
    fn avg_random_fm_none_when_never_jointly_busy() {
        let mut mon = FairnessMonitor::new(2);
        // Flow 0 busy [0,1], flow 1 busy [10,11]: never jointly active.
        let p0 = pkt(0, 0, 2, 0);
        mon.on_enqueue(&p0, 0);
        mon.on_flit(&ServedFlit::of(&p0, 0), 0);
        mon.on_flit(&ServedFlit::of(&p0, 1), 1);
        let p1 = pkt(1, 1, 2, 10);
        mon.on_enqueue(&p1, 10);
        mon.on_flit(&ServedFlit::of(&p1, 0), 10);
        mon.on_flit(&ServedFlit::of(&p1, 1), 11);
        mon.finish(12);
        let mut rng = SimRng::new(3);
        assert_eq!(mon.avg_random_fm(50, 0, 11, &mut rng), None);
    }
}
