//! Exact sample percentiles (nearest-rank), shared by the §12
//! estimator report and `BENCH_estimate.json` so neither carries its
//! own ad-hoc sorting.

/// The nearest-rank percentile of `samples` at `q ∈ [0, 1]`: the
/// smallest sample such that at least `q` of the distribution lies at
/// or below it (`q = 0` is the minimum, `q = 1` the maximum). Returns
/// `None` on an empty slice. Not an approximation — this sorts a copy,
/// so it is for report-sized sample sets, not per-flit hot paths
/// (`desim::Histogram::quantile` covers those).
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile rank out of range");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile over NaN"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Median shorthand: `percentile(samples, 0.5)`.
pub fn p50(samples: &[f64]) -> Option<f64> {
    percentile(samples, 0.5)
}

/// Tail shorthand: `percentile(samples, 0.99)`.
pub fn p99(samples: &[f64]) -> Option<f64> {
    percentile(samples, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(p50(&[]), None);
        assert_eq!(p99(&[]), None);
    }

    #[test]
    fn nearest_rank_on_small_sets() {
        let s = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(p50(&s), Some(3.0));
        assert_eq!(percentile(&s, 1.0), Some(5.0));
        assert_eq!(p50(&[42.0]), Some(42.0));
    }

    #[test]
    fn ranks_match_definition_on_a_hundred() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(p50(&s), Some(50.0));
        assert_eq!(p99(&s), Some(99.0));
        assert_eq!(percentile(&s, 0.01), Some(1.0));
        assert_eq!(percentile(&s, 1.0), Some(100.0));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = [9.0, 2.0, 7.0, 4.0, 1.0, 8.0, 3.0, 6.0, 5.0, 10.0];
        assert_eq!(p50(&s), Some(5.0));
        assert_eq!(p99(&s), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "percentile rank out of range")]
    fn out_of_range_rank_panics() {
        percentile(&[1.0], 1.5);
    }
}
