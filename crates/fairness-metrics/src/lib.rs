#![warn(missing_docs)]

//! `fairness-metrics` — measurement machinery for the ERR reproduction.
//!
//! The paper quantifies schedulers three ways, all implemented here:
//!
//! * **Relative fairness measure** (Definition 1, after Golestani): for an
//!   interval `(t1, t2)`, `FM(t1, t2)` is the largest
//!   `|Sent_i(t1,t2) - Sent_j(t1,t2)|` over pairs of flows *active
//!   throughout the interval*, and `FM` is the supremum over intervals.
//!   [`FairnessMonitor::exact_fm`] computes the exact supremum (using the
//!   paper's Lemma 2 insight that only service-event instants matter),
//!   and [`FairnessMonitor::avg_random_fm`] computes the Figure 6
//!   statistic: the average of `FM(t1, t2)` over randomly chosen
//!   intervals.
//! * **Throughput** per flow over an interval (Figure 4's KBytes bars):
//!   [`FairnessMonitor::sent`] / [`FairnessMonitor::total`].
//! * **Packet delay** (Figure 5): [`DelayRecorder`] measures, per the
//!   paper, "the number of cycles between the instant it is placed in the
//!   queue for scheduling, to the instant its last flit is dequeued".
//!
//! [`jain::jain_index`] adds the standard Jain fairness index as a
//! secondary cross-check not present in the paper.

pub mod delay;
pub mod jain;
pub mod monitor;
pub mod percentile;

pub use delay::DelayRecorder;
pub use jain::jain_index;
pub use monitor::FairnessMonitor;
pub use percentile::{p50, p99, percentile};
