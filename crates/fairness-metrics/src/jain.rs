//! Jain's fairness index — a secondary, paper-external cross-check.
//!
//! `J(x) = (Σx)² / (n · Σx²)` ranges from `1/n` (one flow takes all) to
//! `1` (perfect equality). The paper reports raw per-flow throughputs
//! (Figure 4); our experiment tables add this single-number summary
//! because it makes the ERR-vs-PBRR/FCFS gap legible at a glance.

/// Computes Jain's fairness index over per-flow allocations.
///
/// Returns 1.0 for an empty or all-zero allocation (vacuously fair).
pub fn jain_index(alloc: &[u64]) -> f64 {
    if alloc.is_empty() {
        return 1.0;
    }
    let sum: f64 = alloc.iter().map(|&x| x as f64).sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = alloc.iter().map(|&x| (x as f64) * (x as f64)).sum();
    (sum * sum) / (alloc.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_equality_is_one() {
        assert!((jain_index(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolist_is_one_over_n() {
        let j = jain_index(&[100, 0, 0, 0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ordering_reflects_fairness() {
        let fair = jain_index(&[10, 10, 10]);
        let skew = jain_index(&[20, 5, 5]);
        let worse = jain_index(&[28, 1, 1]);
        assert!(fair > skew && skew > worse);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
        assert!((jain_index(&[7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1, 2, 3]);
        let b = jain_index(&[100, 200, 300]);
        assert!((a - b).abs() < 1e-12);
    }
}
