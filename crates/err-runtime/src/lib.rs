#![warn(missing_docs)]

//! `err-runtime` — a sharded multi-core scheduling runtime around the
//! `err-sched` disciplines.
//!
//! The paper's case for Elastic Round Robin is that its O(1),
//! length-oblivious decision rule is cheap enough to run at link rate in
//! switch hardware. This crate is the serving substrate that claim
//! implies: many producers submitting packets concurrently, scheduled
//! across several independent egress links, with bounded memory under
//! overload and a deterministic way to stop.
//!
//! # Architecture
//!
//! ```text
//!  producers (any thread)
//!     │  submit(Packet)          O(1): admission RMW + ring CAS
//!     ▼
//!  [AdmissionController]         per-flow flit caps: drop / reject / wait
//!     │
//!     ├── hash(flow) ──► shard 0: [MpscRing] ─► worker: ErrScheduler ─► egress
//!     ├───────────────► shard 1: [MpscRing] ─► worker: ErrScheduler ─► egress
//!     └───────────────► shard N: [MpscRing] ─► worker: ErrScheduler ─► egress
//!                                  │
//!                                  └─ lock-free ShardStats ─► RuntimeStats
//! ```
//!
//! * Flows are hash-partitioned ([`ingress`]), so each flow's packets
//!   always meet the same scheduler — per-flow FIFO and ERR's fairness
//!   guarantees hold per shard without any cross-shard coordination.
//! * Each shard worker drives a private `Box<dyn Scheduler + Send>` in
//!   batched intake/service loops ([`shard`]); one flit = one cycle of
//!   the shard's flit clock, the paper's egress-link model.
//! * [`admission`] bounds each flow's outstanding flits with drop-tail,
//!   reject, or backpressure policies.
//! * [`stats`] publishes lock-free per-shard counters merged on demand.
//! * [`drain`] documents the shutdown protocol: close admission, serve
//!   the residual backlog to empty, join every worker deterministically.
//! * [`EgressMode::Buffered`] inserts the `err-egress` stage between
//!   scheduler and sink: per-shard SPSC output rings drained by flusher
//!   threads, per-link credit flow control, and flow parking so a
//!   stalled downstream freezes only its own flows — the regime the
//!   paper's stalled-wormhole argument is about.
//! * [`fault`] adds the failure half of that story (DESIGN.md §9):
//!   supervised workers that salvage their flows when they panic, a
//!   heartbeat supervisor that quarantines wedged shards, dead-link
//!   failover in the egress stage, bounded shutdown
//!   ([`Runtime::shutdown_within`]) and submit
//!   ([`RuntimeHandle::submit_within`]), and a seeded [`FaultPlan`]
//!   chaos harness that replays shard and link deaths deterministically.
//! * [`ownership`] is the single flow-ownership authority
//!   (DESIGN.md §13): an epoch-stamped [`FlowMap`] plus submit windows
//!   and per-flow claims, shared by stealing ([`migrate`]) and
//!   supervision ([`fault`]). One authority is what lets the two
//!   overlays compose (with [`SupervisionConfig::resurrection`]) and
//!   lets stealing run under [`EgressMode::Buffered`] via the §13.5
//!   egress-retire fence.
//!
//! # Quick example
//!
//! ```
//! use err_runtime::{Runtime, RuntimeConfig};
//! use err_sched::{Discipline, Packet};
//!
//! let (runtime, handle) = Runtime::start(RuntimeConfig {
//!     shards: 2,
//!     n_flows: 8,
//!     discipline: Discipline::Err,
//!     ..RuntimeConfig::default()
//! });
//! for id in 0..64 {
//!     let flow = (id % 8) as usize;
//!     handle.submit(Packet::new(id, flow, 4, 0)).unwrap();
//! }
//! let report = runtime.shutdown();
//! assert_eq!(report.served_packets(), 64);
//! assert!(report.is_conserving());
//! ```

pub mod admission;
pub mod channel;
pub mod drain;
pub mod fault;
pub mod gate;
pub mod ingress;
pub mod migrate;
pub mod ownership;
pub mod shard;
pub mod stats;
pub(crate) mod sync;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use err_egress::{spsc_ring, FlushProgress, FlusherCore, LinkSet, ShardEgressStats, StallInjector};
use err_sched::{Discipline, ServedFlit};

pub use admission::{AdmissionController, AdmissionPolicy, AdmitDecision};
pub use drain::{DrainReport, ShardExit};
pub use err_egress::{
    BufferedConfig, DeadLinkPolicy, Egress, EgressController, EgressSnapshot, LinkState,
    SharedEgress, StallPlan, StallWindow,
};
pub use fault::{
    FaultBoard, FaultEvent, FaultInjector, FaultKind, FaultPlan, ShardHealth, SupervisionConfig,
};
pub use ingress::{RuntimeHandle, SubmitError, Submitted};
pub use migrate::{LoadBoard, MigrationPhase, MigrationSlot, StealingConfig};
pub use ownership::{ClaimToken, FlowMap, OwnerState, Ownership};
pub use stats::{RuntimeStats, ShardSnapshot};

use admission::AdmissionController as Controller;
use channel::MpscRing;
use ingress::Shared;
use stats::ShardStats;

/// Wraps a per-shard sink that may be absent; the flusher requires a
/// concrete [`Egress`] value either way.
struct OptionalSink<E>(Option<E>);

impl<E: Egress> Egress for OptionalSink<E> {
    fn emit(&mut self, shard: usize, flit: &ServedFlit) {
        if let Some(sink) = self.0.as_mut() {
            sink.emit(shard, flit);
        }
    }

    // Must forward rather than inherit the default: the default
    // delegates to `emit`, and a refusing sink (a fabric forwarder)
    // implements refusal by *blocking* in `emit` — which would wedge
    // the flusher thread on one flit and starve its other links.
    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {
        match self.0.as_mut() {
            Some(sink) => sink.try_emit(shard, flit),
            None => true,
        }
    }
}

/// How served flits reach the downstream sink.
#[derive(Clone, Debug, Default)]
pub enum EgressMode {
    /// Legacy path: the worker calls the sink inline for every flit. A
    /// slow or stalled sink freezes the shard's whole flit clock.
    #[default]
    Sync,
    /// Credit-based asynchronous path (`err-egress`): per-shard output
    /// rings drained by flusher threads, per-link credits, flow parking
    /// on stall, optional deterministic stall injection.
    Buffered(BufferedConfig),
}

/// Configuration of a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of shards (worker threads / independent egress links).
    pub shards: usize,
    /// Size of the flow-id space; flows are `0..n_flows`.
    pub n_flows: usize,
    /// Discipline each shard instantiates privately.
    pub discipline: Discipline,
    /// Per-shard ingress ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Max packets pulled from the ring per service loop.
    pub batch_packets: usize,
    /// Max flits served per service loop.
    pub batch_flits: usize,
    /// Overload policy; [`AdmissionPolicy::Unlimited`] turns capping off.
    pub admission: AdmissionPolicy,
    /// Egress coupling; [`EgressMode::Sync`] is the legacy inline path.
    pub egress: EgressMode,
    /// Work stealing / flow migration (DESIGN.md §8, §13). `None` keeps
    /// the static partition. Requires a discipline with
    /// `supports_migration()` (ERR/WERR) — `Runtime::start` asserts it.
    /// Works under either [`EgressMode`]: under
    /// [`EgressMode::Buffered`] the donor adds the §13.5 egress-retire
    /// fence (a flow's home flips only after its last victim flit has
    /// retired downstream), so handoffs never interleave a wormhole.
    /// Composes with `supervision` only when
    /// [`SupervisionConfig::resurrection`] is on — asserted by
    /// `Runtime::start` (§13.6).
    pub stealing: Option<StealingConfig>,
    /// Shard supervision (DESIGN.md §9): heartbeats, quarantine, and —
    /// per [`SupervisionConfig::resurrection`] — either panic salvage
    /// (flows permanently re-homed to a rescue shard) or true shard
    /// resurrection (a fresh worker thread adopts the dead shard's
    /// ring, scheduler, and migration state, §13.6). Requires a
    /// discipline with extract/absorb support (ERR/WERR); works under
    /// either [`EgressMode`] — buffered salvage re-parks restored flows
    /// per link via `BufferedFaultCtx` (DESIGN.md §9.2). Per-flow
    /// arbitration against a racing steal goes through the one
    /// [`Ownership`] authority (§13.1).
    pub supervision: Option<SupervisionConfig>,
    /// Deterministic fault injection (DESIGN.md §9.5); events fire on
    /// each shard's flit clock. Requires `supervision`.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            n_flows: 64,
            discipline: Discipline::Err,
            ring_capacity: 1024,
            batch_packets: 64,
            batch_flits: 256,
            admission: AdmissionPolicy::Unlimited,
            egress: EgressMode::Sync,
            stealing: None,
            supervision: None,
            fault_plan: None,
        }
    }
}

/// A running sharded scheduling runtime. Dropping it without calling
/// [`shutdown`](Self::shutdown) also drains cleanly (via `Drop`), but
/// `shutdown` is the API that returns the final accounting.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<u64>>,
    flushers: Vec<JoinHandle<()>>,
    /// Buffered-mode state; `None` under [`EgressMode::Sync`].
    egress: Option<EgressController>,
    /// Tells the flushers the workers are gone and everything buffered
    /// may be final-delivered. Set strictly after the workers join.
    egress_closed: Arc<AtomicBool>,
    /// Supervisor thread and its stop flag (`RuntimeConfig::supervision`).
    supervisor: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    drained: AtomicBool,
}

/// Interval at which the deadline drain polls worker exits
/// (DESIGN.md §9.4: `shutdown_within` returns within the deadline plus
/// at most one of these).
const DRAIN_POLL: Duration = Duration::from_millis(1);

impl Runtime {
    /// Starts the runtime: spawns one worker per shard, each owning a
    /// fresh instance of the configured discipline. Returns the runtime
    /// and a cloneable producer handle.
    pub fn start(config: RuntimeConfig) -> (Self, RuntimeHandle) {
        // `fn` item: any no-op sink type works, `E` just needs naming.
        Self::start_with_egress(config, |_shard| None::<fn(usize, &ServedFlit)>)
    }

    /// Like [`start`](Self::start), but `egress(shard)` may return a
    /// sink every served flit of that shard is fed through (e.g. to
    /// forward downstream or record departures for delay measurement).
    /// Any `FnMut(usize, &ServedFlit) + Send` closure is a sink; so is
    /// any [`Egress`] implementation.
    ///
    /// Under [`EgressMode::Sync`] the shard worker calls the sink
    /// inline. Under [`EgressMode::Buffered`] the sink moves to the
    /// shard's flusher thread and the worker only commits flits to the
    /// output ring — sink latency no longer stalls scheduling.
    pub fn start_with_egress<E: Egress + 'static>(
        config: RuntimeConfig,
        mut egress: impl FnMut(usize) -> Option<E>,
    ) -> (Self, RuntimeHandle) {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_flits >= 1 && config.batch_packets >= 1);
        // The §13 ownership authority: one instance, shared by whichever
        // overlays are on (the whole point — a steal racing a salvage
        // resolves inside one epoch CAS, not across two maps).
        let own = (config.stealing.is_some() || config.supervision.is_some())
            .then(|| Arc::new(Ownership::new(config.n_flows, config.shards)));
        if config.stealing.is_some() {
            if let Some(sup) = &config.supervision {
                assert!(
                    sup.resurrection,
                    "stealing × supervision requires SupervisionConfig::resurrection \
                     (DESIGN.md §13.6): a mid-handoff death must resurrect the shard \
                     so the handoff's next protocol step is taken, not salvage it"
                );
            }
        }
        let steal = config.stealing.map(|sc| {
            assert!(
                config.discipline.build(1).supports_migration(),
                "work stealing requires a discipline with extract/absorb \
                 support (ERR or WERR), got {:?}",
                config.discipline
            );
            migrate::StealRuntime::new(
                Arc::clone(own.as_ref().expect("stealing implies ownership")),
                config.shards,
                sc,
            )
        });
        let fault = config.supervision.map(|sup| {
            assert!(
                config.discipline.build(1).supports_migration(),
                "supervision requires a discipline with extract/absorb \
                 support (ERR or WERR), got {:?}",
                config.discipline
            );
            let injector = config
                .fault_plan
                .as_ref()
                .map(|p| fault::FaultInjector::new(p, config.shards));
            fault::FaultRuntime::new(
                Arc::clone(own.as_ref().expect("supervision implies ownership")),
                config.shards,
                sup,
                injector,
            )
        });
        assert!(
            config.fault_plan.is_none() || fault.is_some(),
            "a FaultPlan requires supervision (RuntimeConfig::supervision)"
        );
        let shared = Arc::new(Shared {
            rings: (0..config.shards)
                .map(|_| MpscRing::with_capacity(config.ring_capacity))
                .collect(),
            stats: (0..config.shards).map(|_| ShardStats::default()).collect(),
            admission: Controller::new(config.admission, config.n_flows),
            own,
            steal,
            fault,
            gate: gate::DrainGate::new(),
            abort: AtomicBool::new(false),
        });
        let egress_closed = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(config.shards);
        let mut flushers = Vec::new();
        let mut controller = None;
        // Built per egress mode below (the closure must know the
        // concrete sink type); `Some` only under resurrection (§13.6).
        let mut respawn: Option<fault::RespawnFn> = None;
        let resurrection = shared
            .fault
            .as_ref()
            .is_some_and(|fr| fr.config.resurrection);
        // A fresh worker steals only if stealing is on; a successor also
        // inherits its predecessor's driver from the bequest.
        let fresh_driver = |shared: &Shared, shard: usize| {
            shared
                .steal
                .as_ref()
                .map(|_| migrate::MigrationDriver::new(shard))
        };

        match &config.egress {
            EgressMode::Sync => {
                for shard in 0..config.shards {
                    let shared = Arc::clone(&shared);
                    let scheduler = config.discipline.build(config.n_flows);
                    let sink = egress(shard);
                    let cfg = shard_config(&config, shard);
                    let driver = fresh_driver(&shared, shard);
                    workers.push(
                        // panic-policy: a worker panic is a modeled
                        // fault (§9) — the supervisor's sweep detects
                        // the dead shard and salvages; drain's join
                        // records it as `ShardExit::Panicked`.
                        std::thread::Builder::new()
                            .name(format!("err-shard-{shard}"))
                            .spawn(move || {
                                shard::run_shard(shared, cfg, scheduler, sink, driver, 0)
                            })
                            .expect("spawning shard worker"),
                    );
                }
                if resurrection {
                    let shared = Arc::clone(&shared);
                    let config = config.clone();
                    respawn = Some(Box::new(move |shard, gen, bequest| {
                        let shared = Arc::clone(&shared);
                        let cfg = shard_config(&config, shard);
                        // panic-policy: successors die like first-gen
                        // workers — supervised, salvaged, and reported
                        // as `ShardExit::Panicked` at drain (§9).
                        std::thread::Builder::new()
                            .name(format!("err-shard-{shard}r{gen}"))
                            .spawn(move || {
                                let fault::Bequest {
                                    scheduler,
                                    driver,
                                    now,
                                    egress,
                                } = bequest;
                                let sink = match egress {
                                    fault::BequestEgress::Sync(b) => *b
                                        .downcast::<Option<E>>()
                                        .expect("sync bequest carries the runtime's sink type"),
                                    fault::BequestEgress::Buffered { .. } => {
                                        unreachable!("sync runtime never posts a buffered bequest")
                                    }
                                };
                                shard::run_shard(shared, cfg, scheduler, sink, driver, now)
                            })
                            .expect("spawning successor worker")
                    }));
                }
            }
            EgressMode::Buffered(bc) => {
                let links = Arc::new(LinkSet::with_routing(
                    bc.n_links,
                    bc.credits,
                    bc.dead_link_deadline,
                    bc.dead_link_policy,
                    bc.route_table.clone(),
                ));
                let injector = bc
                    .stall_plan
                    .as_ref()
                    .map(|p| Arc::new(StallInjector::new(p)));
                let salvage_flows = if config.supervision.is_some() {
                    config.n_flows
                } else {
                    0
                };
                let mut shard_stats = Vec::with_capacity(config.shards);
                let mut progresses = Vec::with_capacity(config.shards);
                for shard in 0..config.shards {
                    let (tx, rx) = spsc_ring::<ServedFlit>(bc.ring_capacity);
                    let estats = Arc::new(ShardEgressStats::default());
                    shard_stats.push(Arc::clone(&estats));
                    let progress = Arc::new(FlushProgress::default());
                    progresses.push(Arc::clone(&progress));
                    let sink = OptionalSink(egress(shard));
                    let core = FlusherCore::new(shard, rx, bc.n_links);
                    {
                        let links = Arc::clone(&links);
                        let injector = injector.clone();
                        let closed = Arc::clone(&egress_closed);
                        let estats = Arc::clone(&estats);
                        let progress = Arc::clone(&progress);
                        flushers.push(
                            std::thread::Builder::new()
                                .name(format!("err-flusher-{shard}"))
                                .spawn(move || {
                                    // Flusher supervision (DESIGN.md
                                    // §14.4): a body that unwinds is
                                    // caught and counted instead of
                                    // poisoning the drain join; the
                                    // flits its death strands surface
                                    // as residual lost packets, never
                                    // as a wedged shutdown.
                                    let body = std::panic::AssertUnwindSafe(|| {
                                        err_egress::run_flusher(
                                            core,
                                            links,
                                            injector,
                                            closed,
                                            Arc::clone(&estats),
                                            progress,
                                            sink,
                                        )
                                    });
                                    if std::panic::catch_unwind(body).is_err() {
                                        estats.flusher_panics.fetch_add(1, Ordering::Relaxed);
                                    }
                                })
                                .expect("spawning flusher"),
                        );
                    }
                    let shared = Arc::clone(&shared);
                    let scheduler = config.discipline.build(config.n_flows);
                    let links = Arc::clone(&links);
                    let cfg = shard_config(&config, shard);
                    let state = shard::BufferedWorkerState::new(bc.n_links, salvage_flows);
                    let driver = fresh_driver(&shared, shard);
                    workers.push(
                        // panic-policy: a worker panic is a modeled
                        // fault (§9) — the supervisor's sweep detects
                        // the dead shard and salvages; drain's join
                        // records it as `ShardExit::Panicked`.
                        std::thread::Builder::new()
                            .name(format!("err-shard-{shard}"))
                            .spawn(move || {
                                shard::run_shard_buffered(
                                    shared, cfg, scheduler, tx, links, estats, progress, state,
                                    driver, 0,
                                )
                            })
                            .expect("spawning shard worker"),
                    );
                }
                if resurrection {
                    let shared = Arc::clone(&shared);
                    let config = config.clone();
                    let links = Arc::clone(&links);
                    let shard_stats = shard_stats.clone();
                    let progresses = progresses.clone();
                    respawn = Some(Box::new(move |shard, gen, bequest| {
                        let shared = Arc::clone(&shared);
                        let cfg = shard_config(&config, shard);
                        let links = Arc::clone(&links);
                        let estats = Arc::clone(&shard_stats[shard]);
                        let progress = Arc::clone(&progresses[shard]);
                        // panic-policy: successors die like first-gen
                        // workers — supervised, salvaged, and reported
                        // as `ShardExit::Panicked` at drain (§9).
                        std::thread::Builder::new()
                            .name(format!("err-shard-{shard}r{gen}"))
                            .spawn(move || {
                                let fault::Bequest {
                                    scheduler,
                                    driver,
                                    now,
                                    egress,
                                } = bequest;
                                let (tx, state) = match egress {
                                    fault::BequestEgress::Buffered { tx, state } => (tx, state),
                                    fault::BequestEgress::Sync(_) => {
                                        unreachable!("buffered runtime never posts a sync bequest")
                                    }
                                };
                                shard::run_shard_buffered(
                                    shared, cfg, scheduler, tx, links, estats, progress, state,
                                    driver, now,
                                )
                            })
                            .expect("spawning successor worker")
                    }));
                }
                controller = Some(EgressController::new(links, injector, shard_stats));
            }
        }

        let supervisor = shared.fault.as_ref().map(|_| {
            let stop = Arc::new(AtomicBool::new(false));
            let shared = Arc::clone(&shared);
            let stop2 = Arc::clone(&stop);
            let respawn = respawn.take();
            // panic-policy: a supervisor panic stops salvage and
            // resurrection but nothing else — workers and flushers
            // drain normally and the drain-time `join` absorbs the
            // unwind (its `Err` is deliberately discarded).
            let handle = std::thread::Builder::new()
                .name("err-supervisor".into())
                .spawn(move || fault::run_supervisor(shared, stop2, respawn))
                .expect("spawning supervisor");
            (stop, handle)
        });

        let handle = RuntimeHandle {
            shared: Arc::clone(&shared),
        };
        (
            Self {
                shared,
                workers,
                flushers,
                egress: controller,
                egress_closed,
                supervisor,
                drained: AtomicBool::new(false),
            },
            handle,
        )
    }

    /// A cloneable producer handle.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Live merged statistics (egress counters included in buffered
    /// mode).
    pub fn stats(&self) -> RuntimeStats {
        let stats = RuntimeStats::collect(&self.shared.stats);
        match &self.egress {
            Some(ctrl) => stats.with_egress(ctrl.snapshot()),
            None => stats,
        }
    }

    /// The egress controller: freeze/thaw links and snapshot egress
    /// counters while running. `None` under [`EgressMode::Sync`].
    pub fn egress_controller(&self) -> Option<&EgressController> {
        self.egress.as_ref()
    }

    /// Gracefully drains and stops the runtime: closes admission, lets
    /// every shard serve its residual backlog to completion, joins all
    /// workers in shard order, and returns the final accounting. Worker
    /// panics are reported in [`DrainReport::exits`], never re-thrown.
    pub fn shutdown(mut self) -> DrainReport {
        self.drain_within(None)
    }

    /// Bounded shutdown (DESIGN.md §9.4): the three-rung ladder
    /// *graceful drain → forced abort → abandon*. The runtime drains
    /// gracefully until the deadline minus a small grace budget, then
    /// raises the abort flag (workers stop serving and count residuals
    /// lost, [`DrainReport::forced`]), and any worker still running at
    /// the deadline is left behind as [`ShardExit::Abandoned`]. Returns
    /// within `deadline` plus at most one drain poll (~1 ms) under any
    /// fault pattern — the call that must come back even when links or
    /// shards never will.
    pub fn shutdown_within(mut self, deadline: Duration) -> DrainReport {
        self.drain_within(Some(deadline))
    }

    /// The fault board, when supervision is enabled: per-shard health,
    /// heartbeats, and death/recovery timestamps (DESIGN.md §9.1).
    pub fn fault_board(&self) -> Option<&FaultBoard> {
        self.shared.fault.as_ref().map(|fr| &fr.board)
    }

    fn drain_within(&mut self, timeout: Option<Duration>) -> DrainReport {
        self.drained.store(true, Ordering::Relaxed);
        // Dekker pairing with the in-flight counter in `submit` (see
        // `DrainGate`) so workers never miss a late producer.
        self.shared.gate.close();
        // Buffered mode: enter drain *before* joining workers. Frozen
        // links stop blocking, so the flushers deliver their pending
        // flits, credits flow back, and workers can unpark stalled
        // flows and serve out their backlog — without this ordering an
        // indefinitely stalled link would deadlock the join below.
        // (Dead links are *not* released by draining — §9.3.)
        if let Some(ctrl) = &self.egress {
            ctrl.links().set_draining(true);
        }
        let start = Instant::now();
        // Reserve a slice of the budget for the forced-abort rung, so
        // workers have time to run their residue accounting before the
        // abandon rung fires.
        let graceful_deadline = timeout.map(|t| {
            let grace = (t / 2).min(Duration::from_millis(50));
            start + (t - grace)
        });
        let final_deadline = timeout.map(|t| start + t);
        let mut forced = false;
        // Wedge forensics: `ERR_DRAIN_DEBUG=1` dumps the exit-gate
        // inputs (per-shard liveness, ring depth, backlog, migration
        // slot phases) every ~0.5 s of drain so a hung shutdown names
        // the shard and the protocol phase it is stuck behind.
        let debug_drain = std::env::var_os("ERR_DRAIN_DEBUG").is_some();
        let mut debug_polls: u64 = 0;
        loop {
            // Unpark idle workers; they would wake at the park timeout
            // anyway, this shaves the last <=100us per shard.
            for worker in &self.workers {
                worker.thread().unpark();
            }
            // Under resurrection the drain must also wait out successor
            // workers *and* bequests the supervisor has not yet adopted.
            // Both are read under the successors lock — the supervisor's
            // take→spawn→push runs under the same lock, so there is no
            // instant where a dying shard is in neither set.
            let lineage_done = match self.shared.fault.as_ref() {
                Some(fr) => {
                    let succ = fault::lock_unpoisoned(&fr.successors);
                    succ.iter().all(|(_, h)| h.is_finished()) && !fr.resurrection_pending()
                }
                None => true,
            };
            if lineage_done && self.workers.iter().all(|w| w.is_finished()) {
                break;
            }
            let now = Instant::now();
            if let Some(g) = graceful_deadline {
                if !forced && now >= g {
                    forced = true;
                    // ordering: Release (downgraded from SeqCst in
                    // PR 5) pairs with the workers' Acquire `abort`
                    // loads (shard.rs, fault.rs). A one-way stop latch
                    // needs no Dekker pairing: no reader consults a
                    // second flag whose order against this store
                    // matters.
                    self.shared.abort.store(true, Ordering::Release);
                }
            }
            if let Some(f) = final_deadline {
                if now >= f {
                    break;
                }
            }
            debug_polls += 1;
            if debug_drain && debug_polls.is_multiple_of(5000) {
                eprintln!("[drain-debug] poll {debug_polls}");
                for (i, w) in self.workers.iter().enumerate() {
                    eprintln!(
                        "  shard {i}: finished={} ring_len={} backlog={} parks={}",
                        w.is_finished(),
                        self.shared.rings[i].len(),
                        self.shared.stats[i].backlog_flits.get(),
                        self.shared.stats[i].parks.get(),
                    );
                }
                if let Some(sr) = self.shared.steal.as_ref() {
                    for (i, s) in sr.slots.iter().enumerate() {
                        eprintln!(
                            "  slot {i}: phase={:?} thief={:?} donor={:?} flow={:?}",
                            s.phase(),
                            s.thief(),
                            s.donor(),
                            s.flow(),
                        );
                    }
                }
            }
            if timeout.is_some() {
                std::thread::sleep(DRAIN_POLL);
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let mut shard_cycles = Vec::with_capacity(self.workers.len());
        let mut exits = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.drain(..).enumerate() {
            if timeout.is_some() && !worker.is_finished() {
                // Abandon rung: the thread is wedged past the deadline;
                // detach it and record the hole in the accounting.
                exits.push(ShardExit::Abandoned);
                shard_cycles.push(0);
                drop(worker);
                continue;
            }
            match worker.join() {
                Ok(cycles) => {
                    // A supervised worker that panicked returns normally
                    // after salvage or bequeath; the death stamp
                    // remembers it even after a resurrection sets the
                    // health back to Running/Exited (§13.6).
                    let died = self
                        .shared
                        .fault
                        .as_ref()
                        .is_some_and(|fr| fr.board.death_micros(shard).is_some());
                    exits.push(if died {
                        ShardExit::Panicked
                    } else {
                        ShardExit::Clean
                    });
                    shard_cycles.push(cycles);
                }
                Err(_) => {
                    exits.push(ShardExit::Panicked);
                    shard_cycles.push(0);
                }
            }
        }
        if let Some((stop, handle)) = self.supervisor.take() {
            // ordering: Release pairs with the supervisor loop's
            // Acquire `stop` load (fault.rs) — a plain shutdown latch.
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
        // Successor workers (§13.6), joined after the supervisor so no
        // further ones can spawn. A successor's clock continues its
        // predecessor's, so its return value supersedes the original
        // worker's for that shard.
        let successors: Vec<(usize, JoinHandle<u64>)> = match self.shared.fault.as_ref() {
            Some(fr) => std::mem::take(&mut *fault::lock_unpoisoned(&fr.successors)),
            None => Vec::new(),
        };
        for (shard, handle) in successors {
            if timeout.is_some() && !handle.is_finished() {
                if let Some(e) = exits.get_mut(shard) {
                    *e = ShardExit::Abandoned;
                }
                drop(handle);
                continue;
            }
            match handle.join() {
                Ok(cycles) => {
                    if let Some(c) = shard_cycles.get_mut(shard) {
                        *c = (*c).max(cycles);
                    }
                }
                Err(_) => {
                    if let Some(e) = exits.get_mut(shard) {
                        *e = ShardExit::Panicked;
                    }
                }
            }
        }
        // Bequests nobody adopted (the abort or the deadline beat the
        // supervisor to them): account their residual state as lost,
        // exactly like an aborted worker's (§9.4) — the packets are in
        // the bequeathed scheduler, so the accounting is exact.
        if let Some(fr) = self.shared.fault.as_ref() {
            for shard in 0..fr.board.shards() {
                if let Some(mut bq) = fr.take_bequest(shard) {
                    fault::abort_residuals(
                        &self.shared,
                        shard,
                        fr.own.map.n_flows(),
                        &mut bq.scheduler,
                    );
                }
            }
        }
        // Workers are gone (or abandoned): the flushers may final-
        // deliver everything buffered. "Closed and empty" is a stable
        // exit condition for them; dead-held flits dead-letter on the
        // way out (§9.3).
        // ordering: Release (downgraded from SeqCst in PR 5) pairs
        // with the flusher's Acquire `closed` load (err-egress
        // run_flusher). One-way latch; the ring-empty check the
        // flusher combines it with is ordered by the ring's own
        // Release `tail` store, not by this flag.
        // [pair: egress-closed @ crates/err-egress/src/flusher.rs]
        self.egress_closed.store(true, Ordering::Release);
        let mut flusher_exits = Vec::with_capacity(self.flushers.len());
        for flusher in self.flushers.drain(..) {
            if let Some(f) = final_deadline {
                // Keep the deadline promise even against a wedged
                // flusher (it normally exits within microseconds here).
                while !flusher.is_finished() && Instant::now() < f + DRAIN_POLL {
                    std::thread::sleep(Duration::from_micros(100));
                }
                if !flusher.is_finished() {
                    flusher_exits.push(ShardExit::Abandoned);
                    drop(flusher);
                    continue;
                }
            }
            flusher_exits.push(match flusher.join() {
                Ok(()) => ShardExit::Clean,
                Err(_) => ShardExit::Panicked,
            });
        }
        let mut stats = RuntimeStats::collect(&self.shared.stats);
        if let Some(ctrl) = &self.egress {
            // Close any still-open stall windows so the watchdog
            // histograms account for stalls that outlived the run.
            ctrl.links().release_all_stalls();
            stats = stats.with_egress(ctrl.snapshot());
        }
        DrainReport {
            stats,
            shard_cycles,
            exits,
            flusher_exits,
            forced,
        }
    }
}

fn shard_config(config: &RuntimeConfig, shard: usize) -> shard::ShardConfig {
    shard::ShardConfig {
        shard,
        batch_packets: config.batch_packets,
        batch_flits: config.batch_flits,
        n_flows: config.n_flows,
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.drained.load(Ordering::Relaxed) {
            self.drain_within(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use err_sched::Packet;

    #[test]
    fn start_submit_drain_conserves() {
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 2,
            n_flows: 8,
            ..RuntimeConfig::default()
        });
        let mut flits = 0u64;
        for id in 0..500u64 {
            let len = 1 + (id % 7) as u32;
            flits += len as u64;
            assert_eq!(
                handle.submit(Packet::new(id, (id % 8) as usize, len, 0)),
                Ok(Submitted::Enqueued)
            );
        }
        let report = rt.shutdown();
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 500);
        assert_eq!(report.stats.served_flits(), flits);
        assert_eq!(report.dropped_packets(), 0);
    }

    #[test]
    fn buffered_mode_conserves_and_reports_egress() {
        use std::sync::atomic::AtomicU64;
        let delivered = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&delivered);
        let (rt, handle) = Runtime::start_with_egress(
            RuntimeConfig {
                shards: 2,
                n_flows: 8,
                egress: EgressMode::Buffered(BufferedConfig {
                    ring_capacity: 64,
                    credits: 8,
                    n_links: 2,
                    ..BufferedConfig::default()
                }),
                ..RuntimeConfig::default()
            },
            move |_shard| {
                let d = Arc::clone(&d2);
                Some(move |_s: usize, f: &err_sched::ServedFlit| {
                    d.fetch_add(f.is_tail() as u64, Ordering::Relaxed);
                })
            },
        );
        let mut flits = 0u64;
        for id in 0..800u64 {
            let len = 1 + (id % 6) as u32;
            flits += len as u64;
            handle
                .submit(Packet::new(id, (id % 8) as usize, len, 0))
                .unwrap();
        }
        let report = rt.shutdown();
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 800);
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            800,
            "every tail delivered"
        );
        let egress = report
            .stats
            .egress
            .as_ref()
            .expect("buffered mode snapshots egress");
        assert_eq!(egress.flushed_flits(), flits, "no flit stranded in a ring");
        assert_eq!(report.stats.flushed_flits(), flits);
        assert!(egress.peak_ring_occupancy() <= 64 + 1);
        let per_link: u64 = egress.links.iter().map(|l| l.delivered_flits).sum();
        assert_eq!(per_link, flits, "link accounting matches");
        for l in &egress.links {
            assert_eq!(l.credits_available, 8, "all credits returned");
            assert!(l.outstanding_peak <= 8, "credit pool bound respected");
        }
        // Human-readable Display covers the egress section.
        assert!(report.stats.to_string().contains("egress:"));
    }

    #[test]
    fn stealing_runtime_conserves_under_skew() {
        // One dominant flow on a 4-shard runtime: the static partition
        // leaves three shards idle, so stealing must kick in. The hard
        // requirements are conservation and per-flow completeness; the
        // migration count is asserted loosely (≥ 0 is timing-dependent,
        // but with this much skew at least one steal is expected).
        // The ring is provisioned for the whole offered load: with a
        // small ring the backlog hides in the blocked submitter, where
        // no LoadBoard entry can see it, and the steal policy would be
        // (correctly) quiet. Backpressure behavior is covered elsewhere;
        // this test wants migrations to actually fire.
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 4,
            n_flows: 8,
            ring_capacity: 1 << 15,
            stealing: Some(StealingConfig {
                min_gap: 64,
                ..StealingConfig::default()
            }),
            ..RuntimeConfig::default()
        });
        let mut flits = 0u64;
        // 30k packets, ~87% of flits on flow 0.
        for id in 0..30_000u64 {
            let (flow, len) = if id % 8 < 7 {
                (0usize, 16u32)
            } else {
                ((1 + (id % 7)) as usize, 4u32)
            };
            flits += len as u64;
            handle.submit(Packet::new(id, flow, len, 0)).unwrap();
        }
        // Keep the runtime open until everything is served: shutdown
        // flips `closed`, and §8.6 refuses *new* steal requests once
        // closed — an immediate shutdown would make the whole drain run
        // with stealing disabled and the migration assert flaky.
        while handle.stats().served_packets() < 30_000 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = rt.shutdown();
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 30_000);
        assert_eq!(report.stats.served_flits(), flits);
        // Migrated flits are counted once per handoff and never lost.
        let migrations = report.stats.migrations();
        let donated: u64 = report.stats.shards.iter().map(|s| s.donated_out).sum();
        assert_eq!(migrations, donated, "every extract has its absorb");
        assert!(
            migrations >= 1,
            "87% skew on 4 shards should trigger at least one steal: {report:?}"
        );
    }

    #[test]
    fn stealing_under_buffered_egress_conserves() {
        // The §13.5 composition: stealing with per-link credit egress.
        // Same skew as the sync test; the donor's retire fence must
        // neither wedge handoffs nor interleave a wormhole, and every
        // flit must reach a flusher.
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 4,
            n_flows: 8,
            ring_capacity: 1 << 15,
            stealing: Some(StealingConfig {
                min_gap: 64,
                ..StealingConfig::default()
            }),
            egress: EgressMode::Buffered(BufferedConfig {
                ring_capacity: 256,
                credits: 64,
                n_links: 2,
                ..BufferedConfig::default()
            }),
            ..RuntimeConfig::default()
        });
        let mut flits = 0u64;
        for id in 0..30_000u64 {
            let (flow, len) = if id % 8 < 7 {
                (0usize, 16u32)
            } else {
                ((1 + (id % 7)) as usize, 4u32)
            };
            flits += len as u64;
            handle.submit(Packet::new(id, flow, len, 0)).unwrap();
        }
        while handle.stats().served_packets() < 30_000 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = rt.shutdown();
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 30_000);
        assert_eq!(report.stats.served_flits(), flits);
        assert_eq!(report.stats.flushed_flits(), flits, "no flit stranded");
        let migrations = report.stats.migrations();
        let donated: u64 = report.stats.shards.iter().map(|s| s.donated_out).sum();
        assert_eq!(migrations, donated, "every extract has its absorb");
        assert!(
            migrations >= 1,
            "87% skew on 4 shards should steal under buffered egress too: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "resurrection")]
    fn stealing_with_supervision_requires_resurrection() {
        let _ = Runtime::start(RuntimeConfig {
            stealing: Some(StealingConfig::default()),
            supervision: Some(SupervisionConfig::default()),
            ..RuntimeConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "extract/absorb")]
    fn stealing_rejects_nonmigratable_discipline() {
        let _ = Runtime::start(RuntimeConfig {
            stealing: Some(StealingConfig::default()),
            discipline: Discipline::Fcfs,
            ..RuntimeConfig::default()
        });
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (rt, handle) = Runtime::start(RuntimeConfig::default());
        handle.submit(Packet::new(0, 0, 3, 0)).unwrap();
        let report = rt.shutdown();
        assert_eq!(report.served_packets(), 1);
        assert_eq!(
            handle.submit(Packet::new(1, 0, 3, 0)),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 3,
            ..RuntimeConfig::default()
        });
        for id in 0..50u64 {
            handle
                .submit(Packet::new(id, (id % 5) as usize, 2, 0))
                .unwrap();
        }
        drop(rt); // must not hang or leak threads
        assert!(handle.is_closed());
    }

    #[test]
    fn egress_sees_every_flit_in_order_per_shard() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<Vec<err_sched::ServedFlit>>>> =
            Arc::new(Mutex::new(vec![Vec::new(); 2]));
        let seen2 = Arc::clone(&seen);
        let (rt, handle) = Runtime::start_with_egress(
            RuntimeConfig {
                shards: 2,
                n_flows: 4,
                ..RuntimeConfig::default()
            },
            move |shard| {
                let seen = Arc::clone(&seen2);
                Some(move |_s: usize, flit: &err_sched::ServedFlit| {
                    seen.lock().unwrap()[shard].push(*flit);
                })
            },
        );
        let mut total = 0u64;
        for id in 0..100u64 {
            let len = 1 + (id % 5) as u32;
            total += len as u64;
            handle
                .submit(Packet::new(id, (id % 4) as usize, len, 0))
                .unwrap();
        }
        rt.shutdown();
        let seen = seen.lock().unwrap();
        let flits: usize = seen.iter().map(|v| v.len()).sum();
        assert_eq!(flits as u64, total);
        // Within a shard, a packet's flits are contiguous and ordered
        // (the wormhole constraint holds per egress link).
        for shard in seen.iter() {
            let mut open: Option<(u64, u32)> = None;
            for f in shard {
                match open {
                    None => assert!(f.is_head(), "packet must start at flit 0"),
                    Some((p, i)) => {
                        assert_eq!(f.packet, p, "flits of packets interleaved");
                        assert_eq!(f.flit_index, i + 1);
                    }
                }
                open = if f.is_tail() {
                    None
                } else {
                    Some((f.packet, f.flit_index))
                };
            }
            assert!(open.is_none(), "last packet incomplete");
        }
    }
}
