#![warn(missing_docs)]

//! `err-runtime` — a sharded multi-core scheduling runtime around the
//! `err-sched` disciplines.
//!
//! The paper's case for Elastic Round Robin is that its O(1),
//! length-oblivious decision rule is cheap enough to run at link rate in
//! switch hardware. This crate is the serving substrate that claim
//! implies: many producers submitting packets concurrently, scheduled
//! across several independent egress links, with bounded memory under
//! overload and a deterministic way to stop.
//!
//! # Architecture
//!
//! ```text
//!  producers (any thread)
//!     │  submit(Packet)          O(1): admission RMW + ring CAS
//!     ▼
//!  [AdmissionController]         per-flow flit caps: drop / reject / wait
//!     │
//!     ├── hash(flow) ──► shard 0: [MpscRing] ─► worker: ErrScheduler ─► egress
//!     ├───────────────► shard 1: [MpscRing] ─► worker: ErrScheduler ─► egress
//!     └───────────────► shard N: [MpscRing] ─► worker: ErrScheduler ─► egress
//!                                  │
//!                                  └─ lock-free ShardStats ─► RuntimeStats
//! ```
//!
//! * Flows are hash-partitioned ([`ingress`]), so each flow's packets
//!   always meet the same scheduler — per-flow FIFO and ERR's fairness
//!   guarantees hold per shard without any cross-shard coordination.
//! * Each shard worker drives a private `Box<dyn Scheduler + Send>` in
//!   batched intake/service loops ([`shard`]); one flit = one cycle of
//!   the shard's flit clock, the paper's egress-link model.
//! * [`admission`] bounds each flow's outstanding flits with drop-tail,
//!   reject, or backpressure policies.
//! * [`stats`] publishes lock-free per-shard counters merged on demand.
//! * [`drain`] documents the shutdown protocol: close admission, serve
//!   the residual backlog to empty, join every worker deterministically.
//!
//! # Quick example
//!
//! ```
//! use err_runtime::{Runtime, RuntimeConfig};
//! use err_sched::{Discipline, Packet};
//!
//! let (runtime, handle) = Runtime::start(RuntimeConfig {
//!     shards: 2,
//!     n_flows: 8,
//!     discipline: Discipline::Err,
//!     ..RuntimeConfig::default()
//! });
//! for id in 0..64 {
//!     let flow = (id % 8) as usize;
//!     handle.submit(Packet::new(id, flow, 4, 0)).unwrap();
//! }
//! let report = runtime.shutdown();
//! assert_eq!(report.served_packets(), 64);
//! assert!(report.is_conserving());
//! ```

pub mod admission;
pub mod channel;
pub mod drain;
pub mod ingress;
pub mod shard;
pub mod stats;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use err_sched::Discipline;

pub use admission::{AdmissionController, AdmissionPolicy, AdmitDecision};
pub use drain::DrainReport;
pub use ingress::{RuntimeHandle, SubmitError, Submitted};
pub use shard::EgressSink;
pub use stats::{RuntimeStats, ShardSnapshot};

use admission::AdmissionController as Controller;
use channel::MpscRing;
use ingress::Shared;
use stats::ShardStats;

/// Configuration of a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of shards (worker threads / independent egress links).
    pub shards: usize,
    /// Size of the flow-id space; flows are `0..n_flows`.
    pub n_flows: usize,
    /// Discipline each shard instantiates privately.
    pub discipline: Discipline,
    /// Per-shard ingress ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Max packets pulled from the ring per service loop.
    pub batch_packets: usize,
    /// Max flits served per service loop.
    pub batch_flits: usize,
    /// Overload policy; [`AdmissionPolicy::Unlimited`] turns capping off.
    pub admission: AdmissionPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            n_flows: 64,
            discipline: Discipline::Err,
            ring_capacity: 1024,
            batch_packets: 64,
            batch_flits: 256,
            admission: AdmissionPolicy::Unlimited,
        }
    }
}

/// A running sharded scheduling runtime. Dropping it without calling
/// [`shutdown`](Self::shutdown) also drains cleanly (via `Drop`), but
/// `shutdown` is the API that returns the final accounting.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<u64>>,
    drained: AtomicBool,
}

impl Runtime {
    /// Starts the runtime: spawns one worker per shard, each owning a
    /// fresh instance of the configured discipline. Returns the runtime
    /// and a cloneable producer handle.
    pub fn start(config: RuntimeConfig) -> (Self, RuntimeHandle) {
        Self::start_with_egress(config, |_shard| None)
    }

    /// Like [`start`](Self::start), but `egress(shard)` may return a
    /// sink the shard's worker feeds every served flit through (e.g. to
    /// forward downstream or record departures for delay measurement).
    pub fn start_with_egress(
        config: RuntimeConfig,
        mut egress: impl FnMut(usize) -> Option<EgressSink>,
    ) -> (Self, RuntimeHandle) {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_flits >= 1 && config.batch_packets >= 1);
        let shared = Arc::new(Shared {
            rings: (0..config.shards)
                .map(|_| MpscRing::with_capacity(config.ring_capacity))
                .collect(),
            stats: (0..config.shards).map(|_| ShardStats::default()).collect(),
            admission: Controller::new(config.admission, config.n_flows),
            closed: AtomicBool::new(false),
            in_flight: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..config.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let scheduler = config.discipline.build(config.n_flows);
                let sink = egress(shard);
                let cfg = shard::ShardConfig {
                    shard,
                    batch_packets: config.batch_packets,
                    batch_flits: config.batch_flits,
                };
                std::thread::Builder::new()
                    .name(format!("err-shard-{shard}"))
                    .spawn(move || shard::run_shard(shared, cfg, scheduler, sink))
                    .expect("spawning shard worker")
            })
            .collect();
        let handle = RuntimeHandle {
            shared: Arc::clone(&shared),
        };
        (
            Self {
                shared,
                workers,
                drained: AtomicBool::new(false),
            },
            handle,
        )
    }

    /// A cloneable producer handle.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Live merged statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats::collect(&self.shared.stats)
    }

    /// Gracefully drains and stops the runtime: closes admission, lets
    /// every shard serve its residual backlog to completion, joins all
    /// workers in shard order, and returns the final accounting.
    pub fn shutdown(mut self) -> DrainReport {
        self.drain()
    }

    fn drain(&mut self) -> DrainReport {
        self.drained.store(true, Ordering::Relaxed);
        // SeqCst: pairs with the in-flight counter in `submit` (see
        // `Shared::can_finish`) so workers never miss a late producer.
        self.shared.closed.store(true, Ordering::SeqCst);
        let mut shard_cycles = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.drain(..).enumerate() {
            // Unpark in case the worker is in an idle park; it would
            // wake on its own at the park timeout, this just avoids the
            // last <=100us wait per shard.
            worker.thread().unpark();
            let cycles = worker
                .join()
                .unwrap_or_else(|_| panic!("shard {shard} worker panicked"));
            shard_cycles.push(cycles);
        }
        DrainReport {
            stats: RuntimeStats::collect(&self.shared.stats),
            shard_cycles,
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.drained.load(Ordering::Relaxed) {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use err_sched::Packet;

    #[test]
    fn start_submit_drain_conserves() {
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 2,
            n_flows: 8,
            ..RuntimeConfig::default()
        });
        let mut flits = 0u64;
        for id in 0..500u64 {
            let len = 1 + (id % 7) as u32;
            flits += len as u64;
            assert_eq!(
                handle.submit(Packet::new(id, (id % 8) as usize, len, 0)),
                Ok(Submitted::Enqueued)
            );
        }
        let report = rt.shutdown();
        assert!(report.is_conserving(), "{report:?}");
        assert_eq!(report.served_packets(), 500);
        assert_eq!(report.stats.served_flits(), flits);
        assert_eq!(report.dropped_packets(), 0);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (rt, handle) = Runtime::start(RuntimeConfig::default());
        handle.submit(Packet::new(0, 0, 3, 0)).unwrap();
        let report = rt.shutdown();
        assert_eq!(report.served_packets(), 1);
        assert_eq!(
            handle.submit(Packet::new(1, 0, 3, 0)),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let (rt, handle) = Runtime::start(RuntimeConfig {
            shards: 3,
            ..RuntimeConfig::default()
        });
        for id in 0..50u64 {
            handle
                .submit(Packet::new(id, (id % 5) as usize, 2, 0))
                .unwrap();
        }
        drop(rt); // must not hang or leak threads
        assert!(handle.is_closed());
    }

    #[test]
    fn egress_sees_every_flit_in_order_per_shard() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<Vec<err_sched::ServedFlit>>>> =
            Arc::new(Mutex::new(vec![Vec::new(); 2]));
        let seen2 = Arc::clone(&seen);
        let (rt, handle) = Runtime::start_with_egress(
            RuntimeConfig {
                shards: 2,
                n_flows: 4,
                ..RuntimeConfig::default()
            },
            move |shard| {
                let seen = Arc::clone(&seen2);
                Some(Box::new(move |_s, flit: &err_sched::ServedFlit| {
                    seen.lock().unwrap()[shard].push(*flit);
                }) as EgressSink)
            },
        );
        let mut total = 0u64;
        for id in 0..100u64 {
            let len = 1 + (id % 5) as u32;
            total += len as u64;
            handle
                .submit(Packet::new(id, (id % 4) as usize, len, 0))
                .unwrap();
        }
        rt.shutdown();
        let seen = seen.lock().unwrap();
        let flits: usize = seen.iter().map(|v| v.len()).sum();
        assert_eq!(flits as u64, total);
        // Within a shard, a packet's flits are contiguous and ordered
        // (the wormhole constraint holds per egress link).
        for shard in seen.iter() {
            let mut open: Option<(u64, u32)> = None;
            for f in shard {
                match open {
                    None => assert!(f.is_head(), "packet must start at flit 0"),
                    Some((p, i)) => {
                        assert_eq!(f.packet, p, "flits of packets interleaved");
                        assert_eq!(f.flit_index, i + 1);
                    }
                }
                open = if f.is_tail() {
                    None
                } else {
                    Some((f.packet, f.flit_index))
                };
            }
            assert!(open.is_none(), "last packet incomplete");
        }
    }
}
