//! Runtime throughput harness: measures wall-clock packets/sec through
//! the sharded runtime at 1 and 8 shards, the drop rate under 2×
//! admission overload (`BENCH_runtime.json`), and the stalled-downstream
//! scenario comparing buffered and sync egress with 1 of 4 links frozen
//! (`BENCH_egress.json`).
//!
//! Usage: `runtime-bench [--smoke] [RUNTIME_OUT] [EGRESS_OUT]`
//! (defaults `BENCH_runtime.json` / `BENCH_egress.json`). `--smoke`
//! shrinks every run for CI: it exercises the exact same code paths in
//! a few hundred milliseconds without producing publishable numbers.
//!
//! The numbers are honest wall-clock figures for *this* machine — on a
//! single-core container the shard workers time-slice one CPU, so the
//! 8-shard wall-clock rate will not exceed the 1-shard rate; the
//! `flits_per_shard_cycle` field reports the logical capacity scaling
//! (flits served per cycle of the slowest shard's flit clock), which is
//! what the sharded design buys when cores are available.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use err_runtime::{
    AdmissionPolicy, BufferedConfig, EgressMode, Runtime, RuntimeConfig, StallPlan, Submitted,
};
use err_sched::{Discipline, Packet, ServedFlit};

const N_FLOWS: usize = 64;
const PACKET_LEN: u32 = 8;

struct ThroughputSample {
    shards: usize,
    packets: u64,
    elapsed_secs: f64,
    packets_per_sec: f64,
    flits_per_shard_cycle: f64,
}

fn throughput_run(shards: usize, packets: u64) -> ThroughputSample {
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ..RuntimeConfig::default()
    });
    let start = Instant::now();
    for id in 0..packets {
        let pkt = Packet::new(id, (id % N_FLOWS as u64) as usize, PACKET_LEN, 0);
        handle.submit(pkt).expect("unlimited admission never fails");
    }
    let report = rt.shutdown();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(report.is_conserving(), "lost packets: {report:?}");
    assert_eq!(report.served_packets(), packets);
    ThroughputSample {
        shards,
        packets,
        elapsed_secs: elapsed,
        packets_per_sec: packets as f64 / elapsed,
        flits_per_shard_cycle: report.flits_per_shard_cycle(),
    }
}

struct OverloadSample {
    max_backlog_flits: u64,
    submitted_packets: u64,
    served_packets: u64,
    dropped_packets: u64,
    drop_rate: f64,
}

/// Offers each flow a burst of 2× its admission cap, with the workers
/// stalled until the whole burst has been submitted, so the admission
/// controller sees the full 2× overload rather than racing the drain.
fn overload_run() -> OverloadSample {
    let max_backlog: u64 = 256; // flits per flow
    let shards = 2;
    // The workers drain concurrently with the burst, so the exact drop
    // count depends on the race — but conservation (served + dropped ==
    // submitted) holds either way, and the measured rate is the figure.
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ring_capacity: 1 << 15,
        admission: AdmissionPolicy::DropTail { max_backlog },
        ..RuntimeConfig::default()
    });
    // 2× overload: each flow is offered 2 * max_backlog flits in one burst.
    let packets_per_flow = 2 * max_backlog / PACKET_LEN as u64;
    let mut submitted = 0u64;
    let mut dropped_at_submit = 0u64;
    let mut id = 0u64;
    for _round in 0..packets_per_flow {
        for flow in 0..N_FLOWS {
            match handle.submit(Packet::new(id, flow, PACKET_LEN, 0)) {
                Ok(Submitted::Enqueued) => {}
                Ok(Submitted::Dropped) => dropped_at_submit += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            submitted += 1;
            id += 1;
        }
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "lost packets: {report:?}");
    assert_eq!(report.submitted_packets(), submitted);
    assert_eq!(report.dropped_packets(), dropped_at_submit);
    OverloadSample {
        max_backlog_flits: max_backlog,
        submitted_packets: submitted,
        served_packets: report.served_packets(),
        dropped_packets: report.dropped_packets(),
        drop_rate: report.dropped_packets() as f64 / submitted as f64,
    }
}

/// 1-of-N-links dead downstream, the tentpole scenario of the buffered
/// egress stage.
const EGRESS_LINKS: usize = 4;

struct EgressSample {
    shards: usize,
    buffered_baseline_fps: f64,
    buffered_stalled_fps: f64,
    /// Unstalled-link throughput with link 0 frozen, relative to the
    /// no-stall baseline. The buffered claim is ratio >= 0.9.
    buffered_isolation: f64,
    sync_baseline_fps: f64,
    sync_stalled_fps: f64,
    sync_isolation: f64,
}

/// Offers a saturating drop-tail workload for `window` and returns the
/// wall-clock delivery rate (flits/sec) of links 1..N only — the links
/// a frozen link 0 is supposed to leave alone. `sync_frozen` (sync mode
/// only) makes the sink block on link-0 flits while set.
fn egress_measure(
    shards: usize,
    egress: EgressMode,
    sync_frozen: Option<Arc<AtomicBool>>,
    window: Duration,
) -> f64 {
    let delivered: Arc<Vec<AtomicU64>> =
        Arc::new((0..EGRESS_LINKS).map(|_| AtomicU64::new(0)).collect());
    let d2 = Arc::clone(&delivered);
    let (rt, handle) = Runtime::start_with_egress(
        RuntimeConfig {
            shards,
            n_flows: N_FLOWS,
            discipline: Discipline::Err,
            admission: AdmissionPolicy::DropTail { max_backlog: 64 },
            egress,
            ..RuntimeConfig::default()
        },
        move |_shard| {
            let delivered = Arc::clone(&d2);
            let frozen = sync_frozen.clone();
            Some(move |_s: usize, f: &ServedFlit| {
                let link = f.flow % EGRESS_LINKS;
                if link == 0 {
                    if let Some(flag) = &frozen {
                        while flag.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                }
                delivered[link].fetch_add(1, Ordering::Relaxed);
            })
        },
    );
    let start = Instant::now();
    let deadline = start + window;
    let mut id = 0u64;
    while Instant::now() < deadline {
        for _ in 0..64 {
            let _ = handle.submit(Packet::new(
                id,
                (id % N_FLOWS as u64) as usize,
                PACKET_LEN,
                0,
            ));
            id += 1;
        }
    }
    let unstalled: u64 = delivered
        .iter()
        .skip(1)
        .map(|c| c.load(Ordering::Relaxed))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    rt.shutdown();
    unstalled as f64 / elapsed
}

fn buffered_mode(stall_plan: Option<StallPlan>) -> EgressMode {
    EgressMode::Buffered(BufferedConfig {
        ring_capacity: 256,
        credits: 32,
        n_links: EGRESS_LINKS,
        stall_plan,
    })
}

fn egress_stall_run(shards: usize, window: Duration) -> EgressSample {
    let buffered_baseline_fps = egress_measure(shards, buffered_mode(None), None, window);
    let buffered_stalled_fps = egress_measure(
        shards,
        buffered_mode(Some(StallPlan::freeze_forever(0, 0))),
        None,
        window,
    );
    let sync_baseline_fps = egress_measure(shards, EgressMode::Sync, None, window);
    // The sync "dead downstream" blocks worker threads, so it must be
    // released after the measurement window or shutdown would hang.
    let frozen = Arc::new(AtomicBool::new(true));
    let f2 = Arc::clone(&frozen);
    let unfreezer = std::thread::spawn(move || {
        std::thread::sleep(window + Duration::from_millis(50));
        f2.store(false, Ordering::Release);
    });
    let sync_stalled_fps = egress_measure(shards, EgressMode::Sync, Some(frozen), window);
    unfreezer.join().expect("unfreezer panicked");
    EgressSample {
        shards,
        buffered_baseline_fps,
        buffered_stalled_fps,
        buffered_isolation: buffered_stalled_fps / buffered_baseline_fps.max(1.0),
        sync_baseline_fps,
        sync_stalled_fps,
        sync_isolation: sync_stalled_fps / sync_baseline_fps.max(1.0),
    }
}

fn main() {
    let mut smoke = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            _ => paths.push(arg),
        }
    }
    let runtime_out = paths
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_owned());
    let egress_out = paths
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_egress.json".to_owned());
    let packets_per_run: u64 = if smoke { 10_000 } else { 200_000 };
    let window = Duration::from_millis(if smoke { 40 } else { 250 });
    let egress_shards: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    eprintln!("runtime-bench: throughput at 1 shard ({packets_per_run} packets)...");
    let one = throughput_run(1, packets_per_run);
    eprintln!(
        "  1 shard: {:.0} packets/s ({:.3} flits/shard-cycle)",
        one.packets_per_sec, one.flits_per_shard_cycle
    );
    eprintln!("runtime-bench: throughput at 8 shards...");
    let eight = throughput_run(8, packets_per_run);
    eprintln!(
        "  8 shards: {:.0} packets/s ({:.3} flits/shard-cycle)",
        eight.packets_per_sec, eight.flits_per_shard_cycle
    );
    eprintln!("runtime-bench: drop rate under 2x overload (drop-tail)...");
    let overload = overload_run();
    eprintln!(
        "  {} submitted, {} served, {} dropped (rate {:.4})",
        overload.submitted_packets,
        overload.served_packets,
        overload.dropped_packets,
        overload.drop_rate
    );

    eprintln!("runtime-bench: stalled downstream, 1 of {EGRESS_LINKS} links frozen...");
    let egress_samples: Vec<EgressSample> = egress_shards
        .iter()
        .map(|&s| {
            let sample = egress_stall_run(s, window);
            eprintln!(
                "  {s} shard(s): buffered isolation {:.3} ({:.0} of {:.0} flits/s), \
                 sync isolation {:.3} ({:.0} of {:.0} flits/s)",
                sample.buffered_isolation,
                sample.buffered_stalled_fps,
                sample.buffered_baseline_fps,
                sample.sync_isolation,
                sample.sync_stalled_fps,
                sample.sync_baseline_fps,
            );
            sample
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"err-runtime\",\n");
    json.push_str(&format!("  \"discipline\": \"{}\",\n", Discipline::Err));
    json.push_str(&format!("  \"n_flows\": {N_FLOWS},\n"));
    json.push_str(&format!("  \"packet_len_flits\": {PACKET_LEN},\n"));
    json.push_str("  \"throughput\": [\n");
    for (i, s) in [&one, &eight].into_iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"packets\": {}, \"elapsed_secs\": {:.6}, \
             \"packets_per_sec\": {:.1}, \"flits_per_shard_cycle\": {:.4}}}{}\n",
            s.shards,
            s.packets,
            s.elapsed_secs,
            s.packets_per_sec,
            s.flits_per_shard_cycle,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload_2x\": {{\"policy\": \"drop_tail\", \"max_backlog_flits\": {}, \
         \"submitted_packets\": {}, \"served_packets\": {}, \"dropped_packets\": {}, \
         \"drop_rate\": {:.6}}}\n",
        overload.max_backlog_flits,
        overload.submitted_packets,
        overload.served_packets,
        overload.dropped_packets,
        overload.drop_rate
    ));
    json.push_str("}\n");

    std::fs::write(&runtime_out, json).expect("writing bench output");
    eprintln!("runtime-bench: wrote {runtime_out}");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"err-egress stalled downstream\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"n_links\": {EGRESS_LINKS},\n"));
    json.push_str("  \"frozen_links\": [0],\n");
    json.push_str("  \"ring_capacity\": 256,\n");
    json.push_str("  \"credits_per_link\": 32,\n");
    json.push_str(&format!("  \"n_flows\": {N_FLOWS},\n"));
    json.push_str(&format!(
        "  \"measure_window_secs\": {:.3},\n",
        window.as_secs_f64()
    ));
    json.push_str(
        "  \"metric\": \"wall-clock delivered flits/sec on the 3 unstalled links; \
         isolation = stalled / baseline\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (i, s) in egress_samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \
             \"buffered\": {{\"baseline_fps\": {:.1}, \"stalled_fps\": {:.1}, \"isolation\": {:.4}}}, \
             \"sync\": {{\"baseline_fps\": {:.1}, \"stalled_fps\": {:.1}, \"isolation\": {:.4}}}}}{}\n",
            s.shards,
            s.buffered_baseline_fps,
            s.buffered_stalled_fps,
            s.buffered_isolation,
            s.sync_baseline_fps,
            s.sync_stalled_fps,
            s.sync_isolation,
            if i + 1 == egress_samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&egress_out, json).expect("writing egress bench output");
    eprintln!("runtime-bench: wrote {egress_out}");
}
