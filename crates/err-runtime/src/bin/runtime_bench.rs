//! Runtime throughput harness: measures wall-clock packets/sec through
//! the sharded runtime at 1 and 8 shards, and the drop rate under 2×
//! admission overload, then writes `BENCH_runtime.json`.
//!
//! Usage: `runtime-bench [OUTPUT_PATH]` (default `BENCH_runtime.json`).
//!
//! The numbers are honest wall-clock figures for *this* machine — on a
//! single-core container the shard workers time-slice one CPU, so the
//! 8-shard wall-clock rate will not exceed the 1-shard rate; the
//! `flits_per_shard_cycle` field reports the logical capacity scaling
//! (flits served per cycle of the slowest shard's flit clock), which is
//! what the sharded design buys when cores are available.

use std::time::Instant;

use err_runtime::{AdmissionPolicy, Runtime, RuntimeConfig, Submitted};
use err_sched::{Discipline, Packet};

const N_FLOWS: usize = 64;
const PACKET_LEN: u32 = 8;
const PACKETS_PER_RUN: u64 = 200_000;

struct ThroughputSample {
    shards: usize,
    packets: u64,
    elapsed_secs: f64,
    packets_per_sec: f64,
    flits_per_shard_cycle: f64,
}

fn throughput_run(shards: usize) -> ThroughputSample {
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ..RuntimeConfig::default()
    });
    let start = Instant::now();
    for id in 0..PACKETS_PER_RUN {
        let pkt = Packet::new(id, (id % N_FLOWS as u64) as usize, PACKET_LEN, 0);
        handle.submit(pkt).expect("unlimited admission never fails");
    }
    let report = rt.shutdown();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(report.is_conserving(), "lost packets: {report:?}");
    assert_eq!(report.served_packets(), PACKETS_PER_RUN);
    ThroughputSample {
        shards,
        packets: PACKETS_PER_RUN,
        elapsed_secs: elapsed,
        packets_per_sec: PACKETS_PER_RUN as f64 / elapsed,
        flits_per_shard_cycle: report.flits_per_shard_cycle(),
    }
}

struct OverloadSample {
    max_backlog_flits: u64,
    submitted_packets: u64,
    served_packets: u64,
    dropped_packets: u64,
    drop_rate: f64,
}

/// Offers each flow a burst of 2× its admission cap, with the workers
/// stalled until the whole burst has been submitted, so the admission
/// controller sees the full 2× overload rather than racing the drain.
fn overload_run() -> OverloadSample {
    let max_backlog: u64 = 256; // flits per flow
    let shards = 2;
    // The workers drain concurrently with the burst, so the exact drop
    // count depends on the race — but conservation (served + dropped ==
    // submitted) holds either way, and the measured rate is the figure.
    let (rt, handle) = Runtime::start(RuntimeConfig {
        shards,
        n_flows: N_FLOWS,
        discipline: Discipline::Err,
        ring_capacity: 1 << 15,
        admission: AdmissionPolicy::DropTail { max_backlog },
        ..RuntimeConfig::default()
    });
    // 2× overload: each flow is offered 2 * max_backlog flits in one burst.
    let packets_per_flow = 2 * max_backlog / PACKET_LEN as u64;
    let mut submitted = 0u64;
    let mut dropped_at_submit = 0u64;
    let mut id = 0u64;
    for _round in 0..packets_per_flow {
        for flow in 0..N_FLOWS {
            match handle.submit(Packet::new(id, flow, PACKET_LEN, 0)) {
                Ok(Submitted::Enqueued) => {}
                Ok(Submitted::Dropped) => dropped_at_submit += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            submitted += 1;
            id += 1;
        }
    }
    let report = rt.shutdown();
    assert!(report.is_conserving(), "lost packets: {report:?}");
    assert_eq!(report.submitted_packets(), submitted);
    assert_eq!(report.dropped_packets(), dropped_at_submit);
    OverloadSample {
        max_backlog_flits: max_backlog,
        submitted_packets: submitted,
        served_packets: report.served_packets(),
        dropped_packets: report.dropped_packets(),
        drop_rate: report.dropped_packets() as f64 / submitted as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_runtime.json".to_owned());

    eprintln!("runtime-bench: throughput at 1 shard ({PACKETS_PER_RUN} packets)...");
    let one = throughput_run(1);
    eprintln!(
        "  1 shard: {:.0} packets/s ({:.3} flits/shard-cycle)",
        one.packets_per_sec, one.flits_per_shard_cycle
    );
    eprintln!("runtime-bench: throughput at 8 shards...");
    let eight = throughput_run(8);
    eprintln!(
        "  8 shards: {:.0} packets/s ({:.3} flits/shard-cycle)",
        eight.packets_per_sec, eight.flits_per_shard_cycle
    );
    eprintln!("runtime-bench: drop rate under 2x overload (drop-tail)...");
    let overload = overload_run();
    eprintln!(
        "  {} submitted, {} served, {} dropped (rate {:.4})",
        overload.submitted_packets,
        overload.served_packets,
        overload.dropped_packets,
        overload.drop_rate
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"err-runtime\",\n");
    json.push_str(&format!("  \"discipline\": \"{}\",\n", Discipline::Err));
    json.push_str(&format!("  \"n_flows\": {N_FLOWS},\n"));
    json.push_str(&format!("  \"packet_len_flits\": {PACKET_LEN},\n"));
    json.push_str("  \"throughput\": [\n");
    for (i, s) in [&one, &eight].into_iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"packets\": {}, \"elapsed_secs\": {:.6}, \
             \"packets_per_sec\": {:.1}, \"flits_per_shard_cycle\": {:.4}}}{}\n",
            s.shards,
            s.packets,
            s.elapsed_secs,
            s.packets_per_sec,
            s.flits_per_shard_cycle,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload_2x\": {{\"policy\": \"drop_tail\", \"max_backlog_flits\": {}, \
         \"submitted_packets\": {}, \"served_packets\": {}, \"dropped_packets\": {}, \
         \"drop_rate\": {:.6}}}\n",
        overload.max_backlog_flits,
        overload.submitted_packets,
        overload.served_packets,
        overload.dropped_packets,
        overload.drop_rate
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, json).expect("writing bench output");
    eprintln!("runtime-bench: wrote {out_path}");
}
