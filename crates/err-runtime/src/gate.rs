//! The drain gate: the `closed + in_flight` Dekker pairing that lets
//! shard workers take a *final* look at their ingress rings without
//! stranding a late producer's packet.
//!
//! The protocol (DESIGN.md §10, model-checked by err-check's
//! `drain_gate` loom models):
//!
//! * a producer **announces** itself (`in_flight += 1`) *before*
//!   checking `closed`; if closed it backs out, otherwise it holds the
//!   permit across its ring push;
//! * a worker may only finish once it observes `closed == true` and
//!   `in_flight == 0` — and must re-check ring emptiness *after* that
//!   observation.
//!
//! Both sides use `SeqCst` because this is a store→load (Dekker)
//! pattern: the producer's `in_flight` increment and `closed` read,
//! versus the closer's `closed` store and the worker's `in_flight`
//! read, must fall into one total order. With weaker orderings both
//! the producer could miss `closed` *and* the worker could miss the
//! producer's increment — exactly the one-packet leak PR 4's proptest
//! caught (pinned as the `drain_gate_check_then_enter` mutant model).

use crate::sync::{AtomicBool, AtomicU64, Ordering};

/// The shutdown gate shared by producers (submit) and shard workers
/// (exit protocol). See the module docs for the protocol.
#[derive(Debug, Default)]
pub struct DrainGate {
    /// Set once by [`close`](DrainGate::close); never cleared.
    closed: AtomicBool,
    /// Producers currently inside a submit that have already passed the
    /// closed check (holding a [`SubmitPermit`]).
    in_flight: AtomicU64,
}

/// Proof that a producer announced itself before the gate closed; held
/// across the ring push so [`DrainGate::can_finish`] cannot report
/// quiescence mid-push. Dropping the permit retires the announcement.
#[derive(Debug)]
pub struct SubmitPermit<'a> {
    gate: &'a DrainGate,
}

impl Drop for SubmitPermit<'_> {
    fn drop(&mut self) {
        // ordering: Release pairs with the worker's SeqCst `in_flight`
        // load in `can_finish` — the push this permit covered is
        // visible before the count drops.
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

impl DrainGate {
    /// An open gate with no announced producers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Producer side: announce, then check. `None` means the gate is
    /// closed and nothing may be pushed; `Some(permit)` licenses one
    /// push, which must complete before the permit drops.
    pub fn enter(&self) -> Option<SubmitPermit<'_>> {
        // ordering: SeqCst increment *before* the SeqCst closed check —
        // the Dekker pairing with `close`/`can_finish`. Once a worker
        // observed `closed && in_flight == 0`, any producer reaching
        // here is ordered after the `close` store and must see it.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let permit = SubmitPermit { gate: self };
        // ordering: SeqCst — see the increment above; pairs with the
        // SeqCst store in `close`.
        if self.closed.load(Ordering::SeqCst) {
            drop(permit); // retire the announcement
            return None;
        }
        Some(permit)
    }

    /// Closes the gate: all future [`enter`](DrainGate::enter) calls
    /// fail. Producers already holding a permit finish their push and
    /// are awaited via [`can_finish`](DrainGate::can_finish).
    pub fn close(&self) {
        // ordering: SeqCst store pairs with the SeqCst load in `enter`
        // (Dekker) — combined with `can_finish` it guarantees no push
        // lands after a worker's final ring check.
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether [`close`](DrainGate::close) has been called.
    pub fn is_closed(&self) -> bool {
        // ordering: Acquire pairs with the `close` store for callers
        // that only branch on the flag (wait loops, steal policy); the
        // exit protocol goes through `can_finish` instead.
        self.closed.load(Ordering::Acquire)
    }

    /// Worker side: whether shutdown was requested and no producer is
    /// still mid-submit. Must be checked *before* the final ring-empty
    /// check — once it returns true, no further push can ever happen
    /// (late producers see `closed` in [`enter`](DrainGate::enter) and
    /// back out without touching a ring).
    pub fn can_finish(&self) -> bool {
        // ordering: SeqCst pair — the closed read and in_flight read
        // must be ordered after the producer's SeqCst increment in the
        // single total order (Dekker); see the module docs.
        self.closed.load(Ordering::SeqCst) && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_gate_admits_and_counts() {
        let g = DrainGate::new();
        assert!(!g.is_closed());
        assert!(!g.can_finish());
        let p = g.enter().expect("open gate admits");
        g.close();
        // A permit is still out: the worker may not finish.
        assert!(!g.can_finish());
        drop(p);
        assert!(g.can_finish());
    }

    #[test]
    fn closed_gate_rejects_and_retires() {
        let g = DrainGate::new();
        g.close();
        assert!(g.is_closed());
        assert!(g.enter().is_none());
        // The rejected announcement was retired: quiescent.
        assert!(g.can_finish());
    }
}
