//! Lock-free per-shard statistics and their merged runtime view.
//!
//! Each shard owns one [`ShardStats`] block of cache-line-padded atomic
//! counters; the worker updates them with relaxed stores on its hot path
//! and readers take consistent-enough [`ShardSnapshot`]s at any time
//! without stopping the world. [`RuntimeStats`] merges the per-shard
//! snapshots into the aggregate view the operator cares about.
//!
//! Every counter here is **approximate under race** by design: all
//! accesses are `Relaxed`, so a snapshot taken while shards are running
//! may mix counter values from slightly different instants (e.g.
//! `admitted` from after a push that `flushed` hasn't caught up to).
//! Each counter is individually exact — monotonic, no lost updates —
//! but cross-counter invariants only hold after a quiescent drain.
//! err-check's `stats-relaxed` lint pins this contract: a non-Relaxed
//! ordering in a stats module is an error, because needing one would
//! mean a correctness decision was being made off these counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use err_egress::EgressSnapshot;

/// A cache-line-padded atomic counter, so two shards' hot counters never
/// share a line (false sharing would serialize the shards through the
/// coherence protocol — exactly what the sharded design exists to avoid).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PaddedCounter(AtomicU64);

impl PaddedCounter {
    /// Adds `n` (relaxed; counters are monotonic and independently read).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for gauges such as backlog).
    #[inline]
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One shard's counters. Written by its worker (and, for the admission
/// counters, by producers); read by anyone.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Packets accepted into this shard's ingress ring.
    pub enqueued_packets: PaddedCounter,
    /// Flits belonging to accepted packets.
    pub enqueued_flits: PaddedCounter,
    /// Packets dropped by drop-tail admission (never entered the ring).
    pub dropped_packets: PaddedCounter,
    /// Flits of dropped packets.
    pub dropped_flits: PaddedCounter,
    /// Packets refused with an error under the reject policy.
    pub rejected_packets: PaddedCounter,
    /// Flits served by the shard's scheduler.
    pub served_flits: PaddedCounter,
    /// Packets whose tail flit has been served.
    pub served_packets: PaddedCounter,
    /// Scheduler backlog in flits (gauge, refreshed every service batch).
    pub backlog_flits: PaddedCounter,
    /// Service-loop iterations that moved at least one packet or flit.
    pub busy_loops: PaddedCounter,
    /// Times the worker parked because there was nothing to do.
    pub parks: PaddedCounter,
    /// Flows this shard stole (absorbed) from another shard.
    pub stolen_in: PaddedCounter,
    /// Flows this shard gave up (extracted) to a thief.
    pub donated_out: PaddedCounter,
    /// Flits that changed shards inside migration packages.
    pub migrated_flits: PaddedCounter,
    /// Steal requests that died before quiescing (no eligible victim,
    /// or shutdown).
    pub steal_aborts: PaddedCounter,
    /// Packets rescued out of a dead shard (ring drain + flow
    /// extraction) and re-homed; counted at the dying shard, per hop
    /// (DESIGN.md §9.2 step 6).
    pub salvaged_packets: PaddedCounter,
    /// Flits of salvaged packets.
    pub salvaged_flits: PaddedCounter,
    /// Packets the fault layer could not save: abandoned mid-service
    /// state, salvage with no live rescuer, or forced-abort losses.
    pub lost_packets: PaddedCounter,
    /// Flits of lost packets (partially served packets count only
    /// their unserved remainder).
    pub lost_flits: PaddedCounter,
    /// Backpressure waits that hit their submit deadline
    /// (`AdmitDecision::TimedOut`); the packet never entered a ring.
    pub timedout_packets: PaddedCounter,
}

impl ShardStats {
    /// Takes a point-in-time copy of the counters.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            enqueued_packets: self.enqueued_packets.get(),
            enqueued_flits: self.enqueued_flits.get(),
            dropped_packets: self.dropped_packets.get(),
            dropped_flits: self.dropped_flits.get(),
            rejected_packets: self.rejected_packets.get(),
            served_flits: self.served_flits.get(),
            served_packets: self.served_packets.get(),
            backlog_flits: self.backlog_flits.get(),
            busy_loops: self.busy_loops.get(),
            parks: self.parks.get(),
            stolen_in: self.stolen_in.get(),
            donated_out: self.donated_out.get(),
            migrated_flits: self.migrated_flits.get(),
            steal_aborts: self.steal_aborts.get(),
            salvaged_packets: self.salvaged_packets.get(),
            salvaged_flits: self.salvaged_flits.get(),
            lost_packets: self.lost_packets.get(),
            lost_flits: self.lost_flits.get(),
            timedout_packets: self.timedout_packets.get(),
        }
    }
}

/// Plain-value copy of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// See [`ShardStats::enqueued_packets`].
    pub enqueued_packets: u64,
    /// See [`ShardStats::enqueued_flits`].
    pub enqueued_flits: u64,
    /// See [`ShardStats::dropped_packets`].
    pub dropped_packets: u64,
    /// See [`ShardStats::dropped_flits`].
    pub dropped_flits: u64,
    /// See [`ShardStats::rejected_packets`].
    pub rejected_packets: u64,
    /// See [`ShardStats::served_flits`].
    pub served_flits: u64,
    /// See [`ShardStats::served_packets`].
    pub served_packets: u64,
    /// See [`ShardStats::backlog_flits`].
    pub backlog_flits: u64,
    /// See [`ShardStats::busy_loops`].
    pub busy_loops: u64,
    /// See [`ShardStats::parks`].
    pub parks: u64,
    /// See [`ShardStats::stolen_in`].
    pub stolen_in: u64,
    /// See [`ShardStats::donated_out`].
    pub donated_out: u64,
    /// See [`ShardStats::migrated_flits`].
    pub migrated_flits: u64,
    /// See [`ShardStats::steal_aborts`].
    pub steal_aborts: u64,
    /// See [`ShardStats::salvaged_packets`].
    pub salvaged_packets: u64,
    /// See [`ShardStats::salvaged_flits`].
    pub salvaged_flits: u64,
    /// See [`ShardStats::lost_packets`].
    pub lost_packets: u64,
    /// See [`ShardStats::lost_flits`].
    pub lost_flits: u64,
    /// See [`ShardStats::timedout_packets`].
    pub timedout_packets: u64,
}

/// The merged, runtime-wide statistics view.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Egress-side counters; `None` under `EgressMode::Sync` (the
    /// legacy path has no rings, credits, or stalls to report).
    pub egress: Option<EgressSnapshot>,
}

macro_rules! sum_field {
    ($(#[$doc:meta] $fn_name:ident => $field:ident),+ $(,)?) => {$(
        #[$doc]
        pub fn $fn_name(&self) -> u64 {
            self.shards.iter().map(|s| s.$field).sum()
        }
    )+};
}

impl RuntimeStats {
    /// Merges per-shard stat blocks into one view.
    pub fn collect(stats: &[ShardStats]) -> Self {
        Self {
            shards: stats
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i))
                .collect(),
            egress: None,
        }
    }

    /// Attaches an egress snapshot (buffered mode).
    pub fn with_egress(mut self, egress: EgressSnapshot) -> Self {
        self.egress = Some(egress);
        self
    }

    sum_field! {
        /// Total packets accepted across shards.
        enqueued_packets => enqueued_packets,
        /// Total flits accepted across shards.
        enqueued_flits => enqueued_flits,
        /// Total packets dropped by drop-tail admission.
        dropped_packets => dropped_packets,
        /// Total flits dropped by drop-tail admission.
        dropped_flits => dropped_flits,
        /// Total packets refused under the reject policy.
        rejected_packets => rejected_packets,
        /// Total flits served.
        served_flits => served_flits,
        /// Total packets fully served.
        served_packets => served_packets,
        /// Total scheduler backlog in flits (sum of gauges).
        backlog_flits => backlog_flits,
        /// Total times any worker parked idle.
        parks => parks,
        /// Total completed flow migrations (each counted at the thief).
        migrations => stolen_in,
        /// Total flits moved between shards by migrations.
        migrated_flits => migrated_flits,
        /// Total steal requests aborted before quiescing.
        steal_aborts => steal_aborts,
        /// Total packets rescued out of dead shards (per rescue hop).
        salvaged_packets => salvaged_packets,
        /// Total flits of salvaged packets (per rescue hop).
        salvaged_flits => salvaged_flits,
        /// Total packets lost to faults or forced shutdown.
        lost_packets => lost_packets,
        /// Total flits of lost packets.
        lost_flits => lost_flits,
        /// Total backpressure waits that hit their submit deadline.
        timedout_packets => timedout_packets,
    }

    /// Packets that entered the system one way or another: accepted,
    /// dropped, rejected, or timed out waiting for admission.
    pub fn submitted_packets(&self) -> u64 {
        self.enqueued_packets()
            + self.dropped_packets()
            + self.rejected_packets()
            + self.timedout_packets()
    }

    /// Fraction of submitted packets dropped or rejected (0 when idle).
    pub fn loss_rate(&self) -> f64 {
        let submitted = self.submitted_packets();
        if submitted == 0 {
            return 0.0;
        }
        (self.dropped_packets() + self.rejected_packets()) as f64 / submitted as f64
    }

    /// Flits delivered downstream by the flushers (0 in sync mode,
    /// where delivery is counted as `served_flits`).
    pub fn flushed_flits(&self) -> u64 {
        self.egress.as_ref().map_or(0, |e| e.flushed_flits())
    }

    /// Largest output-ring occupancy any shard reached (0 in sync mode).
    pub fn peak_ring_occupancy(&self) -> u64 {
        self.egress.as_ref().map_or(0, |e| e.peak_ring_occupancy())
    }

    /// Downstream stall events across links (0 in sync mode).
    pub fn stall_events(&self) -> u64 {
        self.egress.as_ref().map_or(0, |e| e.stall_events())
    }

    /// Longest completed stall in flush-clock cycles (0 in sync mode).
    pub fn max_stall_cycles(&self) -> u64 {
        self.egress.as_ref().map_or(0, |e| e.max_stall_cycles())
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime: {} shards | submitted {} pkts | served {} pkts / {} flits | \
             dropped {} | rejected {} | backlog {} flits | loss {:.2}%",
            self.shards.len(),
            self.submitted_packets(),
            self.served_packets(),
            self.served_flits(),
            self.dropped_packets(),
            self.rejected_packets(),
            self.backlog_flits(),
            self.loss_rate() * 100.0,
        )?;
        if self.migrations() > 0 || self.steal_aborts() > 0 {
            writeln!(
                f,
                "  stealing: {} migrations | {} flits moved | {} aborted requests",
                self.migrations(),
                self.migrated_flits(),
                self.steal_aborts(),
            )?;
        }
        if self.salvaged_packets() > 0 || self.lost_packets() > 0 || self.timedout_packets() > 0 {
            writeln!(
                f,
                "  faults: salvaged {} pkts / {} flits | lost {} pkts / {} flits | \
                 timed out {} pkts",
                self.salvaged_packets(),
                self.salvaged_flits(),
                self.lost_packets(),
                self.lost_flits(),
                self.timedout_packets(),
            )?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: enq {} pkts | served {} pkts / {} flits | drop {} | parks {}",
                s.shard,
                s.enqueued_packets,
                s.served_packets,
                s.served_flits,
                s.dropped_packets,
                s.parks,
            )?;
        }
        if let Some(e) = &self.egress {
            writeln!(
                f,
                "  egress: flushed {} flits | ring peak {} | stalls {} | max stall {} cycles",
                e.flushed_flits(),
                e.peak_ring_occupancy(),
                e.stall_events(),
                e.max_stall_cycles(),
            )?;
            for (i, l) in e.links.iter().enumerate() {
                writeln!(
                    f,
                    "    link {}: delivered {} flits | credits {} | peak outstanding {} | \
                     stalls {} (mean {:.0} / max {} cycles)",
                    i,
                    l.delivered_flits,
                    l.credits_available,
                    l.outstanding_peak,
                    l.stall_events,
                    l.mean_stall_cycles,
                    l.max_stall_cycles,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let blocks = [ShardStats::default(), ShardStats::default()];
        blocks[0].enqueued_packets.add(3);
        blocks[0].enqueued_flits.add(12);
        blocks[1].enqueued_packets.add(4);
        blocks[1].dropped_packets.add(1);
        blocks[1].dropped_flits.add(9);
        blocks[0].served_flits.add(12);
        blocks[0].served_packets.add(3);
        blocks[1].backlog_flits.set(7);

        let m = RuntimeStats::collect(&blocks);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.enqueued_packets(), 7);
        assert_eq!(m.enqueued_flits(), 12);
        assert_eq!(m.dropped_packets(), 1);
        assert_eq!(m.submitted_packets(), 8);
        assert_eq!(m.served_packets(), 3);
        assert_eq!(m.backlog_flits(), 7);
        assert!((m.loss_rate() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_human_readable() {
        let blocks = [ShardStats::default()];
        blocks[0].enqueued_packets.add(2);
        blocks[0].served_packets.add(2);
        blocks[0].served_flits.add(9);
        let mut m = RuntimeStats::collect(&blocks);
        let text = m.to_string();
        assert!(text.contains("served 2 pkts / 9 flits"), "{text}");
        assert!(!text.contains("egress:"), "sync mode has no egress line");

        let egress = EgressSnapshot {
            shards: vec![err_egress::ShardEgressSnapshot {
                flushed_flits: 9,
                ring_peak: 3,
                ..Default::default()
            }],
            links: Vec::new(),
        };
        m = m.with_egress(egress);
        let text = m.to_string();
        assert!(text.contains("flushed 9 flits"), "{text}");
        assert_eq!(m.flushed_flits(), 9);
        assert_eq!(m.peak_ring_occupancy(), 3);
        assert_eq!(m.stall_events(), 0);
    }

    #[test]
    fn gauge_set_overwrites() {
        let c = PaddedCounter::default();
        c.set(10);
        c.set(4);
        assert_eq!(c.get(), 4);
    }
}
