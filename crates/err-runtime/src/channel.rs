//! Lock-free bounded MPSC ring used as each shard's ingress queue.
//!
//! This is Vyukov's bounded MPMC queue (used here with a single
//! consumer): an array of slots, each carrying a sequence number that
//! encodes whether the slot is free for the producer of a given lap or
//! holds a value for the consumer. Producers claim slots with a CAS on
//! the enqueue cursor; the consumer claims with a CAS-free load/store
//! pair (it is unique). All hot-path operations are O(1) and allocation-
//! free, matching the runtime's goal of link-rate admission: a producer
//! never takes a lock to hand a packet to a shard.

use std::mem::MaybeUninit;

use crate::sync::{AtomicUsize, Ordering, UnsafeCell};

/// Result of a failed [`MpscRing::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingFull;

struct Slot<T> {
    /// Lap marker: `seq == index` → empty, writable by the producer that
    /// claims `index`; `seq == index + 1` → full, readable by the
    /// consumer expecting `index`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity lock-free multi-producer single-consumer ring.
///
/// `push` may be called concurrently from any number of threads; `pop`
/// must only be called from one thread at a time (the owning shard).
pub struct MpscRing<T> {
    slots: Box<[Slot<T>]>,
    /// Capacity mask (capacity is a power of two).
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

// SAFETY: the ring owns its values; moving the ring moves them, so
// `T: Send` suffices.
unsafe impl<T: Send> Send for MpscRing<T> {}
// SAFETY: cross-thread access to each slot's `value` cell is mediated by
// its `seq` Acquire/Release handshake (exclusive claim before write,
// publication before read), so sharing the ring only requires `T: Send`.
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    /// Creates a ring holding at least `capacity` elements (rounded up
    /// to a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Best-effort occupancy (racy; exact only when quiescent).
    pub fn len(&self) -> usize {
        let deq = self.dequeue.load(Ordering::Relaxed);
        let enq = self.enqueue.load(Ordering::Relaxed);
        enq.wrapping_sub(deq)
    }

    /// Whether the ring appears empty (racy; see [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw enqueue cursor. Slot positions below it are claimed; the
    /// migration donor reads it once the victim's submit window is
    /// clear, as the drain *target* (DESIGN.md §8.3).
    pub fn enqueue_pos(&self) -> usize {
        // ordering: Acquire (downgraded from SeqCst in PR 5) — the
        // donor is ordered after every pre-quiesce push by the submit
        // window's SeqCst exit (migrate.rs WindowGuard), whose edge
        // already covers the producer's cursor CAS; coherence then
        // guarantees this load sees that CAS or newer. No ordering is
        // needed from this load itself.
        self.enqueue.load(Ordering::Acquire)
    }

    /// The raw dequeue cursor. The single consumer advances it strictly
    /// in slot order and never skips an unpublished slot, so
    /// `dequeue_pos() ≥ target` proves every pre-target push has been
    /// popped (DESIGN.md §8.3).
    pub fn dequeue_pos(&self) -> usize {
        // ordering: Acquire (downgraded from SeqCst in PR 5) — pairs
        // with the consumer's Release `seq` store in `pop`: observing
        // `dequeue_pos() ≥ target` happens-after every pop below
        // target. The donor only *waits* on this cursor (monotone
        // predicate), so a stale read merely retries.
        self.dequeue.load(Ordering::Acquire)
    }

    /// Attempts to enqueue `value`. Lock-free; fails when the ring is
    /// full at the moment of the attempt.
    pub fn push(&self, value: T) -> Result<(), RingFull> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ordering: Acquire pairs with the consumer's Release `seq`
            // store in `pop` — a freed slot's previous value was fully
            // read out before this producer may overwrite it.
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free for this lap: try to claim it (Relaxed: the
                // claim itself publishes nothing; the slot handshake
                // below carries all payload ordering).
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed slot `pos` exclusively
                        // (losers chase the cursor), and `seq == pos`
                        // proved the consumer finished with the previous
                        // lap's value, so writing the uninit cell is
                        // race-free until we publish `seq = pos + 1`.
                        slot.value.with_mut(|p| unsafe { (*p).write(value) });
                        // ordering: Release pairs with the consumer's
                        // Acquire `seq` load in `pop` — publishes the
                        // cell write above before the slot reads full.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                // The consumer has not freed this slot: the ring is
                // full (enqueue is a full lap ahead of dequeue).
                return Err(RingFull);
            } else {
                // Another producer claimed `pos`; chase the cursor.
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues one value, or `None` if empty.
    ///
    /// Must only be called by the single consumer.
    pub fn pop(&self) -> Option<T> {
        let pos = self.dequeue.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        // ordering: Acquire pairs with the producer's Release `seq`
        // store in `push` — the cell write is visible before the slot
        // reads full.
        let seq = slot.seq.load(Ordering::Acquire);
        if (seq as isize - (pos.wrapping_add(1)) as isize) < 0 {
            return None; // Nothing published at this position yet.
        }
        // Single consumer: no CAS needed on the dequeue cursor.
        // ordering: Release (upgraded from Relaxed in PR 5) pairs with
        // the Acquire `dequeue` load in `dequeue_pos` — a window
        // watcher that reads the advanced cursor is ordered after this
        // pop, which the old Relaxed store never guaranteed.
        self.dequeue.store(pos.wrapping_add(1), Ordering::Release);
        // SAFETY: `seq == pos + 1` proves the producer published this
        // slot (its write happens-before the Acquire load above), and
        // the single consumer owns position `pos` exclusively, so the
        // initialized value can be moved out exactly once.
        let value = slot.value.with(|p| unsafe { (*p).assume_init_read() });
        // Free the slot for the producer one lap ahead.
        // ordering: Release pairs with the producer's Acquire `seq`
        // load in `push` — the read-out above completes before the slot
        // reads free, so the next lap's write cannot clobber it.
        slot.seq.store(
            pos.wrapping_add(self.mask).wrapping_add(1),
            Ordering::Release,
        );
        Some(value)
    }

    /// Drains up to `max` values into `out`; returns how many were
    /// moved. Single-consumer only.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // Drop any values still in the ring.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let r = MpscRing::with_capacity(8);
        for i in 0..8 {
            r.push(i).unwrap();
        }
        assert_eq!(r.push(99), Err(RingFull));
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
        // Wrap-around works.
        for lap in 0..5 {
            for i in 0..6 {
                r.push(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(r.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(MpscRing::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(MpscRing::<u8>::with_capacity(5).capacity(), 8);
        assert_eq!(MpscRing::<u8>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 20_000;
        let r = Arc::new(MpscRing::with_capacity(256));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + i;
                        loop {
                            if r.push(v).is_ok() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::with_capacity((PRODUCERS * PER_PRODUCER) as usize);
        while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
            if r.pop_batch(&mut got, 1024) == 0 {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.pop(), None);
        // Per-producer order is preserved and every value arrives once.
        let mut last = vec![None::<u64>; PRODUCERS as usize];
        for v in &got {
            let p = (v / PER_PRODUCER) as usize;
            assert!(
                last[p].is_none_or(|prev| prev < *v),
                "producer order broken"
            );
            last[p] = Some(*v);
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len() as u64, PRODUCERS * PER_PRODUCER);
    }
}
