//! Bounded per-flow admission control.
//!
//! Under overload a work-conserving scheduler's queues grow without
//! bound; the admission controller caps each flow's outstanding backlog
//! (in flits — the same unit ERR charges service in) and applies one of
//! three policies when a flow exceeds its cap:
//!
//! * [`AdmissionPolicy::DropTail`] — silently drop the packet, counting
//!   it, like a switch input buffer;
//! * [`AdmissionPolicy::Reject`] — fail the submit call so the producer
//!   can react (load-shedding at the API boundary);
//! * [`AdmissionPolicy::Backpressure`] — make the producer wait until
//!   the flow's backlog shrinks (ingress-rate coupling).
//!
//! Accounting is a single cache-padded atomic per flow: producers
//! `fetch_add` at submit, shards `fetch_sub` when a packet's tail flit
//! leaves. No locks anywhere on the admission path, so admission cost
//! stays O(1) per packet — matching the paper's argument that the
//! scheduling decision itself must be O(1) to run at link rate.

use std::sync::atomic::{AtomicU64, Ordering};

/// What to do when a flow exceeds its backlog cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// No per-flow cap; producers only ever wait for ingress-ring space.
    Unlimited,
    /// Drop over-cap packets, counting them (`max_backlog` in flits).
    DropTail {
        /// Per-flow outstanding-flit cap.
        max_backlog: u64,
    },
    /// Refuse over-cap packets with
    /// [`SubmitError::Rejected`](crate::SubmitError::Rejected).
    Reject {
        /// Per-flow outstanding-flit cap.
        max_backlog: u64,
    },
    /// Block the producer until the flow fits under its cap again.
    Backpressure {
        /// Per-flow outstanding-flit cap.
        max_backlog: u64,
    },
}

impl AdmissionPolicy {
    /// The per-flow cap, if the policy has one.
    pub fn max_backlog(&self) -> Option<u64> {
        match *self {
            AdmissionPolicy::Unlimited => None,
            AdmissionPolicy::DropTail { max_backlog }
            | AdmissionPolicy::Reject { max_backlog }
            | AdmissionPolicy::Backpressure { max_backlog } => Some(max_backlog),
        }
    }
}

/// Immediate verdict on one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The packet may enter; its flits are already accounted.
    Admit,
    /// Drop silently (drop-tail policy).
    Drop,
    /// Refuse with an error (reject policy).
    Reject,
    /// The flow is over cap and the policy says wait (backpressure).
    Wait,
    /// A backpressure wait exceeded its caller-supplied deadline
    /// ([`submit_within`](crate::RuntimeHandle::submit_within)); the
    /// packet never entered a ring (DESIGN.md §9.4).
    TimedOut,
}

#[derive(Debug, Default)]
#[repr(align(64))]
struct FlowBacklog(AtomicU64);

/// Tracks per-flow outstanding flits and applies an [`AdmissionPolicy`].
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    backlog: Vec<FlowBacklog>,
}

impl AdmissionController {
    /// Creates a controller for flows `0..n_flows`.
    pub fn new(policy: AdmissionPolicy, n_flows: usize) -> Self {
        Self {
            policy,
            backlog: (0..n_flows).map(|_| FlowBacklog::default()).collect(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Current outstanding flits of `flow`.
    pub fn flow_backlog(&self, flow: usize) -> u64 {
        self.backlog
            .get(flow)
            .map(|b| b.0.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Decides whether a `len`-flit packet of `flow` may enter. On
    /// [`AdmitDecision::Admit`] the flits are charged to the flow and the
    /// caller **must** eventually release them via
    /// [`on_packet_served`](Self::on_packet_served) (or
    /// [`revoke`](Self::revoke) if the packet never reaches a shard).
    pub fn try_admit(&self, flow: usize, len: u32) -> AdmitDecision {
        let Some(cap) = self.policy.max_backlog() else {
            self.charge(flow, len);
            return AdmitDecision::Admit;
        };
        let b = &self.backlog[flow].0;
        let mut cur = b.load(Ordering::Relaxed);
        loop {
            // Admit while the flow is strictly under its cap (a single
            // packet may overshoot it, mirroring ERR's elastic visits:
            // the decision is made before the packet's length is known
            // to be "too big" — we only require room for the head).
            if cur >= cap {
                return match self.policy {
                    AdmissionPolicy::DropTail { .. } => AdmitDecision::Drop,
                    AdmissionPolicy::Reject { .. } => AdmitDecision::Reject,
                    AdmissionPolicy::Backpressure { .. } => AdmitDecision::Wait,
                    AdmissionPolicy::Unlimited => unreachable!("cap implies limited policy"),
                };
            }
            match b.compare_exchange_weak(
                cur,
                cur + len as u64,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return AdmitDecision::Admit,
                Err(now) => cur = now,
            }
        }
    }

    /// Charges `len` flits to `flow` unconditionally.
    fn charge(&self, flow: usize, len: u32) {
        self.backlog[flow]
            .0
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Releases a fully-served packet's flits.
    pub fn on_packet_served(&self, flow: usize, len: u32) {
        let prev = self.backlog[flow]
            .0
            .fetch_sub(len as u64, Ordering::Relaxed);
        debug_assert!(prev >= len as u64, "admission accounting went negative");
    }

    /// Un-charges an admitted packet that never entered a shard (e.g.
    /// the submit was abandoned because the runtime closed).
    pub fn revoke(&self, flow: usize, len: u32) {
        self.on_packet_served(flow, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        let a = AdmissionController::new(AdmissionPolicy::Unlimited, 2);
        for _ in 0..1000 {
            assert_eq!(a.try_admit(0, 64), AdmitDecision::Admit);
        }
        assert_eq!(a.flow_backlog(0), 64_000);
    }

    #[test]
    fn drop_tail_drops_over_cap_and_recovers() {
        let a = AdmissionController::new(AdmissionPolicy::DropTail { max_backlog: 100 }, 1);
        // Backlog may overshoot the cap by one packet (elastic head-of-
        // line admission), after which everything drops.
        assert_eq!(a.try_admit(0, 90), AdmitDecision::Admit);
        assert_eq!(a.try_admit(0, 90), AdmitDecision::Admit);
        assert_eq!(a.flow_backlog(0), 180);
        assert_eq!(a.try_admit(0, 1), AdmitDecision::Drop);
        a.on_packet_served(0, 90);
        assert_eq!(a.try_admit(0, 5), AdmitDecision::Admit);
        assert_eq!(a.flow_backlog(0), 95);
    }

    #[test]
    fn reject_and_backpressure_report_their_verdicts() {
        let r = AdmissionController::new(AdmissionPolicy::Reject { max_backlog: 10 }, 1);
        assert_eq!(r.try_admit(0, 10), AdmitDecision::Admit);
        assert_eq!(r.try_admit(0, 1), AdmitDecision::Reject);
        let b = AdmissionController::new(AdmissionPolicy::Backpressure { max_backlog: 10 }, 1);
        assert_eq!(b.try_admit(0, 10), AdmitDecision::Admit);
        assert_eq!(b.try_admit(0, 1), AdmitDecision::Wait);
        b.on_packet_served(0, 10);
        assert_eq!(b.try_admit(0, 1), AdmitDecision::Admit);
    }

    #[test]
    fn caps_are_per_flow() {
        let a = AdmissionController::new(AdmissionPolicy::DropTail { max_backlog: 8 }, 3);
        assert_eq!(a.try_admit(0, 8), AdmitDecision::Admit);
        assert_eq!(a.try_admit(0, 1), AdmitDecision::Drop);
        assert_eq!(a.try_admit(1, 8), AdmitDecision::Admit);
        assert_eq!(a.try_admit(2, 8), AdmitDecision::Admit);
    }
}
