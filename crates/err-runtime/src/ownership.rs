//! The flow-ownership authority (DESIGN.md §13): one epoch-stamped
//! claim protocol shared by stealing (§8), salvage (§9.2), and
//! resurrection (§13.6).
//!
//! Three ideas, one struct:
//!
//! * **[`FlowMap`]** — the routing truth. One word per flow packing
//!   `(epoch << 32) | shard`; producers read it inside the submit
//!   window, movers advance it with an epoch CAS.
//! * **Submit windows** — one in-flight-push counter per flow. A mover
//!   may only drain a ring position it computed *after* the window hit
//!   zero post-flip (§13.3, the three-party Dekker modeled by
//!   err-check's `model_ownership_window_dekker`).
//! * **Claims** — one word per flow packing
//!   `(state << 62) | (claimant << 32) | epoch`. A claim is the right
//!   to *attempt* a reroute; the epoch CAS in [`Ownership::try_reroute`]
//!   is the linearization point that decides a steal racing a salvage.
//!
//! This module compiles against the crate-private `sync` shim so the err-check model
//! suite (`--features model`) drives the *shipped* atomics under the
//! vendored loom checker, not a hand-copied miniature.

use crate::sync::{AtomicU64, Ordering};

/// Claim-word state field (bits 63–62 of the claim word).
///
/// The variants spell the §13.1 state machine: `Settled` is the only
/// state a fresh claim can be taken from; `Stealing` may be seized by a
/// salvager ([`Ownership::seize_for_salvage`]); `Salvaging` is never
/// seized — salvage runs on a dying worker's own thread and nothing
/// outranks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnerState {
    /// No mover holds the flow; the [`FlowMap`] entry is the whole truth.
    Settled,
    /// A migration slot holds the flow (claimant = thief shard).
    Stealing,
    /// A salvage pass holds the flow (claimant = salvaging shard).
    Salvaging,
}

const STATE_SHIFT: u32 = 62;
const CLAIMANT_SHIFT: u32 = 32;
const CLAIMANT_MASK: u64 = (1 << (STATE_SHIFT - CLAIMANT_SHIFT)) - 1;
const EPOCH_MASK: u64 = 0xFFFF_FFFF;

const STATE_SETTLED: u64 = 0;
const STATE_STEALING: u64 = 1;
const STATE_SALVAGING: u64 = 2;

#[inline]
fn pack(state: u64, claimant: usize, epoch: u32) -> u64 {
    debug_assert!((claimant as u64) <= CLAIMANT_MASK);
    (state << STATE_SHIFT) | ((claimant as u64) << CLAIMANT_SHIFT) | epoch as u64
}

#[inline]
fn state_of(word: u64) -> u64 {
    word >> STATE_SHIFT
}

/// Proof of a successful [`Ownership::try_claim`] /
/// [`Ownership::seize_for_salvage`]: carries the flow, the map epoch
/// observed at claim time (the CAS expectation for
/// [`Ownership::try_reroute`]), and the exact claim word (the CAS
/// expectation for [`Ownership::release`]).
#[derive(Clone, Copy, Debug)]
pub struct ClaimToken {
    /// The claimed flow.
    pub flow: usize,
    /// The [`FlowMap`] epoch observed when the claim was taken.
    pub epoch: u32,
    word: u64,
}

impl ClaimToken {
    /// Reconstructs a `Stealing` token from slot-persisted parts
    /// (§13.4): the claim is taken by the donor but finished — released
    /// or replayed after a resurrection — by whichever side gets there,
    /// so the token must be rebuildable from the slot's atomic cells.
    pub(crate) fn stealing(flow: usize, claimant: usize, epoch: u32) -> Self {
        let word = pack(STATE_STEALING, claimant, epoch);
        Self { flow, epoch, word }
    }
}

/// The flow→shard routing map: one atomic word per flow packing
/// `(epoch << 32) | shard` (§8.2 / §13.1). Reads are one `SeqCst` load;
/// only [`Ownership::try_reroute`] writes after construction.
pub struct FlowMap {
    entries: Vec<AtomicU64>,
    shards: usize,
}

impl FlowMap {
    /// A map over `n_flows` flows starting on the static SplitMix64
    /// partition, every entry at epoch 0.
    pub fn new(n_flows: usize, shards: usize) -> Self {
        let entries = (0..n_flows)
            .map(|flow| {
                let shard = (crate::ingress::mix_flow(flow) % shards as u64) as usize;
                AtomicU64::new(shard as u64)
            })
            .collect();
        Self { entries, shards }
    }

    /// Number of flows the map covers.
    pub fn n_flows(&self) -> usize {
        self.entries.len()
    }

    /// Number of shards the map routes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Current home shard of `flow`, or `None` when the flow id is
    /// outside the mapped space (those flows stay on the static hash).
    #[inline]
    pub fn shard_of(&self, flow: usize) -> Option<usize> {
        // ordering: SeqCst pairs with the submit-window protocol — the
        // map read inside a producer's window and the mover's flip must
        // fall into one total order (§13.3). [pair: own-window @ self]
        self.entries
            .get(flow)
            .map(|e| (e.load(Ordering::SeqCst) & EPOCH_MASK) as usize)
    }

    /// Current epoch of `flow` (0 until the first migration).
    #[inline]
    pub fn epoch_of(&self, flow: usize) -> u32 {
        // ordering: SeqCst — claim-time epoch snapshots must order
        // against the `try_reroute` flip (§13.2).
        // [pair: own-epoch @ self]
        self.entries
            .get(flow)
            .map(|e| (e.load(Ordering::SeqCst) >> 32) as u32)
            .unwrap_or(0)
    }
}

/// RAII submit-window permit: increments the flow's in-flight-push
/// counter on entry, decrements on drop (§13.3 fence 2). Movers spin on
/// [`Ownership::window_clear`] after flipping the map.
pub struct WindowGuard<'a> {
    counter: &'a AtomicU64,
}

impl<'a> WindowGuard<'a> {
    /// Enters the window around an explicit counter.
    #[inline]
    pub(crate) fn enter_counter(counter: &'a AtomicU64) -> Self {
        // ordering: SeqCst — the producer's `window += 1` must be
        // ordered before its map read, and the mover's flip before its
        // `window == 0` check; the two pairs form the Dekker that makes
        // "window clear after flip" imply "no old-epoch push in flight"
        // (modeled: model_ownership_window_dekker).
        // [pair: own-window @ self]
        counter.fetch_add(1, Ordering::SeqCst);
        Self { counter }
    }
}

impl Drop for WindowGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        // ordering: SeqCst — the decrement must not sink below the ring
        // push it covers (§13.3). [pair: own-window @ self]
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The single ownership authority (§13.1): routing map + submit
/// windows + per-flow claims. Stealing's `StealRuntime` and the fault
/// layer's `FaultRuntime` share one `Arc<Ownership>`; the submit path
/// consults it and nothing else.
pub struct Ownership {
    /// The routing truth.
    pub map: FlowMap,
    window: Vec<AtomicU64>,
    claims: Vec<AtomicU64>,
}

impl Ownership {
    /// An authority over `n_flows` flows across `shards` shards: static
    /// partition, all windows zero, all claims `Settled`.
    pub fn new(n_flows: usize, shards: usize) -> Self {
        Self {
            map: FlowMap::new(n_flows, shards),
            window: (0..n_flows).map(|_| AtomicU64::new(0)).collect(),
            claims: (0..n_flows).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Current home shard of `flow` (see [`FlowMap::shard_of`]).
    #[inline]
    pub fn shard_of(&self, flow: usize) -> Option<usize> {
        self.map.shard_of(flow)
    }

    /// Enters the submit window for `flow`; `None` when the flow is
    /// outside the mapped space (no overlay can move it, so no window
    /// is needed).
    #[inline]
    pub fn window_enter(&self, flow: usize) -> Option<WindowGuard<'_>> {
        self.window.get(flow).map(WindowGuard::enter_counter)
    }

    /// Whether `flow`'s submit window is clear (no producer between its
    /// map read and ring push). Movers poll this *after* the map flip.
    #[inline]
    pub fn window_clear(&self, flow: usize) -> bool {
        // ordering: SeqCst load pairs with WindowGuard's SeqCst RMWs —
        // the §13.3 Dekker check. [pair: own-window @ self]
        self.window
            .get(flow)
            .map(|w| w.load(Ordering::SeqCst) == 0)
            .unwrap_or(true)
    }

    /// The claim state of `flow` right now (racy read; eligibility
    /// filters and tests only — movers rely on the CAS, not this).
    pub fn owner_state(&self, flow: usize) -> OwnerState {
        // ordering: Acquire suffices for an observer-only racy read —
        // nothing here re-enters the claim protocol, and coherence on
        // the single claim word is all the eligibility filters need
        // (downgraded from SeqCst: no store on this path, so it can't
        // participate in a Dekker). [pair: own-claim @ self]
        match self
            .claims
            .get(flow)
            .map(|c| state_of(c.load(Ordering::Acquire)))
        {
            Some(STATE_STEALING) => OwnerState::Stealing,
            Some(STATE_SALVAGING) => OwnerState::Salvaging,
            _ => OwnerState::Settled,
        }
    }

    /// Takes a claim on `flow` with one `SeqCst` CAS from `Settled`
    /// (§13.1). Fails (returns `None`) if any mover already holds the
    /// flow, or the flow is unmapped. The token's epoch is the map
    /// epoch observed here; if a racing release slipped a reroute in
    /// between, the stale epoch makes our eventual `try_reroute` fail
    /// harmlessly rather than double-moving the flow.
    pub fn try_claim(&self, flow: usize, state: OwnerState, claimant: usize) -> Option<ClaimToken> {
        let claim = self.claims.get(flow)?;
        let state_bits = match state {
            OwnerState::Stealing => STATE_STEALING,
            OwnerState::Salvaging => STATE_SALVAGING,
            OwnerState::Settled => return None,
        };
        // ordering: SeqCst — the CAS expectation read, in the same
        // total order as the claim CAS below. [pair: own-claim @ self]
        let observed = claim.load(Ordering::SeqCst);
        if state_of(observed) != STATE_SETTLED {
            return None;
        }
        let epoch = self.map.epoch_of(flow);
        let word = pack(state_bits, claimant, epoch);
        // ordering: SeqCst CAS — the claim acquisition must be globally
        // ordered against competing claims and seizes (§13.1).
        // [pair: own-claim @ self]
        claim
            .compare_exchange(observed, word, Ordering::SeqCst, Ordering::SeqCst)
            .ok()?;
        Some(ClaimToken { flow, epoch, word })
    }

    /// Salvage-only escalation (§13.1): atomically converts a
    /// `Stealing` claim into a `Salvaging` claim held by `claimant`.
    /// Steals never seize anything; salvage seizes because the steal's
    /// donor — the thread that would advance it — is the dying shard
    /// running this very salvage, so the steal can make no progress.
    /// The token's epoch is re-read from the map: if the steal's
    /// reroute already landed, the salvager's `try_reroute` fails and
    /// the flow is skipped (it lives at the thief now).
    pub fn seize_for_salvage(&self, flow: usize, claimant: usize) -> Option<ClaimToken> {
        let claim = self.claims.get(flow)?;
        // ordering: SeqCst — the CAS expectation read, in the same
        // total order as the seize CAS below. [pair: own-claim @ self]
        let observed = claim.load(Ordering::SeqCst);
        if state_of(observed) != STATE_STEALING {
            return None;
        }
        let epoch = self.map.epoch_of(flow);
        let word = pack(STATE_SALVAGING, claimant, epoch);
        // ordering: SeqCst CAS — a seize must be ordered against the
        // steal's own release/reroute so exactly one mover wins.
        // [pair: own-claim @ self]
        claim
            .compare_exchange(observed, word, Ordering::SeqCst, Ordering::SeqCst)
            .ok()?;
        Some(ClaimToken { flow, epoch, word })
    }

    /// The linearization point (§13.2): advance `flow`'s map entry from
    /// the token's epoch to `epoch + 1`, homed at `dest`. Exactly one
    /// claimant per epoch can succeed; a loser's stale-epoch CAS fails
    /// and it must unwind without touching the flow's packets.
    pub fn try_reroute(&self, token: &ClaimToken, dest: usize) -> bool {
        let Some(entry) = self.map.entries.get(token.flow) else {
            return false;
        };
        debug_assert!(dest < self.map.shards);
        // ordering: SeqCst — the CAS expectation read, in the same
        // total order as the flip CAS below. [pair: own-epoch @ self]
        let observed = entry.load(Ordering::SeqCst);
        if (observed >> 32) as u32 != token.epoch {
            return false;
        }
        let next = ((token.epoch.wrapping_add(1) as u64) << 32) | dest as u64;
        // ordering: SeqCst CAS — the flip is the §13.3 Dekker's store
        // side and the §13.2 epoch race's single winner; both pairings
        // need the flip in the global SeqCst order.
        // [pair: own-window @ self] [pair: own-epoch @ self]
        entry
            .compare_exchange(observed, next, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases a claim: stores `Settled` at the flow's *current* map
    /// epoch, but only if the token still owns the claim word — a
    /// seized claim belongs to the seizer and this call is a no-op.
    pub fn release(&self, token: &ClaimToken) {
        let Some(claim) = self.claims.get(token.flow) else {
            return;
        };
        let settled = pack(STATE_SETTLED, 0, self.map.epoch_of(token.flow));
        // ordering: AcqRel CAS — Release publishes the mover's last
        // touch of the flow's packets to the next claimant (whose
        // acquiring claim CAS on this same word synchronizes with it);
        // Acquire joins any seize that beat us. Downgraded from SeqCst:
        // release races only through this one claim word, so RMW
        // coherence — not a cross-variable total order — decides the
        // winner. [pair: own-claim @ self]
        let _ = claim.compare_exchange(token.word, settled, Ordering::AcqRel, Ordering::Acquire);
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn map_starts_on_static_partition_and_epoch_zero() {
        let own = Ownership::new(64, 4);
        for flow in 0..64 {
            let expect = (crate::ingress::mix_flow(flow) % 4) as usize;
            assert_eq!(own.shard_of(flow), Some(expect));
            assert_eq!(own.map.epoch_of(flow), 0);
        }
        assert_eq!(
            own.shard_of(64),
            None,
            "unmapped flows fall back to the static hash"
        );
    }

    #[test]
    fn claim_reroute_release_advances_epoch() {
        let own = Ownership::new(8, 4);
        let tok = own
            .try_claim(3, OwnerState::Stealing, 2)
            .expect("settled flow claims");
        assert_eq!(own.owner_state(3), OwnerState::Stealing);
        assert!(
            own.try_claim(3, OwnerState::Stealing, 1).is_none(),
            "claims are exclusive"
        );
        assert!(own.try_reroute(&tok, 2));
        assert_eq!(own.shard_of(3), Some(2));
        assert_eq!(own.map.epoch_of(3), 1);
        own.release(&tok);
        assert_eq!(own.owner_state(3), OwnerState::Settled);
        assert!(
            own.try_claim(3, OwnerState::Salvaging, 0).is_some(),
            "released flows reclaim"
        );
    }

    #[test]
    fn stale_epoch_reroute_loses() {
        let own = Ownership::new(8, 4);
        let tok = own.try_claim(1, OwnerState::Stealing, 3).unwrap();
        // Simulate the winner having already advanced the epoch: a
        // second reroute off the same token must fail.
        assert!(own.try_reroute(&tok, 3));
        assert!(!own.try_reroute(&tok, 2), "stale epoch must lose the CAS");
        assert_eq!(own.shard_of(1), Some(3), "loser must not move the flow");
    }

    #[test]
    fn salvage_seizes_steal_but_not_vice_versa() {
        let own = Ownership::new(8, 4);
        let steal = own.try_claim(5, OwnerState::Stealing, 1).unwrap();
        let seized = own.seize_for_salvage(5, 0).expect("salvage seizes a steal");
        assert_eq!(own.owner_state(5), OwnerState::Salvaging);
        // The seized steal's release is a no-op: the word changed.
        own.release(&steal);
        assert_eq!(own.owner_state(5), OwnerState::Salvaging);
        // A salvage claim is never seized.
        assert!(own.seize_for_salvage(5, 2).is_none());
        assert!(own.try_reroute(&seized, 0));
        own.release(&seized);
        assert_eq!(own.owner_state(5), OwnerState::Settled);
        assert_eq!(own.map.epoch_of(5), 1);
    }

    #[test]
    fn window_tracks_in_flight_submits() {
        let own = Ownership::new(4, 2);
        assert!(own.window_clear(0));
        {
            let _g = own.window_enter(0).unwrap();
            assert!(!own.window_clear(0));
            assert!(own.window_clear(1), "windows are per flow");
        }
        assert!(own.window_clear(0));
        assert!(
            own.window_enter(99).is_none(),
            "unmapped flows have no window"
        );
    }
}
