//! Flow migration & work stealing across shards (DESIGN.md §8).
//!
//! The static SplitMix64 partition balances flow *counts*, not flit
//! load: under a skewed (e.g. Zipf) rate distribution one shard can own
//! most of the offered flits while its neighbours idle. This module
//! implements the two-phase quiesce→handoff protocol specified in
//! DESIGN.md §8 — which the code here must match, state for state:
//!
//! * [`FlowMap`] — the epoch-stamped flow→shard routing overlay
//!   consulted by every `submit`;
//! * [`LoadBoard`] — per-shard projected finish + backlog, relaxed
//!   atomics;
//! * [`MigrationSlot`] + [`MigrationPhase`] — the single global
//!   migration state machine (`Idle → Requested → Quiescing → Draining
//!   → InTransit → Idle`);
//! * `MigrationDriver` (crate-private) — the per-worker tick that
//!   advances whatever role (thief or donor) its shard currently plays;
//! * [`StealingConfig`] — the hysteresis policy knobs.
//!
//! The scheduler-side state package ([`MigratedFlow`]) and the
//! extract/absorb operations live in `err_sched::migrate`; this module
//! owns the *runtime* side: when to steal, how to quiesce, and why no
//! packet is lost or reordered while a flow changes homes.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use err_sched::migrate::MigratedFlow;
use err_sched::Scheduler;

use crate::ingress::{mix_flow, Shared};

/// Policy knobs for work stealing (DESIGN.md §8.5). The defaults are
/// deliberately conservative: near-balanced shards must never trade
/// flows back and forth.
#[derive(Clone, Copy, Debug)]
pub struct StealingConfig {
    /// Worker loop iterations between LoadBoard refreshes / steal
    /// evaluations while busy (idle workers poll every loop).
    pub poll_interval: u32,
    /// A shard considers stealing only when its own backlog (flits) is
    /// below this — stealing while busy moves queues, not makespan.
    pub steal_threshold: u64,
    /// Absolute hysteresis floor in flits, twice over: the donor's
    /// projected finish must exceed the thief's by at least this, and
    /// a donor serves at least this many cycles between handoffs (the
    /// serve-chunk guard, §8.5).
    pub min_gap: u64,
    /// Polls during which a shard that just took part in a migration
    /// (either role) initiates nothing — its own board entry must
    /// refresh before it reasons from the board again.
    pub cooldown_polls: u32,
}

impl Default for StealingConfig {
    fn default() -> Self {
        Self {
            poll_interval: 16,
            steal_threshold: 512,
            min_gap: 1024,
            cooldown_polls: 8,
        }
    }
}

/// Per-shard *projected finish* (flit clock + backlog) and the backlog
/// term by itself, a pair of relaxed atomics per shard (DESIGN.md
/// §8.1). Each worker updates only its own entries; everyone reads all
/// of them. Relaxed is enough: the board only steers a heuristic —
/// staleness costs efficiency, never correctness.
///
/// Projected finish is the quantity `flits_per_shard_cycle` maximizes
/// over (total flits / max shard clock), and unlike instantaneous
/// idleness it is noise-free: the clock is monotone and the backlog
/// only falls when flits are really served, so an arrival gap — or a
/// time-sliced core whose producers are simply not running during this
/// worker's slice — does not masquerade as need (§8.5). The backlog
/// rides along because projected finish alone cannot tell a laggard
/// from a finisher: a drained shard publishes `finish = clock`, a
/// record of work done rather than a forecast, and the policy uses the
/// backlog to keep such shards out of the donor pool and out of the
/// thief competition.
pub struct LoadBoard {
    finish: Vec<AtomicU64>,
    backlog: Vec<AtomicU64>,
}

impl LoadBoard {
    /// A board for `shards` shards, all projected finishes and
    /// backlogs zero.
    pub fn new(shards: usize) -> Self {
        Self {
            finish: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            backlog: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes `shard`'s projected finish (its flit clock plus its
    /// instantaneous flit load: scheduler backlog + ingress-ring
    /// occupancy) and that flit load by itself. Single writer per
    /// entry, so plain stores are race-free; the pair is not read
    /// atomically, which is fine for a heuristic.
    pub fn update(&self, shard: usize, projected_finish: u64, backlog: u64) {
        self.finish[shard].store(projected_finish, Ordering::Relaxed);
        self.backlog[shard].store(backlog, Ordering::Relaxed);
    }

    /// `shard`'s published projected finish.
    pub fn load(&self, shard: usize) -> u64 {
        self.finish[shard].load(Ordering::Relaxed)
    }

    /// `shard`'s published backlog (flits).
    pub fn backlog(&self, shard: usize) -> u64 {
        self.backlog[shard].load(Ordering::Relaxed)
    }

    /// The donor candidate for `me` (DESIGN.md §8.5): the shard with
    /// the largest projected finish among shards other than `me` whose
    /// backlog is at least `min_backlog`. The floor keeps drained
    /// shards — whose projected finish is their final clock, history
    /// rather than forecast — and shards with only scraps left out of
    /// the donor pool.
    pub fn richest_donor(&self, me: usize, min_backlog: u64) -> Option<usize> {
        (0..self.finish.len())
            .filter(|&s| s != me && self.backlog(s) >= min_backlog)
            .max_by_key(|&s| self.load(s))
    }

    /// The smallest projected finish among shards other than `me` that
    /// are themselves eligible thieves (backlog below
    /// `thief_threshold`) — the competition the minimum-finish gate
    /// compares against. `u64::MAX` when no such shard exists: a busy
    /// shard cannot steal, so its low projected finish must not veto
    /// the idle ones.
    pub fn min_thief_finish(&self, me: usize, thief_threshold: u64) -> u64 {
        (0..self.finish.len())
            .filter(|&s| s != me && self.backlog(s) < thief_threshold)
            .map(|s| self.load(s))
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// Phase of the (single, global) migration in flight — DESIGN.md §8.2.
/// Each transition is owned by exactly one side (thief or donor
/// worker), so no transition races with itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MigrationPhase {
    /// No migration in flight; the slot is free to claim.
    Idle = 0,
    /// A thief claimed the slot and named a donor; the donor has not
    /// yet picked a victim.
    Requested = 1,
    /// The donor parked the victim and published it; waiting for the
    /// thief to park its side and ack.
    Quiescing = 2,
    /// The FlowMap has flipped; the donor waits out the victim's
    /// submit window, then pumps its ring to the recorded drain target.
    Draining = 3,
    /// The donor published the extracted [`MigratedFlow`] package; the
    /// thief absorbs and unparks.
    InTransit = 4,
}

impl MigrationPhase {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Idle,
            1 => Self::Requested,
            2 => Self::Quiescing,
            3 => Self::Draining,
            4 => Self::InTransit,
            _ => unreachable!("invalid migration phase {v}"),
        }
    }
}

/// The single global migration slot (DESIGN.md §8.1): at most one
/// migration is in flight system-wide, which bounds protocol complexity
/// and means the handoff never has to compose with itself. The
/// hysteresis policy, not slot contention, limits the rebalancing rate.
pub struct MigrationSlot {
    phase: AtomicU8,
    thief: AtomicUsize,
    donor: AtomicUsize,
    flow: AtomicUsize,
    thief_ack: AtomicBool,
    /// The extracted flow state, donor → thief. A mutex is fine here:
    /// it is touched twice per migration, never on the packet path.
    package: Mutex<Option<MigratedFlow>>,
}

impl Default for MigrationSlot {
    fn default() -> Self {
        Self {
            phase: AtomicU8::new(MigrationPhase::Idle as u8),
            thief: AtomicUsize::new(usize::MAX),
            donor: AtomicUsize::new(usize::MAX),
            flow: AtomicUsize::new(usize::MAX),
            thief_ack: AtomicBool::new(false),
            package: Mutex::new(None),
        }
    }
}

impl MigrationSlot {
    /// Current phase.
    pub fn phase(&self) -> MigrationPhase {
        // ordering: SeqCst — the migration state machine is advanced
        // by thief, donor, and exiting workers; every participant must
        // see phase transitions in one total order or two shards could
        // both believe they hold the hand-off baton (DESIGN.md §8.2).
        MigrationPhase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    /// The claiming (stealing) shard; valid while the phase is not
    /// [`MigrationPhase::Idle`].
    pub fn thief(&self) -> usize {
        // ordering: SeqCst — read against the SeqCst phase machine;
        // published in `try_claim` before the Requested flip.
        self.thief.load(Ordering::SeqCst)
    }

    /// The shard being stolen from; valid while the phase is not
    /// [`MigrationPhase::Idle`].
    pub fn donor(&self) -> usize {
        // ordering: SeqCst — see `thief`.
        self.donor.load(Ordering::SeqCst)
    }

    /// The victim flow; valid from [`MigrationPhase::Quiescing`] on.
    pub fn flow(&self) -> usize {
        // ordering: SeqCst — published by the donor before the
        // Quiescing flip; same total order as the phase machine.
        self.flow.load(Ordering::SeqCst)
    }

    /// Whether this shard is a party to the migration in flight — the
    /// extra worker-exit clause of DESIGN.md §8.6.
    pub fn involves(&self, shard: usize) -> bool {
        self.phase() != MigrationPhase::Idle && (self.thief() == shard || self.donor() == shard)
    }

    /// Thief claims the idle slot, naming itself and `donor`. The
    /// claim is serialized through the package mutex so a losing
    /// claimant can never tear the winner's thief/donor fields.
    pub(crate) fn try_claim(&self, thief: usize, donor: usize) -> bool {
        let guard = self.package.lock().expect("slot mutex");
        if self.phase() != MigrationPhase::Idle {
            return false;
        }
        // ordering: SeqCst ×4 — identity fields land before the phase
        // flip in the one total order all parties read them through
        // (see `phase`); the Requested store is the publication point.
        self.thief.store(thief, Ordering::SeqCst);
        self.donor.store(donor, Ordering::SeqCst);
        self.thief_ack.store(false, Ordering::SeqCst);
        self.phase
            .store(MigrationPhase::Requested as u8, Ordering::SeqCst);
        drop(guard);
        true
    }

    fn cas_phase(&self, from: MigrationPhase, to: MigrationPhase) -> bool {
        // ordering: SeqCst/SeqCst — phase transitions race (thief
        // abort vs donor advance); the single total order makes
        // exactly one of the racing CASes win (see `phase`).
        self.phase
            .compare_exchange(from as u8, to as u8, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn store_phase(&self, to: MigrationPhase) {
        // ordering: SeqCst — see `phase`.
        self.phase.store(to as u8, Ordering::SeqCst);
    }
}

/// The epoch-stamped flow→shard routing overlay (DESIGN.md §8.1): one
/// atomic per flow packing `(epoch << 32) | shard`. Producers consult
/// it inside `submit`; the donor flips it with one `SeqCst` store — the
/// instant that separates a flow's old home from its new one. Flows
/// outside the configured id space fall back to the static hash and
/// never migrate.
pub struct FlowMap {
    entries: Vec<AtomicU64>,
    shards: usize,
}

impl FlowMap {
    /// Builds the overlay at epoch 0, matching the static partition.
    pub fn new(n_flows: usize, shards: usize) -> Self {
        Self {
            entries: (0..n_flows)
                .map(|f| AtomicU64::new(mix_flow(f) % shards as u64))
                .collect(),
            shards,
        }
    }

    /// Flows covered by the overlay.
    pub fn n_flows(&self) -> usize {
        self.entries.len()
    }

    /// The shard `flow` currently routes to, or `None` for flows
    /// outside the overlay (static fallback, never migrated).
    pub fn shard_of(&self, flow: usize) -> Option<usize> {
        // ordering: SeqCst — producer half of the submit-window Dekker
        // (§8.3): this map read sits between the SeqCst window enter
        // and the ring push; one total order against `reroute`'s flip
        // plus the drain's window zero-check means a flip the producer
        // missed still sees the producer counted in the window.
        self.entries
            .get(flow)
            .map(|e| (e.load(Ordering::SeqCst) & 0xFFFF_FFFF) as usize)
    }

    /// `flow`'s migration epoch (0 until first stolen).
    pub fn epoch_of(&self, flow: usize) -> u64 {
        // ordering: SeqCst — same read side as `shard_of`.
        self.entries
            .get(flow)
            .map_or(0, |e| e.load(Ordering::SeqCst) >> 32)
    }

    /// Re-homes `flow` to `shard`, bumping its epoch, in one `SeqCst`
    /// store. Donor-only, and only while the flow is parked on both
    /// sides (DESIGN.md §8.3 fence 1).
    pub(crate) fn reroute(&self, flow: usize, shard: usize) {
        debug_assert!(shard < self.shards);
        // ordering: SeqCst load — donor-only writer, so the load just
        // joins the same total order as the store below.
        let old = self.entries[flow].load(Ordering::SeqCst);
        let epoch = (old >> 32) + 1;
        // ordering: SeqCst — the flip side of the submit-window Dekker
        // (§8.3 fence 1): ordered against `shard_of`'s SeqCst read and
        // the window zero-check so no producer can route to the old
        // home unseen.
        self.entries[flow].store((epoch << 32) | shard as u64, Ordering::SeqCst);
    }
}

/// Shared stealing state hung off the runtime's `Shared` block.
pub(crate) struct StealRuntime {
    pub(crate) map: FlowMap,
    /// Per-flow submit window (DESIGN.md §8.3 fence 2): the count of
    /// producers currently between "read the FlowMap" and "push
    /// completed" for this flow. SeqCst on both sides gives the
    /// Dekker-style dichotomy the drain target relies on.
    pub(crate) window: Vec<AtomicU32>,
    pub(crate) board: LoadBoard,
    pub(crate) slot: MigrationSlot,
    pub(crate) config: StealingConfig,
}

impl StealRuntime {
    pub(crate) fn new(n_flows: usize, shards: usize, config: StealingConfig) -> Self {
        Self {
            map: FlowMap::new(n_flows, shards),
            window: (0..n_flows).map(|_| AtomicU32::new(0)).collect(),
            board: LoadBoard::new(shards),
            slot: MigrationSlot::default(),
            config,
        }
    }

    /// Whether no producer currently holds `flow`'s submit window.
    fn window_clear(&self, flow: usize) -> bool {
        // ordering: SeqCst — drain half of the §8.3 fence-2 Dekker:
        // ordered after the map flip, so any producer this check does
        // not count is guaranteed to have read the flipped map.
        self.window[flow].load(Ordering::SeqCst) == 0
    }
}

/// RAII bracket for the per-flow submit window: `enter` before reading
/// the FlowMap, dropped after the ring push completes (on every exit
/// path, including drop-tail and closed returns).
pub(crate) struct WindowGuard<'a> {
    counter: &'a AtomicU32,
}

impl<'a> WindowGuard<'a> {
    /// Brackets a window counter — the stealing and fault overlays
    /// (DESIGN.md §8.3 fence 2, §9.2) both maintain per-flow windows
    /// with the same Dekker discipline, entered via
    /// `Shared::flow_window`.
    pub(crate) fn enter_counter(counter: &'a AtomicU32) -> Self {
        // ordering: SeqCst — producer half of the §8.3 fence-2 Dekker:
        // the increment precedes the FlowMap read in the total order,
        // so a drain that sees zero knows this producer will read the
        // flipped map.
        counter.fetch_add(1, Ordering::SeqCst);
        Self { counter }
    }
}

impl Drop for WindowGuard<'_> {
    fn drop(&mut self) {
        // ordering: SeqCst — the exit must not sink below the ring
        // push it brackets; the drain's zero-check relies on it.
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-worker migration driver: one lives on each shard worker's stack
/// and is ticked once per service loop. It advances whatever role the
/// shard currently plays in the global slot's state machine and
/// evaluates the stealing policy at poll boundaries.
pub(crate) struct MigrationDriver {
    shard: usize,
    loops_since_poll: u32,
    cooldown: u32,
    /// This shard's flit clock at the completion of the last migration
    /// it took part in (either role) — the serve-chunk guard (§8.5)
    /// refuses to donate again before `min_gap` more cycles of service.
    last_handoff_clock: u64,
    /// Donor-side: the ring enqueue cursor recorded once the victim's
    /// submit window cleared; `None` while still waiting for it.
    drain_target: Option<usize>,
}

impl MigrationDriver {
    pub(crate) fn new(shard: usize) -> Self {
        Self {
            shard,
            loops_since_poll: 0,
            cooldown: 0,
            last_handoff_clock: 0,
            drain_target: None,
        }
    }

    /// Advances the protocol one step, called after the worker's
    /// intake+service phases (so the ring's dequeue cursor only ever
    /// covers packets already inside the scheduler). `idle` is whether
    /// that loop iteration moved nothing: idle workers poll the board
    /// every tick (§8.5) — the `poll_interval` throttle only protects
    /// the busy service path, and end-game rebalancing dies if a parked
    /// shard reacts a park-timeout too late.
    ///
    /// `pre_backlog` is the shard's flit load sampled at *intake* time
    /// (scheduler backlog after arrivals were enqueued, plus leftover
    /// ring occupancy). Sampling at this post-service instant instead
    /// would make a shard whose service keeps pace with its intake —
    /// every batch drained within the loop that pulled it — publish a
    /// perpetually empty queue, hiding exactly the inflow the donor
    /// floor looks for (§8.1).
    pub(crate) fn tick(
        &mut self,
        shared: &Shared,
        scheduler: &mut Box<dyn Scheduler + Send>,
        idle: bool,
        now: u64,
        pre_backlog: u64,
    ) {
        let Some(st) = shared.steal.as_ref() else {
            return;
        };
        let slot = &st.slot;

        self.loops_since_poll += 1;
        if idle || self.loops_since_poll >= st.config.poll_interval {
            self.loops_since_poll = 0;
            st.board.update(self.shard, now + pre_backlog, pre_backlog);
            if self.cooldown > 0 {
                self.cooldown -= 1;
            } else if slot.phase() == MigrationPhase::Idle && !shared.is_closed() {
                self.maybe_request(st, pre_backlog, now + pre_backlog);
            }
        }

        match slot.phase() {
            MigrationPhase::Idle => {}
            MigrationPhase::Requested => self.tick_requested(shared, st, scheduler, now),
            MigrationPhase::Quiescing => self.tick_quiescing(shared, st, scheduler),
            MigrationPhase::Draining => self.tick_draining(shared, st, scheduler, now),
            MigrationPhase::InTransit => self.tick_in_transit(shared, st, scheduler, now),
        }
    }

    /// Steal evaluation (DESIGN.md §8.5): request only when near-empty,
    /// furthest behind among the shards that could steal at all, and
    /// aimed at a donor with real work whose projected finish is worth
    /// a handoff.
    fn maybe_request(&mut self, st: &StealRuntime, my_backlog: u64, my_finish: u64) {
        if my_backlog >= st.config.steal_threshold {
            return;
        }
        if my_finish
            > st.board
                .min_thief_finish(self.shard, st.config.steal_threshold)
        {
            return;
        }
        let Some(donor) = st.board.richest_donor(self.shard, st.config.min_gap) else {
            return;
        };
        if st.board.load(donor) > my_finish + st.config.min_gap {
            st.slot.try_claim(self.shard, donor);
        }
    }

    fn tick_requested(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        scheduler: &mut Box<dyn Scheduler + Send>,
        now: u64,
    ) {
        let slot = &st.slot;
        let me = self.shard;
        if slot.thief() == me && shared.is_closed() {
            // Abort the own pending request at shutdown; the CAS races
            // the donor's Requested→Quiescing CAS — whoever wins
            // decides whether the migration runs or dies (§8.6).
            if slot.cas_phase(MigrationPhase::Requested, MigrationPhase::Idle) {
                shared.stats[me].steal_aborts.add(1);
            }
            return;
        }
        if slot.donor() != me {
            return;
        }
        if shared.is_closed() {
            if slot.cas_phase(MigrationPhase::Requested, MigrationPhase::Idle) {
                shared.stats[me].steal_aborts.add(1);
            }
            return;
        }
        // Victim selection: the heaviest flow the FlowMap still homes
        // here with a nonzero backlog. `flow_backlog_flits` is O(1) per
        // flow, so the scan is O(n_flows).
        let victim = (0..st.map.n_flows())
            .filter(|&f| st.map.shard_of(f) == Some(me))
            .map(|f| (scheduler.flow_backlog_flits(f), f))
            .filter(|&(b, _)| b > 0)
            .max();
        match victim {
            Some((_, flow)) => {
                // Serve-chunk guard (§8.5): a flow that just landed
                // here must be *served*, not forwarded — leave the
                // request pending (the thief waits; we keep serving)
                // until this shard has put min_gap cycles of work in
                // since its last handoff. A victim exists, so the
                // clock is still advancing and the guard must clear.
                if now.wrapping_sub(self.last_handoff_clock) < st.config.min_gap {
                    return;
                }
                // Quiesce, donor side: park before publishing, so the
                // flow is unservable here from this point on (§8.3
                // fence 1).
                scheduler.park_flow(flow);
                // ordering: SeqCst — victim published before the
                // Quiescing flip, in the phase machine's total order.
                slot.flow.store(flow, Ordering::SeqCst);
                if !slot.cas_phase(MigrationPhase::Requested, MigrationPhase::Quiescing) {
                    // The thief aborted concurrently; undo the park.
                    scheduler.unpark_flow(flow);
                }
            }
            None => {
                if slot.cas_phase(MigrationPhase::Requested, MigrationPhase::Idle) {
                    shared.stats[me].steal_aborts.add(1);
                }
            }
        }
    }

    fn tick_quiescing(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        scheduler: &mut Box<dyn Scheduler + Send>,
    ) {
        let slot = &st.slot;
        let me = self.shard;
        // ordering: SeqCst (ack load/store below) — the ack rides the
        // phase machine's total order: the donor flips the map only
        // after seeing the ack, which the thief stores only after
        // parking its side (§8.3 fence 1, both-parked before flip).
        if slot.thief() == me && !slot.thief_ack.load(Ordering::SeqCst) {
            // Quiesce, thief side: park before acking, so new-epoch
            // arrivals wait unserved until the handoff lands.
            scheduler.park_flow(slot.flow());
            slot.thief_ack.store(true, Ordering::SeqCst);
            // ordering: SeqCst ack load below — donor half; see above.
        } else if slot.donor() == me && slot.thief_ack.load(Ordering::SeqCst) {
            // Both sides parked: flip the map. From the next SeqCst
            // read on, producers route to the thief.
            st.map.reroute(slot.flow(), slot.thief());
            self.drain_target = None;
            slot.store_phase(MigrationPhase::Draining);
        }
        let _ = shared;
    }

    fn tick_draining(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        scheduler: &mut Box<dyn Scheduler + Send>,
        now: u64,
    ) {
        let slot = &st.slot;
        let me = self.shard;
        if slot.donor() != me {
            return;
        }
        let flow = slot.flow();
        let ring = &shared.rings[me];
        if self.drain_target.is_none() {
            // §8.3 fence 2: wait (non-blocking — the worker keeps
            // pumping intake between ticks, so a producer spinning on
            // a full donor ring still completes) until no producer is
            // mid-push under the old routing.
            if !st.window_clear(flow) {
                return;
            }
            self.drain_target = Some(ring.enqueue_pos());
        }
        let target = self.drain_target.expect("just set");
        // §8.3 fence 3: the single consumer never skips a slot, so
        // dequeue ≥ target means every old-epoch packet has been popped
        // into the (parked) queue that extract_flow is about to take.
        if (ring.dequeue_pos().wrapping_sub(target) as isize) < 0 {
            return;
        }
        let pkg = scheduler
            .extract_flow(flow)
            .expect("victim is parked on the donor");
        shared.stats[me].donated_out.add(1);
        shared.stats[me].migrated_flits.add(pkg.flits());
        *slot.package.lock().expect("slot mutex") = Some(pkg);
        self.drain_target = None;
        self.cooldown = st.config.cooldown_polls;
        self.last_handoff_clock = now;
        slot.store_phase(MigrationPhase::InTransit);
    }

    fn tick_in_transit(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        scheduler: &mut Box<dyn Scheduler + Send>,
        now: u64,
    ) {
        let slot = &st.slot;
        let me = self.shard;
        if slot.thief() != me {
            return;
        }
        let flow = slot.flow();
        let pkg = slot
            .package
            .lock()
            .expect("slot mutex")
            .take()
            .expect("donor published the package");
        let absorbed = scheduler.absorb_flow(flow, pkg);
        debug_assert!(absorbed, "thief parked the flow before acking");
        scheduler.unpark_flow(flow);
        shared.stats[me].stolen_in.add(1);
        self.cooldown = st.config.cooldown_polls;
        self.last_handoff_clock = now;
        slot.store_phase(MigrationPhase::Idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_map_starts_on_static_partition_and_reroutes() {
        let map = FlowMap::new(8, 4);
        for f in 0..8 {
            assert_eq!(map.shard_of(f), Some((mix_flow(f) % 4) as usize));
            assert_eq!(map.epoch_of(f), 0);
        }
        assert_eq!(map.shard_of(100), None, "outside the overlay");
        map.reroute(3, 1);
        assert_eq!(map.shard_of(3), Some(1));
        assert_eq!(map.epoch_of(3), 1);
        map.reroute(3, 2);
        assert_eq!((map.shard_of(3), map.epoch_of(3)), (Some(2), 2));
    }

    #[test]
    fn load_board_orders_projected_finishes() {
        let b = LoadBoard::new(3);
        b.update(0, 1000, 900);
        b.update(1, 8000, 7000);
        b.update(2, 500, 100);
        assert_eq!(b.load(1), 8000, "raw projected finish, no smoothing");
        assert_eq!(b.backlog(1), 7000);
        assert_eq!(b.richest_donor(2, 1), Some(1));
        assert_eq!(b.richest_donor(1, 1), Some(0));
        // The donor-backlog floor skips shards with only scraps.
        assert_eq!(b.richest_donor(2, 1000), Some(1), "shard 0 below floor");
        assert_eq!(b.richest_donor(1, 1000), None, "no donor has enough");
        // The thief competition only counts near-empty shards: with a
        // threshold of 256 only shard 2 (backlog 100) competes.
        assert_eq!(b.min_thief_finish(0, 256), 500);
        assert_eq!(b.min_thief_finish(2, 256), u64::MAX, "no rival thief");
        // With a huge threshold everyone competes.
        assert_eq!(b.min_thief_finish(1, u64::MAX), 500);
        // A drained shard keeps its final clock as `finish` but drops
        // out of the donor pool entirely.
        b.update(1, 8000, 0);
        assert_eq!(b.richest_donor(2, 1), Some(0));
        // A 1-shard board has no "others" to steal from.
        let solo = LoadBoard::new(1);
        assert_eq!(solo.richest_donor(0, 0), None);
        assert_eq!(solo.min_thief_finish(0, u64::MAX), u64::MAX);
    }

    #[test]
    fn slot_claim_is_exclusive_until_idle() {
        let slot = MigrationSlot::default();
        assert_eq!(slot.phase(), MigrationPhase::Idle);
        assert!(slot.try_claim(2, 0));
        assert_eq!(slot.phase(), MigrationPhase::Requested);
        assert_eq!((slot.thief(), slot.donor()), (2, 0));
        assert!(!slot.try_claim(3, 1), "slot is taken");
        assert_eq!((slot.thief(), slot.donor()), (2, 0), "fields untorn");
        assert!(slot.involves(2) && slot.involves(0) && !slot.involves(1));
        assert!(slot.cas_phase(MigrationPhase::Requested, MigrationPhase::Idle));
        assert!(!slot.involves(2));
        assert!(slot.try_claim(3, 1), "free again");
    }

    #[test]
    fn phase_roundtrip() {
        for p in [
            MigrationPhase::Idle,
            MigrationPhase::Requested,
            MigrationPhase::Quiescing,
            MigrationPhase::Draining,
            MigrationPhase::InTransit,
        ] {
            assert_eq!(MigrationPhase::from_u8(p as u8), p);
        }
    }
}
