//! Work stealing / flow migration between shards (DESIGN.md §8), built
//! on the §13 ownership authority.
//!
//! The scheme in one paragraph: every shard publishes its projected
//! finish time and backlog on a lock-free [`LoadBoard`]. A near-idle
//! shard (the *thief*) claims its own [`MigrationSlot`] naming a donor;
//! the donor picks its most backlogged flow, takes a per-flow
//! `Stealing` claim from the [`Ownership`] authority, and hands the
//! flow over through the five-phase protocol ([`MigrationPhase`],
//! `Idle → Requested → Quiescing → Draining → InTransit → Idle`) whose
//! linearization point is the authority's epoch-CAS reroute. There is
//! one slot *per thief* (§13.4), so several thieves can pull from one
//! hot donor concurrently — per-flow claims keep any two slots off the
//! same flow. Under buffered egress the donor additionally waits out
//! the egress-retire fence (§13.5) before flipping the map: every flit
//! it pushed for the victim must have been delivered or dead-lettered
//! by its flusher, or two flushers could interleave the flow's packets
//! on one link.
//!
//! The scheduler-side state package ([`MigratedFlow`]) and the
//! extract/absorb operations live in `err_sched::migrate`; the routing
//! map, submit windows, and per-flow claims live in
//! [`crate::ownership`]. This module owns the *orchestration*: when to
//! steal, how to quiesce, and why no packet is lost or reordered while
//! a flow changes homes.
//!
//! Locking note: all slot *transitions* serialize through the slot's
//! package mutex (cold path — a handful per migration), so an abort
//! racing a grant can never clobber the other side's cell writes. Slot
//! *reads* (`phase`, `involves`) stay lock-free atomics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use desim::Cycle;
use err_egress::{FlushProgress, LinkSet};
use err_sched::migrate::MigratedFlow;
use err_sched::{Scheduler, ServedFlit};

use crate::fault::lock_unpoisoned;
use crate::ingress::Shared;
use crate::ownership::{ClaimToken, OwnerState, Ownership};

/// Sentinel for "no shard / no flow" in the slot's atomic cells.
const NONE: usize = usize::MAX;
/// Sentinel for "unset" in the slot's u64 cells (drain/fence targets).
const UNSET: u64 = u64::MAX;
/// Donor ticks a buffered-egress fence may pend before the steal
/// aborts (§13.5). Generous: the fence only stalls behind a frozen or
/// dead link, and an abort is cheap (the map never flipped).
const FENCE_BUDGET: u64 = 1 << 16;

/// Policy knobs for work stealing (DESIGN.md §8.5). The defaults are
/// deliberately conservative: near-balanced shards must never trade
/// flows back and forth.
#[derive(Clone, Copy, Debug)]
pub struct StealingConfig {
    /// Worker loop iterations between LoadBoard refreshes / steal
    /// evaluations while busy (idle workers poll every loop).
    pub poll_interval: u32,
    /// A shard considers stealing only when its own backlog (flits) is
    /// below a quarter of this, and a donor must carry at least this
    /// much backlog to be robbed.
    pub steal_threshold: u64,
    /// Absolute hysteresis floor in flits, twice over: the donor's
    /// projected finish must exceed the thief's by at least this, and
    /// a donor serves at least this many cycles between handoff grants
    /// (the serve-chunk guard, §8.5).
    pub min_gap: u64,
    /// Polls during which a shard that just completed a steal initiates
    /// nothing — its own board entry must refresh before it reasons
    /// from the board again.
    pub cooldown_polls: u32,
}

impl Default for StealingConfig {
    fn default() -> Self {
        Self {
            poll_interval: 16,
            steal_threshold: 512,
            min_gap: 1024,
            cooldown_polls: 8,
        }
    }
}

/// Lock-free per-shard load summary: projected finish time and backlog
/// flits, updated by each worker once per service loop (DESIGN.md §8.1).
pub struct LoadBoard {
    finish: Vec<AtomicU64>,
    backlog: Vec<AtomicU64>,
}

impl LoadBoard {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            finish: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            backlog: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes `shard`'s current projected finish and backlog.
    pub(crate) fn update(&self, shard: usize, now: Cycle, backlog: u64) {
        // ordering: Relaxed — the board is a heuristic input to the
        // stealing policy; a stale read costs at most one deferred or
        // spurious steal attempt, never correctness (§8.1).
        self.finish[shard].store(now + backlog, Ordering::Relaxed);
        self.backlog[shard].store(backlog, Ordering::Relaxed);
    }

    /// Projected finish time (flit clock + backlog) of `shard`.
    pub fn load(&self, shard: usize) -> u64 {
        // ordering: Relaxed — heuristic read, see `update`.
        self.finish[shard].load(Ordering::Relaxed)
    }

    /// Last published backlog of `shard`.
    pub fn backlog(&self, shard: usize) -> u64 {
        // ordering: Relaxed — heuristic read, see `update`.
        self.backlog[shard].load(Ordering::Relaxed)
    }

    /// The shard with the largest backlog at least `min_backlog`,
    /// excluding `me`; `None` when nobody qualifies.
    pub(crate) fn richest_donor(&self, me: usize, min_backlog: u64) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for s in 0..self.backlog.len() {
            if s == me {
                continue;
            }
            let b = self.backlog(s);
            if b >= min_backlog && best.map(|(_, bb)| b > bb).unwrap_or(true) {
                best = Some((s, b));
            }
        }
        best.map(|(s, _)| s)
    }
}

/// Phases of one migration handoff (DESIGN.md §8.2). The slot steps
/// `Idle → Requested → Quiescing → Draining → InTransit → Idle`; each
/// arrow is owned by exactly one side (thief or donor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MigrationPhase {
    /// No handoff in progress on this slot.
    Idle = 0,
    /// The slot's thief has named a donor and waits for a grant.
    Requested = 1,
    /// The donor picked and claimed a victim flow; both sides park it.
    Quiescing = 2,
    /// The commit phase: the donor flips the map (epoch CAS), waits out
    /// the submit window, and drains its ring past the flip point.
    Draining = 3,
    /// The extracted package is published; the thief absorbs it.
    InTransit = 4,
}

impl MigrationPhase {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Idle,
            1 => Self::Requested,
            2 => Self::Quiescing,
            3 => Self::Draining,
            4 => Self::InTransit,
            _ => unreachable!("invalid migration phase {v}"),
        }
    }
}

/// One thief's migration slot (§13.4): the rendezvous cell for a single
/// in-flight handoff. The runtime holds one slot per shard, indexed by
/// the thief, so distinct thieves never contend for a slot — per-flow
/// `Stealing` claims in [`Ownership`] keep them off each other's
/// victims instead.
pub struct MigrationSlot {
    phase: AtomicU8,
    thief: AtomicUsize,
    donor: AtomicUsize,
    flow: AtomicUsize,
    /// Thief→donor signal that the victim is parked at the new home.
    thief_ack: AtomicBool,
    /// Epoch recorded by the donor's `Stealing` claim — the material to
    /// reconstruct the [`ClaimToken`] on whichever side finishes.
    claim_epoch: AtomicU64,
    /// Donor-side ring-drain cursor (enqueue position at flip time).
    drain_target: AtomicU64,
    /// Donor-side egress-retire fence snapshot (§13.5; buffered only).
    fence_target: AtomicU64,
    /// Donor ticks spent waiting on the fence (abort budget).
    fence_ticks: AtomicU64,
    /// The extracted flow state, donor → thief; doubles as the slot's
    /// transition lock (see the module docs).
    package: Mutex<Option<MigratedFlow>>,
}

impl MigrationSlot {
    fn new() -> Self {
        Self {
            phase: AtomicU8::new(MigrationPhase::Idle as u8),
            thief: AtomicUsize::new(NONE),
            donor: AtomicUsize::new(NONE),
            flow: AtomicUsize::new(NONE),
            thief_ack: AtomicBool::new(false),
            claim_epoch: AtomicU64::new(UNSET),
            drain_target: AtomicU64::new(UNSET),
            fence_target: AtomicU64::new(UNSET),
            fence_ticks: AtomicU64::new(0),
            package: Mutex::new(None),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> MigrationPhase {
        // ordering: SeqCst — the phase byte sequences every cross-side
        // protocol step; both sides' reads must agree with the
        // transitions in one total order (§8.2).
        MigrationPhase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    /// The requesting shard, or `None` outside a handoff.
    pub fn thief(&self) -> Option<usize> {
        // ordering: SeqCst — read against the phase protocol.
        match self.thief.load(Ordering::SeqCst) {
            NONE => None,
            s => Some(s),
        }
    }

    /// The donating shard, or `None` outside a handoff.
    pub fn donor(&self) -> Option<usize> {
        // ordering: SeqCst — read against the phase protocol.
        match self.donor.load(Ordering::SeqCst) {
            NONE => None,
            s => Some(s),
        }
    }

    /// The victim flow, once the donor has chosen one.
    pub fn flow(&self) -> Option<usize> {
        // ordering: SeqCst — read against the phase protocol.
        match self.flow.load(Ordering::SeqCst) {
            NONE => None,
            f => Some(f),
        }
    }

    /// Whether `shard` is a party (thief or donor) to this handoff.
    pub(crate) fn involves(&self, shard: usize) -> bool {
        self.phase() != MigrationPhase::Idle
            && (self.thief() == Some(shard) || self.donor() == Some(shard))
    }

    /// Thief-side slot acquisition: `Idle → Requested` naming a donor.
    pub(crate) fn try_claim(&self, thief: usize, donor: usize) -> bool {
        let _guard = lock_unpoisoned(&self.package);
        if self.phase() != MigrationPhase::Idle {
            return false;
        }
        // ordering: SeqCst — the role cells must be visible before the
        // phase store publishes the request (phase is the guard word).
        self.thief.store(thief, Ordering::SeqCst);
        self.donor.store(donor, Ordering::SeqCst);
        self.flow.store(NONE, Ordering::SeqCst);
        self.thief_ack.store(false, Ordering::SeqCst);
        self.claim_epoch.store(UNSET, Ordering::SeqCst);
        self.drain_target.store(UNSET, Ordering::SeqCst);
        // ordering: SeqCst — same publish-before-phase rule as above.
        self.fence_target.store(UNSET, Ordering::SeqCst);
        self.fence_ticks.store(0, Ordering::SeqCst);
        self.store_phase(MigrationPhase::Requested);
        true
    }

    fn store_phase(&self, to: MigrationPhase) {
        // ordering: SeqCst — every phase transition must land in the
        // single total order both sides' phase reads observe.
        self.phase.store(to as u8, Ordering::SeqCst);
    }

    /// Resets the slot to `Idle`. Callers must hold the package mutex
    /// and must already have released (or forfeited) the flow claim.
    fn reset_locked(&self) {
        // ordering: SeqCst — role cells cleared before the phase store
        // re-opens the slot.
        self.thief.store(NONE, Ordering::SeqCst);
        self.donor.store(NONE, Ordering::SeqCst);
        self.flow.store(NONE, Ordering::SeqCst);
        self.thief_ack.store(false, Ordering::SeqCst);
        self.claim_epoch.store(UNSET, Ordering::SeqCst);
        self.store_phase(MigrationPhase::Idle);
    }

    /// Reconstructs the donor's claim token from the slot cells.
    fn token(&self) -> Option<ClaimToken> {
        let flow = self.flow()?;
        let thief = self.thief()?;
        // ordering: SeqCst — read against the phase protocol.
        match self.claim_epoch.load(Ordering::SeqCst) {
            UNSET => None,
            e => Some(ClaimToken::stealing(flow, thief, e as u32)),
        }
    }
}

/// Work-stealing state hung off the runtime's `Shared` block.
pub(crate) struct StealRuntime {
    /// The §13 ownership authority (map + windows + claims), shared
    /// with the fault layer when supervision is also on.
    pub(crate) own: Arc<Ownership>,
    pub(crate) board: LoadBoard,
    /// One slot per thief shard (§13.4).
    pub(crate) slots: Vec<MigrationSlot>,
    pub(crate) config: StealingConfig,
}

impl StealRuntime {
    pub(crate) fn new(own: Arc<Ownership>, shards: usize, config: StealingConfig) -> Self {
        Self {
            own,
            board: LoadBoard::new(shards),
            slots: (0..shards).map(|_| MigrationSlot::new()).collect(),
            config,
        }
    }

    /// Whether any in-flight handoff names `shard` (exit guard, §8.6).
    pub(crate) fn involves(&self, shard: usize) -> bool {
        self.slots.iter().any(|s| s.involves(shard))
    }

    /// Whether any handoff naming `shard` is past `Requested` — the
    /// hot-spin criterion (a pending request can legitimately wait out
    /// the donor's serve-chunk guard; later phases cannot).
    pub(crate) fn hot_handoff(&self, shard: usize) -> bool {
        self.slots
            .iter()
            .any(|s| s.involves(shard) && s.phase() != MigrationPhase::Requested)
    }
}

/// Buffered-egress context the worker lends to [`MigrationDriver::tick`]
/// (§13.5): the donor's retire fence reads the flusher's progress
/// cursor against the worker's own pushed count; the thief's absorb
/// respects per-link credit parking.
pub(crate) struct BufferedStealCtx<'a> {
    pub(crate) links: &'a LinkSet,
    pub(crate) link_parked: &'a [bool],
    /// Flits this worker has pushed to its egress ring so far.
    pub(crate) pushed: u64,
    /// This shard's flusher retire cursor.
    pub(crate) progress: &'a FlushProgress,
    /// The worker's per-link stash of served-but-uncommitted flits.
    pub(crate) stash: &'a [Option<ServedFlit>],
}

impl BufferedStealCtx<'_> {
    /// Whether every flit of `flow` this worker emitted before the
    /// `snapshot` push count has been retired downstream (§13.5): the
    /// flusher's pending-free watermark passed the snapshot, and no
    /// flit of the flow sits stashed on the worker.
    fn flow_retired(&self, flow: usize, snapshot: u64) -> bool {
        let stash_clear = self.stash[self.links.route(flow)]
            .map(|f| f.flow != flow)
            .unwrap_or(true);
        stash_clear && self.progress.retired() >= snapshot
    }
}

/// Per-worker migration driver: the worker-thread half of the stealing
/// protocol. Owns the thief-side policy state (poll pacing, cooldown)
/// and the donor-side pacing (serve-chunk guard); everything shared
/// lives in [`StealRuntime`]. Travels inside the §13.6 bequest when the
/// shard dies, so a resurrected worker continues its in-flight
/// handoffs instead of stranding them.
pub(crate) struct MigrationDriver {
    shard: usize,
    loops_since_poll: u32,
    cooldown: u32,
    last_handoff_clock: Cycle,
    /// Victim this thief parked locally for a pending handoff; unparked
    /// if the donor aborts the slot back to `Idle`.
    thief_parked: Option<usize>,
}

impl MigrationDriver {
    pub(crate) fn new(shard: usize) -> Self {
        Self {
            shard,
            loops_since_poll: 0,
            cooldown: 0,
            last_handoff_clock: 0,
            thief_parked: None,
        }
    }

    /// Advances this worker's role in every handoff that names it, and
    /// evaluates the stealing policy at poll boundaries (DESIGN.md §8).
    /// `egress` is `Some` under buffered egress (§13.5), `None` under
    /// sync egress.
    pub(crate) fn tick(
        &mut self,
        shared: &Shared,
        scheduler: &mut Box<dyn Scheduler + Send>,
        idle: bool,
        now: Cycle,
        pre_backlog: u64,
        egress: Option<&BufferedStealCtx<'_>>,
    ) {
        let Some(st) = shared.steal.as_ref() else {
            return;
        };
        st.board.update(self.shard, now, pre_backlog);

        // Thief side: advance our own slot.
        match st.slots[self.shard].phase() {
            MigrationPhase::Idle => {
                // A donor abort (fence timeout, seized claim, or
                // withdrawal) reset the slot; unpark the victim we
                // parked for it.
                if let Some(flow) = self.thief_parked.take() {
                    unpark_respecting_links(scheduler, flow, egress);
                }
            }
            MigrationPhase::Requested => {
                if shared.is_closed() && st.slots[self.shard].thief() == Some(self.shard) {
                    // §8.6: no new handoffs once draining; withdraw.
                    let slot = &st.slots[self.shard];
                    let _guard = lock_unpoisoned(&slot.package);
                    if slot.phase() == MigrationPhase::Requested {
                        slot.reset_locked();
                        shared.stats[self.shard].steal_aborts.add(1);
                    }
                }
            }
            MigrationPhase::Quiescing => self.thief_quiescing(st, scheduler),
            MigrationPhase::Draining => {}
            MigrationPhase::InTransit => self.thief_absorb(shared, st, scheduler, egress),
        }

        // Donor side: advance every slot that names us as donor. Each
        // slot runs its own phase machine; per-flow claims keep them on
        // distinct victims (§13.4).
        for slot in &st.slots {
            if slot.donor() != Some(self.shard) {
                continue;
            }
            match slot.phase() {
                MigrationPhase::Requested => {
                    self.donor_grant(shared, st, slot, scheduler, now, pre_backlog, egress)
                }
                MigrationPhase::Quiescing => self.donor_fence(shared, st, slot, scheduler, egress),
                MigrationPhase::Draining => {
                    self.donor_drain(shared, st, slot, scheduler, now, egress)
                }
                _ => {}
            }
        }

        // Policy: should *we* go steal?
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        self.loops_since_poll += 1;
        if !idle && self.loops_since_poll < st.config.poll_interval {
            return;
        }
        self.loops_since_poll = 0;
        self.maybe_request(shared, st, now, pre_backlog);
    }

    /// Thief policy (DESIGN.md §8.5): request a steal when near-empty
    /// while some donor is rich enough that moving a flow helps.
    fn maybe_request(&mut self, shared: &Shared, st: &StealRuntime, now: Cycle, backlog: u64) {
        if shared.is_closed() || st.slots[self.shard].phase() != MigrationPhase::Idle {
            return;
        }
        // Near-empty check: we are about to go idle.
        if backlog >= st.config.steal_threshold / 4 {
            return;
        }
        let Some(donor) = st
            .board
            .richest_donor(self.shard, st.config.steal_threshold)
        else {
            return;
        };
        // Gap check: the imbalance must be worth a handoff.
        if st.board.load(donor).saturating_sub(now + backlog) < st.config.min_gap {
            return;
        }
        st.slots[self.shard].try_claim(self.shard, donor);
    }

    /// Donor @ Requested: pick the richest unclaimed flow homed here,
    /// take its `Stealing` claim, park it locally, and move the slot to
    /// Quiescing. Grants are paced by the serve-chunk guard (§8.5).
    #[allow(clippy::too_many_arguments)] // donor handlers share (shared, st, slot, scheduler, …, egress)
    fn donor_grant(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        slot: &MigrationSlot,
        scheduler: &mut Box<dyn Scheduler + Send>,
        now: Cycle,
        backlog: u64,
        egress: Option<&BufferedStealCtx<'_>>,
    ) {
        let Some(thief) = slot.thief() else { return };
        // Withdraw when we have stopped being a worthwhile donor: the
        // thief would otherwise camp on this slot forever.
        if shared.is_closed() || backlog < st.config.steal_threshold {
            let _guard = lock_unpoisoned(&slot.package);
            if slot.phase() == MigrationPhase::Requested {
                slot.reset_locked();
                shared.stats[self.shard].steal_aborts.add(1);
            }
            return;
        }
        // Serve-chunk guard: grant at most one handoff per `min_gap`
        // flits of local service (§8.5) — with per-thief slots this
        // paces *grants*; granted handoffs overlap freely.
        if now.wrapping_sub(self.last_handoff_clock) < st.config.min_gap {
            return;
        }
        // Victim: largest backlog among flows homed here that no mover
        // holds — the claim *is* the eligibility check (§13.1).
        let n_flows = st.own.map.n_flows();
        let mut best: Option<(usize, u64)> = None;
        for flow in 0..n_flows {
            if st.own.shard_of(flow) != Some(self.shard) {
                continue;
            }
            if st.own.owner_state(flow) != OwnerState::Settled {
                continue;
            }
            let b = scheduler.flow_backlog_flits(flow);
            if b > 0 && best.map(|(_, bb)| b > bb).unwrap_or(true) {
                best = Some((flow, b));
            }
        }
        let Some((flow, _)) = best else { return };
        let Some(token) = st.own.try_claim(flow, OwnerState::Stealing, thief) else {
            return; // raced by another slot or a salvage; retry next tick
        };
        // unpark: `unpark_respecting_links` on the withdraw-unwind
        // below; on the happy path the flow leaves this shard and the
        // thief's `thief_absorb` unparks it at its new home.
        let _ = scheduler.park_flow(flow);
        let _guard = lock_unpoisoned(&slot.package);
        if slot.phase() != MigrationPhase::Requested {
            // The thief withdrew while we were claiming. Unwind — the
            // slot belongs to whoever owns it now; touch nothing.
            // Every donor-side unwind must respect link parking: a
            // direct unpark of a credit-parked flow lets the scheduler
            // serve a second flit for a link whose stash is occupied,
            // overwriting the stashed flit and drifting `stash_count`
            // so the worker's exit gate never opens (§13.5).
            drop(_guard);
            st.own.release(&token);
            unpark_respecting_links(scheduler, flow, egress);
            return;
        }
        // ordering: SeqCst — flow + epoch must be visible before the
        // phase store publishes Quiescing to the thief.
        slot.flow.store(flow, Ordering::SeqCst);
        slot.claim_epoch.store(token.epoch as u64, Ordering::SeqCst);
        slot.store_phase(MigrationPhase::Quiescing);
        self.last_handoff_clock = now;
    }

    /// Thief @ Quiescing: park the victim at the new home and ack, so
    /// no new-epoch arrival can be served before the package lands.
    fn thief_quiescing(&mut self, st: &StealRuntime, scheduler: &mut Box<dyn Scheduler + Send>) {
        let slot = &st.slots[self.shard];
        if slot.thief() != Some(self.shard) {
            return;
        }
        // ordering: SeqCst — the ack is the donor's go signal, read
        // against the phase protocol.
        if slot.thief_ack.load(Ordering::SeqCst) {
            return;
        }
        let Some(flow) = slot.flow() else { return };
        // unpark: `unpark_respecting_links` in `thief_absorb` once the
        // package lands, or in `poll`'s Idle arm (the `thief_parked`
        // take) when a donor abort resets the slot first.
        let _ = scheduler.park_flow(flow);
        self.thief_parked = Some(flow);
        // ordering: SeqCst — the ack store, same total order as the
        // load above and the donor's fence read.
        slot.thief_ack.store(true, Ordering::SeqCst);
    }

    /// Donor @ Quiescing: wait for the thief's ack and — under buffered
    /// egress — the egress-retire fence (§13.5), then commit the phase:
    /// `Quiescing → Draining`. The map flip itself happens at the top
    /// of the Draining handler (§13.2: phase first, reroute second), so
    /// a donor resurrected mid-commit replays the flip idempotently.
    fn donor_fence(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        slot: &MigrationSlot,
        scheduler: &mut Box<dyn Scheduler + Send>,
        egress: Option<&BufferedStealCtx<'_>>,
    ) {
        // ordering: SeqCst — pairs with the thief's ack store.
        if !slot.thief_ack.load(Ordering::SeqCst) {
            return;
        }
        let (Some(flow), Some(token)) = (slot.flow(), slot.token()) else {
            return;
        };
        if let Some(ctx) = egress {
            // Egress-retire fence: snapshot our pushed count on first
            // entry, then wait until the flusher's pending-free
            // watermark passes it and no victim flit sits stashed.
            // ordering: SeqCst — donor-written cells, kept in the phase
            // protocol's order for the §13.6 resurrection handover.
            let snap = match slot.fence_target.load(Ordering::SeqCst) {
                UNSET => {
                    slot.fence_target.store(ctx.pushed, Ordering::SeqCst);
                    ctx.pushed
                }
                s => s,
            };
            if !ctx.flow_retired(flow, snap) {
                // ordering: SeqCst — donor-only tick counter.
                let ticks = slot.fence_ticks.fetch_add(1, Ordering::SeqCst) + 1;
                if ticks >= FENCE_BUDGET {
                    // Abort: the link is wedged. The map never flipped,
                    // so unwinding is local — release, unpark, reset.
                    // Release precedes the unpark so a victim left
                    // parked on a stashed link reads `Settled` when the
                    // unstick sweep finally reaches it (§13.5).
                    st.own.release(&token);
                    unpark_respecting_links(scheduler, flow, egress);
                    let _guard = lock_unpoisoned(&slot.package);
                    slot.reset_locked();
                    shared.stats[self.shard].steal_aborts.add(1);
                }
                return;
            }
        }
        let _guard = lock_unpoisoned(&slot.package);
        if slot.phase() == MigrationPhase::Quiescing {
            slot.store_phase(MigrationPhase::Draining);
        }
    }

    /// Donor @ Draining: flip the map if not yet flipped (the §13.2
    /// epoch CAS — the handoff's linearization point), wait out the
    /// victim's submit window, drain our ring past the flip point, then
    /// extract and publish the package.
    fn donor_drain(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        slot: &MigrationSlot,
        scheduler: &mut Box<dyn Scheduler + Send>,
        now: Cycle,
        egress: Option<&BufferedStealCtx<'_>>,
    ) {
        let (Some(flow), Some(thief), Some(token)) = (slot.flow(), slot.thief(), slot.token())
        else {
            return;
        };
        if st.own.map.epoch_of(flow) == token.epoch {
            // Flip not yet landed (first pass, or a resurrected donor
            // replaying a death between the phase commit and the CAS).
            if !st.own.try_reroute(&token, thief) {
                // Seized by a salvage at our epoch: the flow is no
                // longer ours to hand over. Unwind.
                st.own.release(&token); // no-op if seized, by CAS
                unpark_respecting_links(scheduler, flow, egress);
                let _guard = lock_unpoisoned(&slot.package);
                slot.reset_locked();
                shared.stats[self.shard].steal_aborts.add(1);
                return;
            }
        } else if st.own.shard_of(flow) != Some(thief) {
            // The epoch moved but not to the thief: a salvage seized
            // the claim and re-homed the flow. Nothing left to drain.
            unpark_respecting_links(scheduler, flow, egress);
            let _guard = lock_unpoisoned(&slot.package);
            slot.reset_locked();
            shared.stats[self.shard].steal_aborts.add(1);
            return;
        }
        // Submit-window wait (§13.3): any producer that read the map
        // before the flip is still inside its window; once clear, every
        // old-epoch push is in our ring.
        if !st.own.window_clear(flow) {
            return;
        }
        let ring = &shared.rings[self.shard];
        // ordering: SeqCst — donor-written cursor cell, kept in the
        // phase protocol's order for the §13.6 resurrection handover.
        let target = match slot.drain_target.load(Ordering::SeqCst) {
            UNSET => {
                let t = ring.enqueue_pos() as u64;
                slot.drain_target.store(t, Ordering::SeqCst);
                t
            }
            t => t,
        };
        // Wait until the intake loop has consumed past the flip point;
        // the worker's intake phase runs before this tick, so progress
        // is guaranteed while the ring holds pre-flip packets.
        if (ring.dequeue_pos().wrapping_sub(target as usize) as isize) < 0 {
            return;
        }
        let stats = &shared.stats[self.shard];
        let pkg = scheduler
            .extract_flow(flow)
            .unwrap_or_else(|| MigratedFlow {
                packets: VecDeque::new(),
                surplus: 0,
                resume: None,
            });
        stats.donated_out.add(1);
        stats.migrated_flits.add(pkg.flits());
        let mut guard = lock_unpoisoned(&slot.package);
        *guard = Some(pkg);
        self.last_handoff_clock = now;
        slot.store_phase(MigrationPhase::InTransit);
    }

    /// Thief @ InTransit: absorb the package, release the claim (the
    /// steal's last act, §13.1), reopen the slot.
    fn thief_absorb(
        &mut self,
        shared: &Shared,
        st: &StealRuntime,
        scheduler: &mut Box<dyn Scheduler + Send>,
        egress: Option<&BufferedStealCtx<'_>>,
    ) {
        let slot = &st.slots[self.shard];
        if slot.thief() != Some(self.shard) {
            return;
        }
        let Some(flow) = slot.flow() else { return };
        let token = slot.token();
        let Some(pkg) = lock_unpoisoned(&slot.package).take() else {
            return;
        };
        // unpark: `unpark_respecting_links` four lines down, after the
        // absorb — same tick, same thread.
        let _ = scheduler.park_flow(flow); // idempotent; parked at ack
        let absorbed = scheduler.absorb_flow(flow, pkg);
        debug_assert!(absorbed, "thief failed to absorb flow {flow}");
        self.thief_parked = None;
        unpark_respecting_links(scheduler, flow, egress);
        shared.stats[self.shard].stolen_in.add(1);
        if let Some(token) = token {
            st.own.release(&token);
        }
        self.cooldown = st.config.cooldown_polls;
        let _guard = lock_unpoisoned(&slot.package);
        slot.reset_locked();
    }
}

/// Unparks `flow` unless its egress link is credit-parked (buffered
/// mode, §13.5): the link's unstick sweep will release it with the
/// rest, preserving the one-stash-per-link invariant.
fn unpark_respecting_links(
    scheduler: &mut Box<dyn Scheduler + Send>,
    flow: usize,
    egress: Option<&BufferedStealCtx<'_>>,
) {
    let keep_parked = egress
        .map(|c| c.link_parked[c.links.route(flow)])
        .unwrap_or(false);
    if !keep_parked {
        // unpark: this *is* the authority — `unpark_respecting_links`
        // is the one place a mover may wake a flow, because only here
        // is the credit-park check guaranteed (§13.5).
        scheduler.unpark_flow(flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_board_orders_projected_finishes() {
        let b = LoadBoard::new(3);
        b.update(0, 100, 50);
        b.update(1, 100, 500);
        b.update(2, 100, 5);
        assert_eq!(b.load(1), 600);
        assert_eq!(b.backlog(2), 5);
        assert_eq!(b.richest_donor(0, 100), Some(1));
        assert_eq!(b.richest_donor(1, 1000), None, "threshold respected");
    }

    #[test]
    fn slot_claim_is_exclusive_until_reset() {
        let slot = MigrationSlot::new();
        assert!(slot.try_claim(2, 0));
        assert_eq!(slot.phase(), MigrationPhase::Requested);
        assert_eq!(slot.thief(), Some(2));
        assert_eq!(slot.donor(), Some(0));
        assert!(!slot.try_claim(1, 0), "slot held");
        assert!(slot.involves(2));
        assert!(slot.involves(0));
        assert!(!slot.involves(1));
        {
            let _g = lock_unpoisoned(&slot.package);
            slot.reset_locked();
        }
        assert_eq!(slot.phase(), MigrationPhase::Idle);
        assert!(!slot.involves(2));
        assert!(slot.try_claim(1, 0), "reset reopens the slot");
    }

    #[test]
    fn per_thief_slots_are_independent() {
        let own = Arc::new(Ownership::new(8, 4));
        let st = StealRuntime::new(own, 4, StealingConfig::default());
        assert_eq!(st.slots.len(), 4, "one slot per thief");
        assert!(st.slots[1].try_claim(1, 0));
        assert!(st.slots[2].try_claim(2, 0), "second thief, same donor");
        assert!(st.involves(0));
        assert!(st.involves(1));
        assert!(st.involves(2));
        assert!(!st.involves(3));
        assert!(!st.hot_handoff(1), "Requested is not a hot phase");
    }

    #[test]
    fn phase_roundtrip() {
        for p in [
            MigrationPhase::Idle,
            MigrationPhase::Requested,
            MigrationPhase::Quiescing,
            MigrationPhase::Draining,
            MigrationPhase::InTransit,
        ] {
            assert_eq!(MigrationPhase::from_u8(p as u8), p);
        }
    }
}
