//! The producer-facing side of the runtime: flow→shard partitioning and
//! the lock-free submit path.
//!
//! Flows are hash-partitioned across shards with a SplitMix64 finalizer,
//! so every packet of a flow lands on the same shard (preserving per-flow
//! FIFO through the shard's private scheduler) while distinct flows
//! spread evenly. The submit path is: admission check (one atomic RMW) →
//! ring push (one CAS) → stats bump. No locks, no allocation.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use err_sched::Packet;

use crate::admission::{AdmissionController, AdmitDecision};
use crate::channel::MpscRing;
use crate::gate::DrainGate;
use crate::stats::{RuntimeStats, ShardStats};

/// Why a submit did not accept a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The runtime is shutting down; no new packets are admitted.
    Closed,
    /// The flow is over its admission cap under the reject policy.
    Rejected,
    /// A [`submit_within`](RuntimeHandle::submit_within) deadline
    /// expired while waiting (backpressure or ring space); the packet
    /// never entered a ring and its admission charge, if any, was
    /// revoked (DESIGN.md §9.4).
    TimedOut,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "runtime is draining; admission closed"),
            SubmitError::Rejected => write!(f, "flow over admission cap"),
            SubmitError::TimedOut => write!(f, "submit deadline expired while waiting"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What happened to a submitted packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submitted {
    /// The packet entered its shard's ingress ring.
    Enqueued,
    /// The packet was dropped by drop-tail admission (and counted).
    Dropped,
}

/// SplitMix64 finalizer: maps flow ids to well-mixed u64s so consecutive
/// flow ids do not land on consecutive shards.
#[inline]
pub(crate) fn mix_flow(flow: usize) -> u64 {
    let mut z = (flow as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// State shared between producers and shard workers.
pub(crate) struct Shared {
    pub(crate) rings: Vec<MpscRing<Packet>>,
    pub(crate) stats: Vec<ShardStats>,
    pub(crate) admission: AdmissionController,
    /// The flow-ownership authority (DESIGN.md §13): routing map,
    /// submit windows, and per-flow claims. `Some` whenever any overlay
    /// (stealing or supervision) can move flows; both overlays share
    /// this one instance, which is what lets a steal race a salvage and
    /// resolve by epoch instead of by crate layering.
    pub(crate) own: Option<std::sync::Arc<crate::ownership::Ownership>>,
    /// Work-stealing state (`RuntimeConfig::stealing`); `None` keeps
    /// the static partition and a migration-free submit path.
    pub(crate) steal: Option<crate::migrate::StealRuntime>,
    /// Fault-tolerance state (`RuntimeConfig::supervision`); composes
    /// with `steal` when resurrection is on (DESIGN.md §13.6).
    pub(crate) fault: Option<crate::fault::FaultRuntime>,
    /// The shutdown gate: `closed` flag + in-flight submit counter as a
    /// Dekker-style pair, so workers never take their *final* look at
    /// the ingress rings while a producer that missed the close is
    /// mid-push. Extracted to [`crate::gate`] (and model-checked by
    /// err-check) in PR 5.
    pub(crate) gate: DrainGate,
    /// Forced-shutdown flag (DESIGN.md §9.4): workers stop serving and
    /// count their residual state lost.
    pub(crate) abort: AtomicBool,
}

impl Shared {
    /// The shard `flow` currently routes to: the ownership authority's
    /// mapping when any overlay is on (and the flow is inside the id
    /// space), else the static hash.
    #[inline]
    pub(crate) fn shard_of(&self, flow: usize) -> usize {
        if let Some(own) = &self.own {
            if let Some(shard) = own.shard_of(flow) {
                return shard;
            }
        }
        (mix_flow(flow) % self.rings.len() as u64) as usize
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.gate.is_closed()
    }

    /// Whether a worker is allowed to exit once its own ring and
    /// scheduler are empty; see [`DrainGate::can_finish`].
    pub(crate) fn can_finish(&self) -> bool {
        self.gate.can_finish()
    }
}

/// Cloneable producer handle: submit packets from any thread.
#[derive(Clone)]
pub struct RuntimeHandle {
    pub(crate) shared: Arc<Shared>,
}

impl RuntimeHandle {
    /// Submits one packet, applying admission control and routing it to
    /// its flow's shard.
    ///
    /// * `Ok(Submitted::Enqueued)` — accepted, will be served.
    /// * `Ok(Submitted::Dropped)` — counted drop (drop-tail policy).
    /// * `Err(SubmitError::Rejected)` — over cap (reject policy).
    /// * `Err(SubmitError::Closed)` — the runtime is draining.
    ///
    /// Under the backpressure policy (and for ingress-ring space under
    /// every policy) the call spins/yields until there is room, so it
    /// may block the producer — that is the point of backpressure.
    pub fn submit(&self, pkt: Packet) -> Result<Submitted, SubmitError> {
        self.submit_inner(pkt, None)
    }

    /// Like [`submit`](Self::submit), but any wait — the backpressure
    /// spin or a full ingress ring — gives up when `timeout` elapses,
    /// returning [`SubmitError::TimedOut`] with the packet's admission
    /// charge revoked and the attempt counted in `timedout_packets`
    /// (DESIGN.md §9.4). A zero timeout makes the call non-blocking.
    pub fn submit_within(
        &self,
        pkt: Packet,
        timeout: std::time::Duration,
    ) -> Result<Submitted, SubmitError> {
        self.submit_inner(pkt, Some(std::time::Instant::now() + timeout))
    }

    fn submit_inner(
        &self,
        pkt: Packet,
        deadline: Option<std::time::Instant>,
    ) -> Result<Submitted, SubmitError> {
        let shared = &*self.shared;
        // Announce the in-flight submit *before* the closed check (the
        // Dekker pairing inside `DrainGate::enter`): once a worker has
        // seen `closed && in_flight == 0`, any producer arriving here
        // must observe the closed gate and bail without touching a
        // ring. The permit is held across every exit path below.
        let Some(_permit) = shared.gate.enter() else {
            return Err(SubmitError::Closed);
        };
        // Admission first, *outside* the migration window below: the
        // backpressure wait can last until flits are served, and the
        // flow being admitted may be parked mid-migration — holding the
        // window through that wait would deadlock the donor's drain.
        // Drop/reject attribution uses the flow's current home (racy
        // read; counters only).
        let stats = &shared.stats[shared.shard_of(pkt.flow)];
        loop {
            match shared.admission.try_admit(pkt.flow, pkt.len) {
                AdmitDecision::Admit => break,
                AdmitDecision::Drop => {
                    stats.dropped_packets.add(1);
                    stats.dropped_flits.add(pkt.len as u64);
                    return Ok(Submitted::Dropped);
                }
                AdmitDecision::Reject => {
                    stats.rejected_packets.add(1);
                    return Err(SubmitError::Rejected);
                }
                AdmitDecision::Wait => {
                    if shared.is_closed() {
                        return Err(SubmitError::Closed);
                    }
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            stats.timedout_packets.add(1);
                            return Err(SubmitError::TimedOut);
                        }
                    }
                    std::thread::yield_now();
                }
                // `try_admit` never produces this verdict; the submit
                // layer reclassifies an over-deadline `Wait` itself.
                AdmitDecision::TimedOut => unreachable!("admission does not track deadlines"),
            }
        }
        // Route-and-push, bracketed by the per-flow submit window when
        // the ownership authority is on (DESIGN.md §13.3): window += 1
        // → read FlowMap → push → window −= 1 (via the guard's Drop, on
        // every exit path). The SeqCst pairing with the map flip and
        // window check guarantees a mover's drain target covers every
        // old-epoch push. The outer loop re-routes when the target
        // shard turns out to be dead (§9.2): drop the window, re-read
        // the map — a salvage is flipping it, or (under resurrection,
        // §13.6) the same shard is about to come back and drain.
        'route: loop {
            let _window = shared.own.as_ref().and_then(|o| o.window_enter(pkt.flow));
            let shard = shared.shard_of(pkt.flow);
            let stats = &shared.stats[shard];
            // Ring push: one CAS. Full ring means the shard is behind;
            // wait for space (drop-tail drops instead, shedding at the
            // ring too).
            let ring = &shared.rings[shard];
            loop {
                match ring.push(pkt) {
                    Ok(()) => {
                        stats.enqueued_packets.add(1);
                        stats.enqueued_flits.add(pkt.len as u64);
                        return Ok(Submitted::Enqueued);
                    }
                    Err(crate::channel::RingFull) => {
                        if matches!(
                            shared.admission.policy(),
                            crate::admission::AdmissionPolicy::DropTail { .. }
                        ) {
                            shared.admission.revoke(pkt.flow, pkt.len);
                            stats.dropped_packets.add(1);
                            stats.dropped_flits.add(pkt.len as u64);
                            return Ok(Submitted::Dropped);
                        }
                        if shared.is_closed() {
                            shared.admission.revoke(pkt.flow, pkt.len);
                            return Err(SubmitError::Closed);
                        }
                        if let Some(fr) = shared.fault.as_ref() {
                            if fr.board.health(shard) == crate::fault::ShardHealth::Dead {
                                continue 'route;
                            }
                        }
                        if let Some(d) = deadline {
                            if std::time::Instant::now() >= d {
                                shared.admission.revoke(pkt.flow, pkt.len);
                                stats.timedout_packets.add(1);
                                return Err(SubmitError::TimedOut);
                            }
                        }
                        // `Packet` is `Copy`; retry with the same value.
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// A live statistics snapshot (merged across shards).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats::collect(&self.shared.stats)
    }

    /// Total flits served across all shards so far — the runtime's
    /// **service clock**: a monotone flit-time that advances only
    /// while workers serve, cheap enough to read per packet-hop
    /// (no snapshot allocation, `Relaxed` counter loads only).
    pub fn served_flits(&self) -> u64 {
        self.shared.stats.iter().map(|s| s.served_flits.get()).sum()
    }

    /// Whether `shutdown()` has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.is_closed()
    }

    /// The shard a flow maps to. Stable for the runtime's lifetime
    /// under the static partition; with stealing enabled
    /// (`RuntimeConfig::stealing`) this is a point-in-time read of the
    /// migration overlay and may change between calls.
    pub fn shard_of(&self, flow: usize) -> usize {
        self.shared.shard_of(flow)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shared.rings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::mix_flow;

    #[test]
    fn flow_mixing_spreads_consecutive_flows() {
        // 64 consecutive flow ids over 4 shards: every shard must get a
        // reasonable share (the uniform-workload scaling property
        // depends on this).
        let mut counts = [0usize; 4];
        for flow in 0..64 {
            counts[(mix_flow(flow) % 4) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (8..=24).contains(&c),
                "shard {shard} got {c}/64 flows — partitioning is badly skewed"
            );
        }
    }

    #[test]
    fn mixing_is_deterministic() {
        for f in 0..100 {
            assert_eq!(mix_flow(f), mix_flow(f));
        }
    }
}
