//! The shard worker: a private scheduler driven in batched service loops.
//!
//! Each shard owns one discipline instance (usually ERR) and never shares
//! it — there is no lock around scheduling state, which is what keeps the
//! per-flit decision O(1) end to end. The loop alternates between two
//! batched phases:
//!
//! 1. **Intake** — drain up to `batch_packets` arrivals from the ingress
//!    ring into the scheduler's per-flow queues;
//! 2. **Service** — serve up to `batch_flits` flits, advancing the
//!    shard's flit clock by one cycle per flit (the paper's model: the
//!    egress link carries one flit per cycle).
//!
//! Batching amortizes ring traffic and stats updates over many flits
//! without changing the discipline's decisions: ERR is defined per
//! visit/round, and `service_batch` replays exactly the per-flit
//! sequence the single-stepped scheduler would produce.
//!
//! When there is nothing to do the worker spins briefly, then parks with
//! a timeout; producers never need to wake it explicitly (no lost-wakeup
//! protocol to get wrong), at the cost of at most `PARK_TIMEOUT` of
//! added latency on an idle→busy transition.

use std::sync::Arc;
use std::time::Duration;

use desim::Cycle;
use err_sched::{Packet, Scheduler, ServedFlit};

use crate::ingress::Shared;

/// Spins this many empty loops before parking.
const SPIN_BEFORE_PARK: u32 = 64;
/// Idle park duration; bounds wake-up latency after an idle period.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// Per-shard configuration handed to the worker thread.
pub(crate) struct ShardConfig {
    pub(crate) shard: usize,
    pub(crate) batch_packets: usize,
    pub(crate) batch_flits: usize,
}

/// Sink for served flits (per shard, owned by the worker thread).
pub type EgressSink = Box<dyn FnMut(usize, &ServedFlit) + Send>;

/// Runs one shard to completion: serves until `shutdown()` has been
/// called *and* the ring plus the scheduler are fully drained. Returns
/// the shard's final flit clock.
pub(crate) fn run_shard(
    shared: Arc<Shared>,
    cfg: ShardConfig,
    mut scheduler: Box<dyn Scheduler + Send>,
    mut egress: Option<EgressSink>,
) -> Cycle {
    let ring = &shared.rings[cfg.shard];
    let stats = &shared.stats[cfg.shard];
    let mut arrivals: Vec<Packet> = Vec::with_capacity(cfg.batch_packets);
    let mut served: Vec<ServedFlit> = Vec::with_capacity(cfg.batch_flits);
    let mut now: Cycle = 0;
    let mut idle_spins: u32 = 0;

    loop {
        // Intake phase.
        arrivals.clear();
        let pulled = ring.pop_batch(&mut arrivals, cfg.batch_packets);
        for pkt in arrivals.drain(..) {
            scheduler.enqueue(pkt, now);
        }

        // Service phase: one flit per cycle of the shard's flit clock.
        served.clear();
        let n = scheduler.service_batch(now, cfg.batch_flits, &mut served);
        now += n as u64;
        if n > 0 {
            let mut tail_count = 0u64;
            for flit in &served {
                if flit.is_tail() {
                    tail_count += 1;
                    shared.admission.on_packet_served(flit.flow, flit.len);
                }
                if let Some(sink) = egress.as_mut() {
                    sink(cfg.shard, flit);
                }
            }
            stats.served_flits.add(n as u64);
            stats.served_packets.add(tail_count);
        }
        stats.backlog_flits.set(scheduler.backlog_flits());

        if pulled == 0 && n == 0 {
            // Nothing moved. Exit only when shutdown has been requested,
            // no producer is still inside `submit` (see
            // `Shared::can_finish` — a mid-submit producer could still
            // push), and everything this shard owns is drained. The ring
            // check must come after `can_finish`: once that returns
            // true no further push can happen, so empty is stable.
            if shared.can_finish() && ring.is_empty() && scheduler.is_idle() {
                break;
            }
            idle_spins += 1;
            if idle_spins < SPIN_BEFORE_PARK {
                std::hint::spin_loop();
            } else {
                stats.parks.add(1);
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        } else {
            idle_spins = 0;
            stats.busy_loops.add(1);
        }
    }
    stats.backlog_flits.set(0);
    now
}
