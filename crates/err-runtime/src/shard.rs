//! The shard worker: a private scheduler driven in batched service loops.
//!
//! Each shard owns one discipline instance (usually ERR) and never shares
//! it — there is no lock around scheduling state, which is what keeps the
//! per-flit decision O(1) end to end. The loop alternates between two
//! batched phases:
//!
//! 1. **Intake** — drain up to `batch_packets` arrivals from the ingress
//!    ring into the scheduler's per-flow queues;
//! 2. **Service** — serve up to `batch_flits` flits, advancing the
//!    shard's flit clock by one cycle per flit (the paper's model: the
//!    egress link carries one flit per cycle).
//!
//! Batching amortizes ring traffic and stats updates over many flits
//! without changing the discipline's decisions: ERR is defined per
//! visit/round, and `service_batch` replays exactly the per-flit
//! sequence the single-stepped scheduler would produce.
//!
//! Two egress couplings exist:
//!
//! * `run_shard` — **sync**: every served flit passes through the
//!   caller's sink inline, on the worker thread. Simple, but a slow
//!   sink stalls the shard's whole flit clock.
//! * `run_shard_buffered` — **buffered**: served flits are committed
//!   to a per-shard SPSC ring under per-link credit flow control
//!   (`err-egress`); a flusher thread delivers them. A credit-starved
//!   link *parks* its flows in the scheduler (when the discipline
//!   supports it), so the shard keeps serving everyone else — the
//!   decoupling the paper's stalled-downstream argument calls for.
//!
//! Both loops run inside a `catch_unwind` fence with the scheduler (and
//! under buffered egress, the `BufferedWorkerState`) owned *outside*
//! the closure (DESIGN.md §9.2): a panic unwinds out of the loop, the
//! fence catches it, and the epilogue picks one of three paths:
//!
//! * **resurrection** (supervision with
//!   [`SupervisionConfig::resurrection`](crate::SupervisionConfig), §13.6)
//!   — the intact scheduler, migration driver, and egress state are
//!   posted as a `Bequest`; the supervisor spawns a successor worker
//!   that adopts them, and the flow map never moves;
//! * **salvage** (supervision without resurrection) — the salvage path
//!   re-homes the dead shard's flows, on this same thread, with the
//!   scheduler state still owned here;
//! * **re-throw** (no supervision) — the join observes the panic and
//!   shutdown reports it as [`ShardExit::Panicked`](crate::ShardExit).
//!
//! When there is nothing to do the worker spins briefly, then parks with
//! a timeout; producers never need to wake it explicitly (no lost-wakeup
//! protocol to get wrong), at the cost of at most `PARK_TIMEOUT` of
//! added latency on an idle→busy transition.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use desim::Cycle;
use err_egress::{Egress, FlushProgress, LinkSet, Producer, ShardEgressStats};
use err_sched::{Packet, Scheduler, ServedFlit};

use crate::fault::{abort_residuals, fault_tick, salvage_shard, try_exit, Bequest, BequestEgress};
use crate::ingress::Shared;
use crate::migrate::{BufferedStealCtx, MigrationDriver};
use crate::ownership::OwnerState;

/// Spins this many empty loops before parking.
const SPIN_BEFORE_PARK: u32 = 64;
/// Idle park duration; bounds wake-up latency after an idle period.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// Per-shard configuration handed to the worker thread.
pub(crate) struct ShardConfig {
    pub(crate) shard: usize,
    pub(crate) batch_packets: usize,
    pub(crate) batch_flits: usize,
    /// Flow-id space, needed by the buffered worker to sweep a link's
    /// flows on park/unpark and by forced-abort residue accounting.
    pub(crate) n_flows: usize,
}

/// The buffered worker's link-local state, owned *outside* the panic
/// fence so it can travel in a [`Bequest`] (§13.6): the stash holds
/// served flits that already passed accounting, so dropping it on a
/// panic would un-conserve them; the `pushed` count is the numerator of
/// the §13.5 egress-retire fence and must survive the worker that
/// advanced it.
pub(crate) struct BufferedWorkerState {
    /// At most one served-but-uncommitted flit per link.
    pub(crate) stash: Vec<Option<ServedFlit>>,
    pub(crate) stash_count: usize,
    pub(crate) link_parked: Vec<bool>,
    /// Flows pre-parked on behalf of a pending salvage (§9.2); the
    /// unstick sweep must not release them before their package lands.
    pub(crate) salvage_parked: Vec<bool>,
    /// Cumulative flits this shard has committed to its egress ring —
    /// compared against the flusher's [`FlushProgress`] cursor by the
    /// donor-side retire fence (§13.5).
    pub(crate) pushed: u64,
}

impl BufferedWorkerState {
    pub(crate) fn new(n_links: usize, salvage_flows: usize) -> Self {
        Self {
            stash: vec![None; n_links],
            stash_count: 0,
            link_parked: vec![false; n_links],
            salvage_parked: vec![false; salvage_flows],
            pushed: 0,
        }
    }
}

/// Whether a caught panic should become a [`Bequest`] (§13.6) instead
/// of a salvage or a re-throw.
fn resurrection_on(shared: &Shared) -> bool {
    shared
        .fault
        .as_ref()
        .is_some_and(|fr| fr.config.resurrection)
}

/// The non-resurrection panic epilogue: salvage under supervision (on
/// this same thread, so the scheduler state is still owned here),
/// re-throw without it.
fn salvage_or_rethrow(
    shared: &Shared,
    cfg: &ShardConfig,
    scheduler: &mut Box<dyn Scheduler + Send>,
    payload: Box<dyn std::any::Any + Send>,
    now: Cycle,
) -> Cycle {
    if shared.fault.is_some() {
        // A panic *inside* salvage (double fault) abandons
        // conservation for this shard — documented in DESIGN.md
        // §9.2; the fence keeps the worker from aborting the
        // process under panic=unwind.
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            salvage_shard(shared, cfg.shard, scheduler);
        }));
        now
    } else {
        panic::resume_unwind(payload)
    }
}

/// Runs one shard to completion with **synchronous** egress: serves
/// until `shutdown()` has been called *and* the ring plus the scheduler
/// are fully drained. Returns the shard's final flit clock.
///
/// `driver` and `start` come from the spawner: fresh for a first-
/// generation worker, inherited from a [`Bequest`] for a successor
/// (§13.6) — the clock continues, it never rewinds.
pub(crate) fn run_shard<E: Egress + 'static>(
    shared: Arc<Shared>,
    cfg: ShardConfig,
    mut scheduler: Box<dyn Scheduler + Send>,
    mut egress: Option<E>,
    mut driver: Option<MigrationDriver>,
    start: Cycle,
) -> Cycle {
    let mut now: Cycle = start;
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        run_sync_loop(
            &shared,
            &cfg,
            &mut scheduler,
            &mut egress,
            &mut driver,
            &mut now,
        )
    }));
    match result {
        Ok(()) => now,
        Err(payload) => {
            if resurrection_on(&shared) {
                let fr = shared
                    .fault
                    .as_ref()
                    .expect("resurrection_on checked fault");
                fr.bequeath(
                    cfg.shard,
                    Bequest {
                        scheduler,
                        driver,
                        now,
                        egress: BequestEgress::Sync(Box::new(egress)),
                    },
                );
                now
            } else {
                salvage_or_rethrow(&shared, &cfg, &mut scheduler, payload, now)
            }
        }
    }
}

fn run_sync_loop<E: Egress>(
    shared: &Shared,
    cfg: &ShardConfig,
    scheduler: &mut Box<dyn Scheduler + Send>,
    egress: &mut Option<E>,
    driver: &mut Option<MigrationDriver>,
    now: &mut Cycle,
) {
    let ring = &shared.rings[cfg.shard];
    let stats = &shared.stats[cfg.shard];
    let mut arrivals: Vec<Packet> = Vec::with_capacity(cfg.batch_packets);
    let mut served: Vec<ServedFlit> = Vec::with_capacity(cfg.batch_flits);
    let mut idle_spins: u32 = 0;

    loop {
        // Fault phase (DESIGN.md §9): forced-shutdown abort, heartbeat,
        // salvage inbox, quarantine, injected events. KillLink events
        // are meaningless under sync egress (`None`).
        // ordering: Acquire pairs with the Release `abort` store in
        // `Runtime::drain_within` (forced-shutdown latch).
        if shared.abort.load(Ordering::Acquire) {
            abort_residuals(shared, cfg.shard, cfg.n_flows, scheduler);
            return;
        }
        fault_tick(shared, cfg.shard, scheduler, *now, None);

        // Intake phase.
        arrivals.clear();
        let pulled = ring.pop_batch(&mut arrivals, cfg.batch_packets);
        for pkt in arrivals.drain(..) {
            scheduler.enqueue(pkt, *now);
        }
        // LoadBoard input, sampled here rather than at the tick below:
        // a shard that drains each intake batch within its own loop
        // would otherwise always report an empty queue — the backlog
        // it is absorbing lives in flight between producer and service
        // phase, never at a post-service instant (DESIGN.md §8.1).
        let pre_backlog = scheduler.backlog_flits() + ring.len() as u64;

        // Service phase: one flit per cycle of the shard's flit clock.
        served.clear();
        let n = scheduler.service_batch(*now, cfg.batch_flits, &mut served);
        *now += n as u64;
        if n > 0 {
            let mut tail_count = 0u64;
            for flit in &served {
                if flit.is_tail() {
                    tail_count += 1;
                    shared.admission.on_packet_served(flit.flow, flit.len);
                }
                if let Some(sink) = egress.as_mut() {
                    sink.emit(cfg.shard, flit);
                }
            }
            stats.served_flits.add(n as u64);
            stats.served_packets.add(tail_count);
        }
        stats.backlog_flits.set(scheduler.backlog_flits());

        // Migration phase: advance whatever roles (thief/donor) this
        // shard plays across the per-thief slots, and evaluate the
        // stealing policy at poll boundaries (DESIGN.md §8, §13.4).
        // Ticked after intake so the ring's dequeue cursor only covers
        // packets already enqueued into the scheduler.
        let mut hot_handoff = false;
        let mut migrating = false;
        if let Some(d) = driver.as_mut() {
            d.tick(
                shared,
                scheduler,
                pulled == 0 && n == 0,
                *now,
                pre_backlog,
                None,
            );
            if let Some(st) = shared.steal.as_ref() {
                migrating = st.involves(cfg.shard);
                // Requested can stay pending behind the donor's
                // serve-chunk guard (§8.5) — a thief spinning hot
                // through that would only steal CPU from the very
                // shard it is waiting on. Spin hot from Quiescing on,
                // where the peer needs our next protocol step fast.
                hot_handoff = st.hot_handoff(cfg.shard);
            }
        }

        if pulled == 0 && n == 0 {
            // Nothing moved. Exit only when shutdown has been requested,
            // no producer is still inside `submit` (see
            // `Shared::can_finish` — a mid-submit producer could still
            // push), everything this shard owns is drained, no migration
            // in flight names this shard (DESIGN.md §8.6 — a mid-handoff
            // exit would strand the victim's packets), *and* — under
            // supervision — the Exited transition wins the salvage lock
            // with an empty inbox (§9.2). The ring check must come after
            // `can_finish`: once that returns true no further push can
            // happen, so empty is stable.
            if !migrating
                && shared.can_finish()
                && ring.is_empty()
                && scheduler.is_idle()
                && try_exit(shared, cfg.shard)
            {
                break;
            }
            idle_spins += 1;
            if hot_handoff {
                // Stay hot: the peer worker is waiting on our next
                // protocol step; a timed park would add up to
                // PARK_TIMEOUT to every transition.
                std::hint::spin_loop();
            } else if idle_spins < SPIN_BEFORE_PARK {
                std::hint::spin_loop();
            } else {
                stats.parks.add(1);
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        } else {
            idle_spins = 0;
            stats.busy_loops.add(1);
        }
    }
    stats.backlog_flits.set(0);
}

/// Commits `flit` to the output ring, spinning while it is full. Bounded
/// wait: the flusher always makes progress (a blocked link's flits move
/// to its bounded pending queue), so ring slots keep freeing up.
fn push_ring(tx: &mut Producer<ServedFlit>, estats: &ShardEgressStats, flit: ServedFlit) {
    let mut item = flit;
    let mut first = true;
    loop {
        match tx.push(item) {
            Ok(()) => break,
            Err(back) => {
                item = back;
                if first {
                    estats.ring_full_spins.fetch_add(1, Ordering::Relaxed);
                    first = false;
                }
                std::hint::spin_loop();
            }
        }
    }
    estats.note_ring_occupancy(tx.occupancy() as u64);
}

/// Runs one shard to completion with **buffered** egress.
///
/// Flit-by-flit service with per-link credit flow control:
///
/// * a credit is acquired *before* a flit is committed to the ring, so
///   the flits buffered anywhere for one link never exceed the credit
///   pool (plus the single stashed flit below);
/// * on credit exhaustion the already-served flit is stashed (at most
///   one per link — parked flows produce no more) and every flow of
///   that link is parked in the scheduler, which keeps serving the
///   other links' flows at full rate;
/// * each loop, stashed flits retry; success unparks the link's flows.
///
/// Disciplines without parking support fall back to blocking on the
/// exhausted pool — the legacy coupling, kept because skipping without
/// scheduler cooperation would either reorder flows or buffer
/// unboundedly.
///
/// `state`, `driver`, and `start` come from the spawner: fresh for a
/// first-generation worker, inherited from a [`Bequest`] for a
/// successor (§13.6).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shard_buffered(
    shared: Arc<Shared>,
    cfg: ShardConfig,
    mut scheduler: Box<dyn Scheduler + Send>,
    mut tx: Producer<ServedFlit>,
    links: Arc<LinkSet>,
    estats: Arc<ShardEgressStats>,
    progress: Arc<FlushProgress>,
    mut state: BufferedWorkerState,
    mut driver: Option<MigrationDriver>,
    start: Cycle,
) -> Cycle {
    let mut now: Cycle = start;
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        run_buffered_loop(
            &shared,
            &cfg,
            &mut scheduler,
            &mut tx,
            &links,
            &estats,
            &progress,
            &mut state,
            &mut driver,
            &mut now,
        )
    }));
    match result {
        Ok(()) => now,
        Err(payload) => {
            if resurrection_on(&shared) {
                let fr = shared
                    .fault
                    .as_ref()
                    .expect("resurrection_on checked fault");
                fr.bequeath(
                    cfg.shard,
                    Bequest {
                        scheduler,
                        driver,
                        now,
                        egress: BequestEgress::Buffered { tx, state },
                    },
                );
                now
            } else {
                salvage_or_rethrow(&shared, &cfg, &mut scheduler, payload, now)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_buffered_loop(
    shared: &Shared,
    cfg: &ShardConfig,
    scheduler: &mut Box<dyn Scheduler + Send>,
    tx: &mut Producer<ServedFlit>,
    links: &Arc<LinkSet>,
    estats: &ShardEgressStats,
    progress: &FlushProgress,
    st: &mut BufferedWorkerState,
    driver: &mut Option<MigrationDriver>,
    now: &mut Cycle,
) {
    let ring = &shared.rings[cfg.shard];
    let stats = &shared.stats[cfg.shard];
    let n_links = links.n_links();
    let parking = scheduler.supports_parking();
    let mut arrivals: Vec<Packet> = Vec::with_capacity(cfg.batch_packets);
    let mut idle_spins: u32 = 0;
    // Exit-gate forensics, paired with the drain-side dump in
    // `Runtime::drain_within` (same `ERR_DRAIN_DEBUG` switch): a worker
    // that idles without exiting names the predicate holding it.
    let debug_exit = std::env::var_os("ERR_DRAIN_DEBUG").is_some();
    let mut debug_parks: u64 = 0;

    loop {
        // Fault phase (DESIGN.md §9). On forced abort the stash is
        // discarded, not counted lost: its flits were already counted
        // served, and they hold no credits (flits are stashed exactly
        // when the acquire failed).
        // ordering: Acquire pairs with the Release `abort` store in
        // `Runtime::drain_within` (forced-shutdown latch).
        if shared.abort.load(Ordering::Acquire) {
            abort_residuals(shared, cfg.shard, cfg.n_flows, scheduler);
            return;
        }
        fault_tick(
            shared,
            cfg.shard,
            scheduler,
            *now,
            Some(crate::fault::BufferedFaultCtx {
                links,
                link_parked: &st.link_parked,
                salvage_parked: &mut st.salvage_parked,
            }),
        );

        // Unstick phase: links whose credits returned get their stashed
        // flit committed and their flows unparked (except flows a
        // pending salvage pre-parked — their package has not landed).
        if st.stash_count > 0 {
            for link in 0..n_links {
                if st.stash[link].is_some() && links.try_acquire(link) {
                    let flit = st.stash[link].take().expect("stash checked non-empty");
                    st.stash_count -= 1;
                    push_ring(tx, estats, flit);
                    st.pushed += 1;
                    if st.link_parked[link] {
                        st.link_parked[link] = false;
                        // Sweep by routing fn, not modulo stride: a
                        // fabric route table (§11.1) maps arbitrary
                        // flow sets onto a link. Flows a pending
                        // salvage pre-parked stay parked (their package
                        // has not landed), and so does a flow under an
                        // active ownership claim (§13.1): a quiesced
                        // steal victim unparked here would be served
                        // past the §13.5 retire fence. Its mover unparks
                        // it when the claim resolves — or, if the claim
                        // aborted while the link was stashed, the next
                        // sweep sees it `Settled` and releases it.
                        for flow in 0..cfg.n_flows {
                            if links.route(flow) == link
                                && !st.salvage_parked.get(flow).copied().unwrap_or(false)
                                && shared.steal.as_ref().is_none_or(|sr| {
                                    sr.own.owner_state(flow) == OwnerState::Settled
                                })
                            {
                                // unpark: the sweep `unpark_respecting_links`
                                // defers to for credit-parked links —
                                // the authority itself — and the
                                // `salvage_parked` / `owner_state`
                                // guards above keep claimed flows
                                // parked (§13.5).
                                scheduler.unpark_flow(flow);
                            }
                        }
                    }
                }
            }
        }

        // Intake phase.
        arrivals.clear();
        let pulled = ring.pop_batch(&mut arrivals, cfg.batch_packets);
        for pkt in arrivals.drain(..) {
            scheduler.enqueue(pkt, *now);
        }
        // LoadBoard input (same sampling argument as the sync loop).
        let pre_backlog = scheduler.backlog_flits() + ring.len() as u64;

        // Service phase, flit by flit: the credit check must sit
        // between serving a flit and serving the next, or a stalled
        // link could strand a whole batch of already-served flits.
        let mut n = 0u64;
        let mut tail_count = 0u64;
        while (n as usize) < cfg.batch_flits {
            let Some(flit) = scheduler.service_flit(*now + n) else {
                break;
            };
            n += 1;
            if flit.is_tail() {
                tail_count += 1;
                shared.admission.on_packet_served(flit.flow, flit.len);
            }
            let link = links.route(flit.flow);
            if links.try_acquire(link) {
                push_ring(tx, estats, flit);
                st.pushed += 1;
            } else {
                estats.credit_exhaustions.fetch_add(1, Ordering::Relaxed);
                if parking {
                    debug_assert!(st.stash[link].is_none(), "second stash for link {link}");
                    st.stash[link] = Some(flit);
                    st.stash_count += 1;
                    st.link_parked[link] = true;
                    for flow in 0..cfg.n_flows {
                        if links.route(flow) == link {
                            // unpark: the `link_parked` unstick sweep
                            // at the top of the loop, when a credit
                            // frees the link's stash.
                            let _ = scheduler.park_flow(flow);
                        }
                    }
                } else {
                    // Blocking fallback: couples the shard's clock to
                    // the slow link until a credit frees. A forced
                    // abort releases the wait (the flit is discarded —
                    // it was served; delivery is what the abort cuts).
                    loop {
                        if links.try_acquire(link) {
                            push_ring(tx, estats, flit);
                            st.pushed += 1;
                            break;
                        }
                        // ordering: Acquire pairs with the Release
                        // `abort` store in `Runtime::drain_within` —
                        // the only exit from this credit-wait spin
                        // besides the credit itself.
                        if shared.abort.load(Ordering::Acquire) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        *now += n;
        if n > 0 {
            stats.served_flits.add(n);
            stats.served_packets.add(tail_count);
        }
        stats.backlog_flits.set(scheduler.backlog_flits());

        // Migration phase (§13.5): same placement as the sync loop; the
        // context lends the donor-side retire fence this worker's
        // pushed count, stash, and its flusher's progress cursor.
        let mut hot_handoff = false;
        let mut migrating = false;
        if let Some(d) = driver.as_mut() {
            let ctx = BufferedStealCtx {
                links,
                link_parked: &st.link_parked,
                pushed: st.pushed,
                progress,
                stash: &st.stash,
            };
            d.tick(
                shared,
                scheduler,
                pulled == 0 && n == 0,
                *now,
                pre_backlog,
                Some(&ctx),
            );
            if let Some(sr) = shared.steal.as_ref() {
                migrating = sr.involves(cfg.shard);
                hot_handoff = sr.hot_handoff(cfg.shard);
            }
        }

        if pulled == 0 && n == 0 {
            // Same exit protocol as the sync worker, plus: no flit may
            // sit in a stash. Parked flows keep `is_idle()` false, so a
            // stalled link holds the worker here until drain mode
            // releases the credits (see `Runtime::drain` ordering).
            if st.stash_count == 0
                && !migrating
                && shared.can_finish()
                && ring.is_empty()
                && scheduler.is_idle()
                && try_exit(shared, cfg.shard)
            {
                break;
            }
            idle_spins += 1;
            // A hot handoff must keep spinning past SPIN_BEFORE_PARK: a
            // parked donor mid-quiesce would stall the thief's fence.
            if hot_handoff || idle_spins < SPIN_BEFORE_PARK {
                std::hint::spin_loop();
            } else {
                stats.parks.add(1);
                debug_parks += 1;
                if debug_exit && debug_parks.is_multiple_of(100_000) {
                    eprintln!(
                        "[exit-debug] shard {} stash_count={} migrating={} \
                         can_finish={} ring_empty={} sched_idle={}",
                        cfg.shard,
                        st.stash_count,
                        migrating,
                        shared.can_finish(),
                        ring.is_empty(),
                        scheduler.is_idle(),
                    );
                }
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        } else {
            idle_spins = 0;
            stats.busy_loops.add(1);
        }
    }
    stats.backlog_flits.set(0);
}
