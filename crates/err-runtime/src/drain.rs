//! Graceful-drain semantics and the final accounting report.
//!
//! The drain protocol has three steps, in this order:
//!
//! 1. **Close admission** — `closed` is set with release ordering;
//!    every subsequent [`submit`](crate::RuntimeHandle::submit) fails
//!    with [`SubmitError::Closed`](crate::SubmitError), and producers
//!    blocked in backpressure observe the flag and bail out.
//! 2. **Drain** — each shard keeps serving until its ingress ring is
//!    empty *and* its scheduler is idle. Because no new packets can be
//!    admitted after step 1, this condition is stable once reached.
//! 3. **Join** — worker threads exit their loops and are joined in
//!    shard order, making shutdown deterministic (no detached threads,
//!    no abandoned packets).
//!
//! Under a deadline ([`shutdown_within`](crate::Runtime::shutdown_within),
//! DESIGN.md §9.4) the drain escalates instead of waiting forever:
//! graceful drain → forced abort (workers count their residuals lost) →
//! abandon (a wedged worker is left behind, recorded as
//! [`ShardExit::Abandoned`]). Worker panics are *reported*, never
//! re-thrown out of shutdown.
//!
//! The resulting [`DrainReport`] carries the conservation invariant the
//! integration tests assert: every submitted packet is accounted as
//! served, dropped, rejected, timed out, or (under faults) lost —
//! nothing leaks silently.

use crate::stats::RuntimeStats;

/// How one worker (shard or flusher) thread left the runtime
/// (DESIGN.md §9.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardExit {
    /// Drained and returned normally.
    Clean,
    /// The thread panicked; under supervision its state was salvaged or
    /// counted lost, without supervision its backlog is unaccounted.
    Panicked,
    /// The thread missed the shutdown deadline and was left running
    /// (detached); its cycles report as 0 and conservation may not
    /// balance.
    Abandoned,
}

/// Final accounting returned by [`Runtime::shutdown`](crate::Runtime::shutdown).
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Statistics at the instant every worker had exited.
    pub stats: RuntimeStats,
    /// Final flit-clock value of each shard (cycles of service);
    /// 0 for panicked or abandoned workers.
    pub shard_cycles: Vec<u64>,
    /// Per-shard worker exit status.
    pub exits: Vec<ShardExit>,
    /// Per-shard flusher exit status (empty under sync egress).
    pub flusher_exits: Vec<ShardExit>,
    /// Whether the shutdown deadline forced an abort: residual packets
    /// were counted lost rather than served (DESIGN.md §9.4). For
    /// non-migratable disciplines a forced abort can only account an
    /// aggregate flit count, so `is_conserving` may honestly fail.
    pub forced: bool,
}

impl DrainReport {
    /// Packets fully served.
    pub fn served_packets(&self) -> u64 {
        self.stats.served_packets()
    }

    /// Packets dropped by drop-tail admission.
    pub fn dropped_packets(&self) -> u64 {
        self.stats.dropped_packets()
    }

    /// Packets refused under the reject policy.
    pub fn rejected_packets(&self) -> u64 {
        self.stats.rejected_packets()
    }

    /// Packets whose backpressure wait exceeded a submit deadline.
    pub fn timedout_packets(&self) -> u64 {
        self.stats.timedout_packets()
    }

    /// Packets lost to shard death or forced shutdown, admission
    /// charges revoked (DESIGN.md §9.2, §9.4).
    pub fn lost_packets(&self) -> u64 {
        self.stats.lost_packets()
    }

    /// Packets re-homed by panic salvage, counted at the dying shard.
    pub fn salvaged_packets(&self) -> u64 {
        self.stats.salvaged_packets()
    }

    /// Packets submitted (served + dropped + rejected + timed out +
    /// lost after a drain).
    pub fn submitted_packets(&self) -> u64 {
        self.stats.submitted_packets()
    }

    /// Whether every worker and flusher exited [`ShardExit::Clean`].
    pub fn all_clean(&self) -> bool {
        self.exits.iter().all(|e| *e == ShardExit::Clean)
            && self.flusher_exits.iter().all(|e| *e == ShardExit::Clean)
    }

    /// The drain conservation invariant (DESIGN.md §9.2 ledger): after
    /// shutdown, every submitted packet was served, dropped, rejected,
    /// timed out, or counted lost; no flits remain backlogged; and
    /// every packet that entered a ring either left on a link or was
    /// explicitly lost.
    pub fn is_conserving(&self) -> bool {
        self.served_packets()
            + self.dropped_packets()
            + self.rejected_packets()
            + self.timedout_packets()
            + self.lost_packets()
            == self.submitted_packets()
            && self.stats.backlog_flits() == 0
            && self.stats.enqueued_packets() == self.served_packets() + self.lost_packets()
    }

    /// Aggregate throughput over the drain in flits per shard-cycle,
    /// where each shard's flit clock ticks once per flit it serves.
    /// With `s` balanced shards this approaches `s` — the capacity
    /// scaling the sharded design buys (each shard is an independent
    /// egress link, exactly the paper's one-flit-per-cycle model per
    /// output port).
    pub fn flits_per_shard_cycle(&self) -> f64 {
        let makespan = self.shard_cycles.iter().copied().max().unwrap_or(0);
        if makespan == 0 {
            return 0.0;
        }
        self.stats.served_flits() as f64 / makespan as f64
    }
}
