//! Graceful-drain semantics and the final accounting report.
//!
//! The drain protocol has three steps, in this order:
//!
//! 1. **Close admission** — `closed` is set with release ordering;
//!    every subsequent [`submit`](crate::RuntimeHandle::submit) fails
//!    with [`SubmitError::Closed`](crate::SubmitError), and producers
//!    blocked in backpressure observe the flag and bail out.
//! 2. **Drain** — each shard keeps serving until its ingress ring is
//!    empty *and* its scheduler is idle. Because no new packets can be
//!    admitted after step 1, this condition is stable once reached.
//! 3. **Join** — worker threads exit their loops and are joined in
//!    shard order, making shutdown deterministic (no detached threads,
//!    no abandoned packets).
//!
//! The resulting [`DrainReport`] carries the conservation invariant the
//! integration tests assert: every submitted packet is accounted as
//! served, dropped, or rejected — nothing is lost in the pipeline.

use crate::stats::RuntimeStats;

/// Final accounting returned by [`Runtime::shutdown`](crate::Runtime::shutdown).
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Statistics at the instant every worker had exited.
    pub stats: RuntimeStats,
    /// Final flit-clock value of each shard (cycles of service).
    pub shard_cycles: Vec<u64>,
}

impl DrainReport {
    /// Packets fully served.
    pub fn served_packets(&self) -> u64 {
        self.stats.served_packets()
    }

    /// Packets dropped by drop-tail admission.
    pub fn dropped_packets(&self) -> u64 {
        self.stats.dropped_packets()
    }

    /// Packets refused under the reject policy.
    pub fn rejected_packets(&self) -> u64 {
        self.stats.rejected_packets()
    }

    /// Packets submitted (served + dropped + rejected after a drain).
    pub fn submitted_packets(&self) -> u64 {
        self.stats.submitted_packets()
    }

    /// The drain conservation invariant: after shutdown, every
    /// submitted packet was served, dropped, or rejected, and no flits
    /// remain backlogged anywhere.
    pub fn is_conserving(&self) -> bool {
        self.served_packets() + self.dropped_packets() + self.rejected_packets()
            == self.submitted_packets()
            && self.stats.backlog_flits() == 0
            && self.stats.enqueued_packets() == self.served_packets()
    }

    /// Aggregate throughput over the drain in flits per shard-cycle,
    /// where each shard's flit clock ticks once per flit it serves.
    /// With `s` balanced shards this approaches `s` — the capacity
    /// scaling the sharded design buys (each shard is an independent
    /// egress link, exactly the paper's one-flit-per-cycle model per
    /// output port).
    pub fn flits_per_shard_cycle(&self) -> f64 {
        let makespan = self.shard_cycles.iter().copied().max().unwrap_or(0);
        if makespan == 0 {
            return 0.0;
        }
        self.stats.served_flits() as f64 / makespan as f64
    }
}
