//! Shard supervision, panic salvage, and the deterministic chaos
//! harness (DESIGN.md §9).
//!
//! The fault model is *fail-stop with an honest ledger*: a shard worker
//! that panics (or is quarantined for a frozen heartbeat) salvages its
//! own state on the way down — every flow the
//! [`FlowMap`](crate::ownership::FlowMap) homes on the dead shard is
//! extracted, its ingress ring drained, and the resulting
//! packages re-homed to a live rescue shard through a salvage inbox.
//! What cannot be saved (a mid-packet wormhole cursor, or everything
//! when no live shard remains) is counted `lost` with its admission
//! charge revoked, never silently leaked. The [`FaultBoard`] records
//! heartbeats, health transitions, and death/recovery timestamps; a
//! supervisor thread applies the single quarantine rule; a seeded
//! [`FaultPlan`] replays shard panics, wedges, and link deaths on the
//! shard flit clocks, which is what makes the chaos bench an experiment
//! rather than an anecdote (§9.5).
//!
//! Concurrency note (§9.2): salvage passes still serialize through one
//! global salvage mutex (death is rare; the lock is never on a hot
//! path), but *per-flow* arbitration — a salvage racing a steal —
//! resolves through the §13 ownership authority: claim (or seize), then
//! win or lose the epoch CAS. With
//! [`SupervisionConfig::resurrection`] on, a dead shard is not salvaged
//! at all: the dying worker posts a whole-state `Bequest` and the
//! supervisor spawns a fresh worker thread that adopts the shard's
//! ring, scheduler, and in-flight migration state (§13.6) — the
//! [`FlowMap`](crate::ownership::FlowMap) never moves.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use desim::{Cycle, SimRng};
use err_egress::{LinkSet, Producer};
use err_sched::migrate::MigratedFlow;
use err_sched::{Scheduler, ServedFlit};

use crate::admission::AdmissionController;
use crate::ingress::Shared;
use crate::migrate::MigrationDriver;
use crate::ownership::{ClaimToken, OwnerState, Ownership};
use crate::shard::BufferedWorkerState;
use crate::stats::{PaddedCounter, ShardStats};

/// Locks `m`, treating poisoning as benign: the protected state is a
/// token or a message queue whose invariants do not depend on the
/// panicking critical section having completed (and panics are this
/// module's business, not an anomaly).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Supervisor policy knobs (DESIGN.md §9.1).
#[derive(Clone, Copy, Debug)]
pub struct SupervisionConfig {
    /// How often the supervisor thread scans the [`FaultBoard`].
    pub poll: Duration,
    /// A `Running` shard whose heartbeat has not advanced for this long
    /// is marked [`ShardHealth::Quarantined`]. Must comfortably exceed
    /// the worker's idle park timeout (100µs) — the default leaves two
    /// orders of magnitude of slack.
    pub heartbeat_deadline: Duration,
    /// True shard resurrection (DESIGN.md §13.6): a dead shard's worker
    /// is replaced by a fresh thread adopting its ring, scheduler, and
    /// migration state, instead of its flows being permanently re-homed
    /// by salvage. Required when stealing and supervision compose
    /// (`Runtime::start` asserts it): a mid-handoff peer waits on the
    /// dead shard's next protocol step, which only a successor can
    /// take.
    pub resurrection: bool,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(2),
            heartbeat_deadline: Duration::from_millis(50),
            resurrection: false,
        }
    }
}

/// Lifecycle state of one shard worker (DESIGN.md §9.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardHealth {
    /// Serving normally.
    Running = 0,
    /// The supervisor saw a frozen heartbeat; the worker's own fault
    /// hook honors the flag by panicking into the salvage path.
    Quarantined = 1,
    /// The worker panicked (organically, by injection, or honoring a
    /// quarantine); its flows were salvaged or counted lost.
    Dead = 2,
    /// The worker drained cleanly and returned.
    Exited = 3,
}

impl ShardHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Running,
            1 => Self::Quarantined,
            2 => Self::Dead,
            3 => Self::Exited,
            _ => unreachable!("invalid shard health {v}"),
        }
    }
}

/// Sentinel for "never stamped" in the timestamp cells.
const NEVER: u64 = u64::MAX;

struct BoardCell {
    heartbeat: PaddedCounter,
    health: AtomicU8,
    death_at: AtomicU64,
    recovered_at: AtomicU64,
}

impl Default for BoardCell {
    fn default() -> Self {
        Self {
            heartbeat: PaddedCounter::default(),
            health: AtomicU8::new(ShardHealth::Running as u8),
            death_at: AtomicU64::new(NEVER),
            recovered_at: AtomicU64::new(NEVER),
        }
    }
}

/// Per-shard health, heartbeat, and death/recovery timestamps —
/// LoadBoard-style atomics, one cache-padded entry per shard
/// (DESIGN.md §9.1). The timestamps are microseconds since runtime
/// start and are the raw material of the chaos bench's recovery-time
/// distribution.
pub struct FaultBoard {
    cells: Vec<BoardCell>,
    start: Instant,
}

impl FaultBoard {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            cells: (0..shards).map(|_| BoardCell::default()).collect(),
            start: Instant::now(),
        }
    }

    /// Number of shards on the board.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// Bumped by `shard`'s worker once per service loop (idle loops
    /// included — a parked worker wakes at the park timeout and beats).
    pub(crate) fn beat(&self, shard: usize) {
        self.cells[shard].heartbeat.add(1);
    }

    /// Current heartbeat count of `shard`.
    pub fn heartbeat(&self, shard: usize) -> u64 {
        self.cells[shard].heartbeat.get()
    }

    /// Current health of `shard`.
    pub fn health(&self, shard: usize) -> ShardHealth {
        // ordering: SeqCst — the health byte arbitrates between the
        // supervisor's quarantine CAS, the dying worker's Dead store,
        // and salvagers' rescue checks; every observer must agree on
        // one total order of transitions (a racing death beats a
        // quarantine everywhere, not per-thread).
        ShardHealth::from_u8(self.cells[shard].health.load(Ordering::SeqCst))
    }

    pub(crate) fn set_health(&self, shard: usize, health: ShardHealth) {
        // ordering: SeqCst — same single-total-order contract as
        // `health` (this is the Dead/Exited side of the arbitration).
        self.cells[shard]
            .health
            .store(health as u8, Ordering::SeqCst);
    }

    /// Supervisor-only `Running → Quarantined` transition; returns
    /// whether this call made it (a racing death wins).
    pub(crate) fn quarantine(&self, shard: usize) -> bool {
        // ordering: SeqCst/SeqCst — the supervisor's half of the
        // health arbitration (see `health`): the CAS loses to a racing
        // Dead store in the same total order every observer sees.
        self.cells[shard]
            .health
            .compare_exchange(
                ShardHealth::Running as u8,
                ShardHealth::Quarantined as u8,
                // ordering: SeqCst/SeqCst — see above.
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    pub(crate) fn stamp_death(&self, shard: usize) {
        // ordering: SeqCst — stamped inside the salvage protocol and
        // read against the health bytes; keeping it in the same total
        // order means a reader that saw Dead also sees the timestamp.
        self.cells[shard]
            .death_at
            .store(self.now_micros(), Ordering::SeqCst);
    }

    pub(crate) fn stamp_recovery(&self, shard: usize) {
        // ordering: SeqCst — see `stamp_death`.
        self.cells[shard]
            .recovered_at
            .store(self.now_micros(), Ordering::SeqCst);
    }

    /// Microseconds (since runtime start) at which `shard` died, if it
    /// did.
    pub fn death_micros(&self, shard: usize) -> Option<u64> {
        // ordering: SeqCst — reader side of `stamp_death`.
        match self.cells[shard].death_at.load(Ordering::SeqCst) {
            NEVER => None,
            t => Some(t),
        }
    }

    /// Microseconds (since runtime start) at which `shard`'s salvage
    /// completed, if it did.
    pub fn recovery_micros(&self, shard: usize) -> Option<u64> {
        // ordering: SeqCst — reader side of `stamp_recovery`.
        match self.cells[shard].recovered_at.load(Ordering::SeqCst) {
            NEVER => None,
            t => Some(t),
        }
    }
}

/// One injected fault (DESIGN.md §9.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the shard worker (unwinds into the salvage path).
    PanicShard,
    /// Wedge the worker: it stops beating without unwinding, until the
    /// supervisor quarantines it and the wedge loop honors the flag.
    StickShard,
    /// Declare the given egress link dead (buffered mode only; ignored
    /// under sync egress, which has no links).
    KillLink(usize),
}

/// A planned fault: `kind` fires on `shard`'s flit clock at the first
/// intake boundary at or after cycle `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Shard whose worker observes the event.
    pub shard: usize,
    /// Shard-local flit-clock cycle at which the event is due.
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, replayable chaos schedule — the fault-injection
/// analogue of [`StallPlan`](err_egress::StallPlan): explicit
/// constructors or a seeded [`from_rng`](Self::from_rng), compiled by
/// [`FaultInjector`] into per-shard sorted event lists consumed by
/// cursor. Events fire on each shard's own flit clock, so a plan
/// replays identically for a given seed and workload (DESIGN.md §9.5).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan; chain the `*_at` builders onto it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics `shard`'s worker at cycle `at`.
    pub fn kill_shard_at(mut self, shard: usize, at: Cycle) -> Self {
        self.events.push(FaultEvent {
            shard,
            at,
            kind: FaultKind::PanicShard,
        });
        self
    }

    /// Wedges `shard`'s worker (heartbeat freeze) at cycle `at`.
    pub fn stick_shard_at(mut self, shard: usize, at: Cycle) -> Self {
        self.events.push(FaultEvent {
            shard,
            at,
            kind: FaultKind::StickShard,
        });
        self
    }

    /// Declares egress `link` dead when `shard`'s clock reaches `at`.
    pub fn kill_link_at(mut self, shard: usize, link: usize, at: Cycle) -> Self {
        self.events.push(FaultEvent {
            shard,
            at,
            kind: FaultKind::KillLink(link),
        });
        self
    }

    /// Seeded random plan: each shard independently draws at most one
    /// fault, at a geometric time with per-cycle rate `fault_rate`,
    /// kept only if it lands inside `horizon` cycles. Derivation uses
    /// a per-shard stream of the workspace [`SimRng`], so adding
    /// shards never perturbs the other shards' draws.
    pub fn from_rng(
        rng: &SimRng,
        shards: usize,
        n_links: usize,
        fault_rate: f64,
        horizon: Cycle,
    ) -> Self {
        let mut events = Vec::new();
        for shard in 0..shards {
            let mut r = rng.derive(0xFA17_0000 + shard as u64);
            let at = r.geometric_gap(fault_rate);
            if at > horizon {
                continue;
            }
            let kind = match r.uniform_u32(0, 2) {
                0 => FaultKind::PanicShard,
                1 => FaultKind::StickShard,
                _ if n_links > 0 => {
                    FaultKind::KillLink(r.uniform_u32(0, n_links as u32 - 1) as usize)
                }
                _ => FaultKind::PanicShard,
            };
            events.push(FaultEvent { shard, at, kind });
        }
        Self { events }
    }

    /// The planned events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Compiled [`FaultPlan`]: per-shard event lists sorted by due cycle,
/// consumed by a per-shard cursor. Each cursor has a single consumer
/// (the shard's own worker), mirroring
/// [`StallInjector`](err_egress::StallInjector).
pub struct FaultInjector {
    events: Vec<Vec<FaultEvent>>,
    cursors: Vec<AtomicUsize>,
}

impl FaultInjector {
    /// Compiles `plan` for a runtime with `shards` shards; events
    /// naming an out-of-range shard are dropped.
    pub fn new(plan: &FaultPlan, shards: usize) -> Self {
        let mut events: Vec<Vec<FaultEvent>> = vec![Vec::new(); shards];
        for ev in plan.events() {
            if ev.shard < shards {
                events[ev.shard].push(*ev);
            }
        }
        for list in &mut events {
            list.sort_by_key(|e| e.at);
        }
        Self {
            cursors: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            events,
        }
    }

    /// The next event due on `shard` at flit-clock `now`, consuming it.
    pub fn next_due(&self, shard: usize, now: Cycle) -> Option<FaultKind> {
        let cur = self.cursors[shard].load(Ordering::Relaxed);
        let ev = self.events[shard].get(cur)?;
        if ev.at <= now {
            self.cursors[shard].store(cur + 1, Ordering::Relaxed);
            Some(ev.kind)
        } else {
            None
        }
    }

    /// Whether every planned event has fired.
    pub fn exhausted(&self) -> bool {
        self.cursors
            .iter()
            .zip(&self.events)
            .all(|(c, e)| c.load(Ordering::Relaxed) >= e.len())
    }
}

/// Traffic on a shard's salvage inbox (DESIGN.md §9.2).
pub(crate) enum SalvageMsg {
    /// Pre-park request: the dying shard asks its chosen rescue to park
    /// these flows *before* the FlowMap flips, so no new-epoch arrival
    /// can be served ahead of the salvaged old-epoch packets (the same
    /// fence the §8 thief provides by parking before its ack). The
    /// handler bumps the global ack counter once per message.
    Park { flows: Vec<usize> },
    /// A salvaged flow package; the handler parks (idempotent), absorbs
    /// (old epoch prepends ahead of new, §8.3), and unparks. Delivered
    /// for *every* re-homed flow, even empty — absorption is also what
    /// clears any pre-park left behind by an abandoned rescue attempt.
    Package {
        /// The re-homed flow.
        flow: usize,
        /// Its scheduler-side state.
        pkg: MigratedFlow,
    },
}

/// The egress half of a [`Bequest`]: whatever the dying worker owned on
/// its output side, by egress mode.
pub(crate) enum BequestEgress {
    /// The sync worker's optional sink, boxed as `Any` — the concrete
    /// sink type is known only to the spawner closure in `lib.rs`,
    /// which downcasts it back.
    Sync(Box<dyn Any + Send>),
    /// The buffered worker's output-ring producer plus its link-local
    /// state (stash, parking bitmaps, pushed count).
    Buffered {
        tx: Producer<ServedFlit>,
        state: BufferedWorkerState,
    },
}

/// Everything a successor worker needs to adopt a dead shard (§13.6).
/// Posted by the dying worker's epilogue at an intake-boundary panic —
/// the only place panics fire, so arrival batches are empty and the
/// state is consistent by construction. The ingress ring is *not* here:
/// it lives in `Shared` and the successor simply resumes draining it.
pub(crate) struct Bequest {
    pub(crate) scheduler: Box<dyn Scheduler + Send>,
    pub(crate) driver: Option<MigrationDriver>,
    /// The shard flit clock at death; the successor continues it.
    pub(crate) now: Cycle,
    pub(crate) egress: BequestEgress,
}

/// Spawner for successor workers, built in `lib.rs` where the egress
/// generics are known: `(shard, generation, bequest) → join handle`.
pub(crate) type RespawnFn = Box<dyn Fn(usize, u64, Bequest) -> JoinHandle<Cycle> + Send>;

/// Fault-tolerance state hung off the runtime's `Shared` block when
/// `RuntimeConfig::supervision` is set.
pub(crate) struct FaultRuntime {
    pub(crate) board: FaultBoard,
    /// The §13 ownership authority (map + windows + claims), shared
    /// with the stealing layer when both overlays are on.
    pub(crate) own: Arc<Ownership>,
    inboxes: Vec<Mutex<VecDeque<SalvageMsg>>>,
    /// Cheap hot-path signal that a shard's inbox is non-empty.
    inbox_flags: Vec<AtomicBool>,
    /// Bumped once per handled `Park` message. Only one salvage runs at
    /// a time (the salvage lock), so the waiter reads a private delta.
    park_acks: AtomicU64,
    pub(crate) injector: Option<FaultInjector>,
    /// The global salvage lock (see the module docs): serializes every
    /// salvage and the `Dead`/`Exited` transitions that race them.
    salvage: Mutex<()>,
    /// Per-shard bequest slot (§13.6): the dying worker posts, the
    /// supervisor takes.
    bequests: Vec<Mutex<Option<Bequest>>>,
    /// Successor worker threads, `(shard, handle)`, pushed by the
    /// supervisor under this mutex — `drain_within` reads the same lock
    /// so it can never miss a successor that is mid-spawn.
    pub(crate) successors: Mutex<Vec<(usize, JoinHandle<Cycle>)>>,
    pub(crate) config: SupervisionConfig,
}

impl FaultRuntime {
    pub(crate) fn new(
        own: Arc<Ownership>,
        shards: usize,
        config: SupervisionConfig,
        injector: Option<FaultInjector>,
    ) -> Self {
        Self {
            board: FaultBoard::new(shards),
            own,
            inboxes: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            inbox_flags: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            park_acks: AtomicU64::new(0),
            injector,
            salvage: Mutex::new(()),
            bequests: (0..shards).map(|_| Mutex::new(None)).collect(),
            successors: Mutex::new(Vec::new()),
            config,
        }
    }

    /// The dying worker's last act under resurrection (§13.6): post the
    /// whole-state bequest, then flip to `Dead` — in that order, so a
    /// supervisor that observes the bequest always finds it complete.
    pub(crate) fn bequeath(&self, shard: usize, bequest: Bequest) {
        *lock_unpoisoned(&self.bequests[shard]) = Some(bequest);
        self.board.set_health(shard, ShardHealth::Dead);
        self.board.stamp_death(shard);
    }

    /// Takes `shard`'s pending bequest, if any (supervisor side).
    pub(crate) fn take_bequest(&self, shard: usize) -> Option<Bequest> {
        lock_unpoisoned(&self.bequests[shard]).take()
    }

    /// Whether any shard has posted a bequest the supervisor has not
    /// yet turned into a successor (`drain_within` waits this out).
    pub(crate) fn resurrection_pending(&self) -> bool {
        self.bequests.iter().any(|b| lock_unpoisoned(b).is_some())
    }

    /// Pushes messages to `shard`'s inbox and raises its flag.
    fn post(&self, shard: usize, msgs: impl IntoIterator<Item = SalvageMsg>) {
        let mut inbox = lock_unpoisoned(&self.inboxes[shard]);
        inbox.extend(msgs);
        // ordering: Release pairs with the Acquire flag load in
        // `fault_tick` (the messages themselves travel under the inbox
        // lock; the flag is the cheap "look inside" hint). `try_exit`
        // reads it SeqCst for its flag→lock→flag fence.
        self.inbox_flags[shard].store(true, Ordering::Release);
    }

    /// The rescue candidate: the first `Running` shard after `from` in
    /// ring order, skipping `exclude` (candidates that timed out).
    fn next_alive(&self, from: usize, exclude: &[usize]) -> Option<usize> {
        let n = self.board.shards();
        (1..=n)
            .map(|d| (from + d) % n)
            .find(|&s| !exclude.contains(&s) && self.board.health(s) == ShardHealth::Running)
    }
}

/// Link-parking context the buffered worker lends to [`fault_tick`] so
/// salvage parks/unparks compose with per-link credit parking (§9.3):
///
/// * a pre-park on behalf of a pending salvage is recorded in
///   `salvage_parked`, and the worker's link-unstick sweep must skip
///   such flows — credits returning must not let new-epoch arrivals be
///   served ahead of the package in flight;
/// * conversely, package absorption must *not* unpark a flow whose
///   link is currently credit-parked, or the one-stash-per-link
///   invariant breaks.
pub(crate) struct BufferedFaultCtx<'a> {
    pub(crate) links: &'a LinkSet,
    pub(crate) link_parked: &'a [bool],
    pub(crate) salvage_parked: &'a mut [bool],
}

/// Per-loop fault hook, called by both worker loops at the intake
/// boundary: beat the heartbeat, absorb salvage traffic, honor a
/// quarantine (by panicking into the salvage path), and fire due
/// injected events. `ctx` is `None` under sync egress, where `KillLink`
/// events are ignored and no link parking exists to compose with.
pub(crate) fn fault_tick(
    shared: &Shared,
    shard: usize,
    scheduler: &mut Box<dyn Scheduler + Send>,
    now: Cycle,
    mut ctx: Option<BufferedFaultCtx<'_>>,
) {
    let Some(fr) = shared.fault.as_ref() else {
        return;
    };
    fr.board.beat(shard);
    // ordering: Acquire pairs with the Release flag store in `post`.
    if fr.inbox_flags[shard].load(Ordering::Acquire) {
        drain_inbox(fr, shard, scheduler, &mut ctx);
    }
    if fr.board.health(shard) == ShardHealth::Quarantined {
        panic!("shard {shard}: quarantine honored (heartbeat stalled past deadline)");
    }
    if let Some(inj) = fr.injector.as_ref() {
        while let Some(kind) = inj.next_due(shard, now) {
            match kind {
                FaultKind::PanicShard => {
                    panic!("shard {shard}: injected panic at cycle {now} (FaultPlan)")
                }
                FaultKind::StickShard => stick(shared, fr, shard),
                FaultKind::KillLink(link) => {
                    if let Some(c) = ctx.as_ref() {
                        if link < c.links.n_links() {
                            c.links.declare_dead(link);
                        }
                    }
                }
            }
        }
    }
}

/// Handles everything queued on `shard`'s salvage inbox.
fn drain_inbox(
    fr: &FaultRuntime,
    shard: usize,
    scheduler: &mut Box<dyn Scheduler + Send>,
    ctx: &mut Option<BufferedFaultCtx<'_>>,
) {
    let msgs: Vec<SalvageMsg> = {
        let mut inbox = lock_unpoisoned(&fr.inboxes[shard]);
        // ordering: Release — cleared under the inbox lock before the
        // drain; a `post` that lands after this store re-raises the
        // flag, so no message is left behind with the flag down.
        fr.inbox_flags[shard].store(false, Ordering::Release);
        inbox.drain(..).collect()
    };
    for msg in msgs {
        match msg {
            SalvageMsg::Park { flows } => {
                for flow in flows {
                    // unpark: the `Package` arm below when the flow's
                    // salvage package arrives — absorption is what
                    // clears the pre-park; the `salvage_parked` flag
                    // keeps the link unstick sweep from jumping the gun.
                    let _ = scheduler.park_flow(flow);
                    if let Some(c) = ctx.as_mut() {
                        if let Some(slot) = c.salvage_parked.get_mut(flow) {
                            *slot = true;
                        }
                    }
                }
                // ordering: SeqCst — the ack side of the pre-park
                // fence: the salvager reads `park_acks` (SeqCst) while
                // racing health transitions; one total order keeps
                // "acked" and "candidate died" mutually exclusive
                // verdicts.
                fr.park_acks.fetch_add(1, Ordering::SeqCst);
            }
            SalvageMsg::Package { flow, pkg } => {
                // unpark: `unpark_flow` just below, gated on the
                // credit-park check — same tick, same thread.
                let _ = scheduler.park_flow(flow);
                let absorbed = scheduler.absorb_flow(flow, pkg);
                debug_assert!(absorbed, "salvage target failed to absorb flow {flow}");
                // The flow is home; it only resumes service if its link
                // has credits — a credit-parked link keeps it parked
                // and the unstick sweep releases it with the rest.
                let keep_parked = match ctx.as_mut() {
                    Some(c) => {
                        if let Some(slot) = c.salvage_parked.get_mut(flow) {
                            *slot = false;
                        }
                        c.link_parked[c.links.route(flow)]
                    }
                    None => false,
                };
                if !keep_parked {
                    // unpark: direct call, guarded by `link_parked` —
                    // the re-check above is exactly
                    // the guard `unpark_respecting_links` provides
                    // (that helper lives in migrate.rs and takes the
                    // steal context; salvage has its own `ctx` here).
                    scheduler.unpark_flow(flow);
                }
            }
        }
    }
}

/// The injected wedge: spin without beating until the supervisor
/// quarantines this shard (or the runtime aborts), then panic into the
/// salvage path — modelling a wedge that a watchdog kill eventually
/// reaches (DESIGN.md §9.2).
fn stick(shared: &Shared, fr: &FaultRuntime, shard: usize) {
    loop {
        if fr.board.health(shard) == ShardHealth::Quarantined {
            panic!("shard {shard}: quarantine honored (injected wedge)");
        }
        // ordering: Acquire pairs with the Release `abort` store in
        // `Runtime::drain_within`.
        if shared.abort.load(Ordering::Acquire) {
            panic!("shard {shard}: injected wedge aborted by shutdown");
        }
        std::thread::park_timeout(Duration::from_micros(200));
    }
}

/// An empty package: what an untouched flow's state looks like.
fn empty_package() -> MigratedFlow {
    MigratedFlow {
        packets: VecDeque::new(),
        surplus: 0,
        resume: None,
    }
}

/// Strips a mid-packet cursor from an extracted package, counting its
/// unserved remainder as lost and revoking the packet's admission
/// charge: its head flits already left on the dead shard's link, and
/// replaying the tail elsewhere would corrupt the wormhole (§9.2).
fn strip_cursor(
    stats: &ShardStats,
    admission: &AdmissionController,
    flow: usize,
    pkg: &mut MigratedFlow,
) {
    if let Some(cursor) = pkg.resume.take().and_then(|v| v.cursor) {
        stats.lost_packets.add(1);
        stats
            .lost_flits
            .add((cursor.packet.len - cursor.next_flit) as u64);
        admission.revoke(flow, cursor.packet.len);
    }
}

/// FIFO-merges `pkg` behind whatever `slot` already holds (older
/// material merges first: forwarded inbox packages, then the local
/// extraction, then the ring drain).
fn merge_package(slot: &mut Option<MigratedFlow>, mut pkg: MigratedFlow) {
    debug_assert!(pkg.resume.is_none(), "cursor must be stripped before merge");
    match slot {
        None => *slot = Some(pkg),
        Some(base) => {
            base.packets.append(&mut pkg.packets);
            base.surplus += pkg.surplus;
        }
    }
}

/// Counts one packet as lost and releases its admission charge.
fn lose_packet(stats: &ShardStats, admission: &AdmissionController, flow: usize, len: u32) {
    stats.lost_packets.add(1);
    stats.lost_flits.add(len as u64);
    admission.revoke(flow, len);
}

/// Salvage, run on the dying worker's own thread after its
/// `catch_unwind` caught the panic (DESIGN.md §9.2): mark `Dead`,
/// re-home every flow the map puts here (pre-parking them at the
/// rescue), drain the dead ingress ring, deliver the packages, and
/// account every packet as salvaged or lost.
pub(crate) fn salvage_shard(
    shared: &Shared,
    shard: usize,
    scheduler: &mut Box<dyn Scheduler + Send>,
) {
    let Some(fr) = shared.fault.as_ref() else {
        return;
    };
    let _guard = lock_unpoisoned(&fr.salvage);
    // Dead before anything else: producers spinning on this shard's
    // full ring observe it and re-route once the map flips below, and
    // other salvages stop considering this shard a rescue.
    fr.board.set_health(shard, ShardHealth::Dead);
    fr.board.stamp_death(shard);
    let stats = &shared.stats[shard];

    // Our own inbox first: forwarded packages from an earlier death sit
    // here unabsorbed. Stale pre-park requests die with us — their
    // salvager already timed out and moved on.
    let pending: Vec<SalvageMsg> = {
        let mut inbox = lock_unpoisoned(&fr.inboxes[shard]);
        // ordering: Release — same clear-under-lock pattern as
        // `drain_inbox`.
        fr.inbox_flags[shard].store(false, Ordering::Release);
        inbox.drain(..).collect()
    };
    let n_flows = fr.own.map.n_flows();
    let mut packages: Vec<Option<MigratedFlow>> = (0..n_flows).map(|_| None).collect();
    for msg in pending {
        if let SalvageMsg::Package { flow, pkg } = msg {
            merge_package(&mut packages[flow], pkg);
        }
    }

    let owned: Vec<usize> = (0..n_flows)
        .filter(|&f| fr.own.shard_of(f) == Some(shard))
        .collect();

    // Choose a rescue and pre-park the flows there (the §8 thief-side
    // fence). A candidate that does not ack within the heartbeat
    // deadline is itself dying, wedged, or blocked — move on.
    let mut excluded = vec![shard];
    let rescue = loop {
        let Some(candidate) = fr.next_alive(shard, &excluded) else {
            break None;
        };
        // ordering: SeqCst — baseline for the ack wait below; see the
        // fence note on the `park_acks` increment in `drain_inbox`.
        let base = fr.park_acks.load(Ordering::SeqCst);
        fr.post(
            candidate,
            [SalvageMsg::Park {
                flows: owned.clone(),
            }],
        );
        let deadline = Instant::now() + fr.config.heartbeat_deadline;
        let acked = loop {
            // ordering: SeqCst — pairs with the SeqCst `park_acks`
            // increment; ordered against the SeqCst health reads so an
            // ack and a death verdict cannot both be concluded.
            if fr.park_acks.load(Ordering::SeqCst) > base {
                break true;
            }
            // ordering: Acquire `abort` — shutdown latch pairing with
            // `Runtime::drain_within`.
            if fr.board.health(candidate) != ShardHealth::Running
                || shared.abort.load(Ordering::Acquire)
                || Instant::now() >= deadline
            {
                break false;
            }
            std::thread::yield_now();
        };
        if acked {
            break Some(candidate);
        }
        // ordering: Acquire — shutdown latch pairing as above.
        if shared.abort.load(Ordering::Acquire) {
            break None;
        }
        excluded.push(candidate);
    };

    // Per-flow arbitration (§13.1), then extract and drain the ring
    // into the packages. With a rescue, each flow is *claimed* — or an
    // in-flight steal's claim is *seized*, since the steal's donor is
    // this very dying thread and can never advance it — the map flips
    // by epoch CAS, and the submit window is waited out, so the ring
    // drain covers every old-epoch push (§13.3). A flow whose reroute
    // loses the epoch race already lives at its thief: it is dropped
    // from the salvage set and its claim released untouched.
    let mut rehomed: Vec<(usize, ClaimToken)> = Vec::new();
    if let Some(r) = rescue {
        for &flow in &owned {
            let mut tok = None;
            for _ in 0..64 {
                tok = fr
                    .own
                    .try_claim(flow, OwnerState::Salvaging, shard)
                    .or_else(|| fr.own.seize_for_salvage(flow, shard));
                if tok.is_some() {
                    break;
                }
                std::thread::yield_now();
            }
            let Some(tok) = tok else { continue };
            if fr.own.try_reroute(&tok, r) {
                rehomed.push((flow, tok));
            } else {
                fr.own.release(&tok);
            }
        }
        for &(flow, _) in &rehomed {
            // ordering: SeqCst inside `window_clear` — the salvager's
            // half of the submit-window Dekker (ownership.rs
            // WindowGuard): window enter (SeqCst fetch_add) then map
            // read, versus map flip then this SeqCst zero-check; one
            // total order means any submit the flip missed is still
            // counted in the window here.
            while !fr.own.window_clear(flow) {
                std::thread::yield_now();
            }
        }
        for &(flow, _) in &rehomed {
            // unpark: at the rescue target's `Package` arm in
            // `drain_salvage_inbox` — never on this scheduler; the
            // shard is dying and the extracted flow is absorbed (and
            // unparked) at its new home.
            let _ = scheduler.park_flow(flow);
            if let Some(mut pkg) = scheduler.extract_flow(flow) {
                strip_cursor(stats, &shared.admission, flow, &mut pkg);
                merge_package(&mut packages[flow], pkg);
            }
        }
    } else {
        for &flow in &owned {
            // unpark: never — no rescue target exists; `extract_flow`
            // empties the flow, the package is accounted as
            // salvage-lost, and the scheduler is dropped with the
            // dying shard.
            let _ = scheduler.park_flow(flow);
            if let Some(mut pkg) = scheduler.extract_flow(flow) {
                strip_cursor(stats, &shared.admission, flow, &mut pkg);
                merge_package(&mut packages[flow], pkg);
            }
        }
    }
    while let Some(pkt) = shared.rings[shard].pop() {
        packages[pkt.flow]
            .get_or_insert_with(empty_package)
            .packets
            .push_back(pkt);
    }

    match rescue {
        Some(r) => {
            // Deliver a package for every pre-parked flow — even an
            // empty one, since absorption is what unparks the pre-park
            // — and account the contents as salvaged at this (dying)
            // shard. A dropped flow (reroute lost to a thief) gets an
            // empty package to clear its pre-park; any ring residue it
            // left here is old-epoch material the thief's drain already
            // covered or will cover, but we saw it post-claim, so count
            // it lost rather than mis-home it.
            let kept: Vec<usize> = rehomed.iter().map(|&(f, _)| f).collect();
            let msgs: Vec<SalvageMsg> = owned
                .iter()
                .map(|&flow| {
                    let pkg = if kept.contains(&flow) {
                        packages[flow].take().unwrap_or_else(empty_package)
                    } else {
                        if let Some(stale) = packages[flow].take() {
                            for p in &stale.packets {
                                lose_packet(stats, &shared.admission, flow, p.len);
                            }
                        }
                        empty_package()
                    };
                    stats.salvaged_packets.add(pkg.packets.len() as u64);
                    stats.salvaged_flits.add(pkg.flits());
                    SalvageMsg::Package { flow, pkg }
                })
                .collect();
            fr.post(r, msgs);
            for (_, tok) in &rehomed {
                fr.own.release(tok);
            }
        }
        None => {
            // Total failure: no live rescuer (every shard dead, or the
            // shutdown abort fired mid-salvage). Close the runtime
            // *first* so producers fail fast, then quiesce *all*
            // in-flight submits — not just the windowed ones: a
            // producer past admission but before the window can still
            // land a push in our ring (the map never flipped), and the
            // ledger would leak it. Every submit path re-checks
            // `closed` on its blocking loops, so `in_flight` drains
            // promptly. Then re-drain, count everything lost, and
            // revoke the charges — an honest shutdown, not a hang
            // (§9.2).
            shared.gate.close();
            while !shared.can_finish() {
                std::thread::yield_now();
            }
            while let Some(pkt) = shared.rings[shard].pop() {
                packages[pkt.flow]
                    .get_or_insert_with(empty_package)
                    .packets
                    .push_back(pkt);
            }
            for (flow, slot) in packages.iter_mut().enumerate() {
                if let Some(pkg) = slot.take() {
                    for p in &pkg.packets {
                        lose_packet(stats, &shared.admission, flow, p.len);
                    }
                }
            }
        }
    }
    fr.board.stamp_recovery(shard);
    stats.backlog_flits.set(0);
}

/// Final exit gate for a supervised worker that has drained: refuses if
/// salvage traffic is (or is about to be) queued, otherwise transitions
/// to `Exited` under the salvage lock so no salvager can pick this
/// shard as a rescue afterwards. Uses `try_lock` — a worker blocked
/// here could not beat, and the supervisor would quarantine it.
pub(crate) fn try_exit(shared: &Shared, shard: usize) -> bool {
    let Some(fr) = shared.fault.as_ref() else {
        return true;
    };
    // ordering: SeqCst — cheap pre-check of the flag→lock→flag exit
    // fence (full argument on the recheck below).
    if fr.inbox_flags[shard].load(Ordering::SeqCst) {
        return false;
    }
    let _guard = match fr.salvage.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => return false,
    };
    // ordering: SeqCst — under the salvage lock no new salvager can
    // start; SeqCst orders this recheck against a concurrent salvager
    // posting a package just before it released the lock, so an exit
    // can never strand a posted package.
    if fr.inbox_flags[shard].load(Ordering::SeqCst) {
        return false;
    }
    fr.board.set_health(shard, ShardHealth::Exited);
    true
}

/// Forced-shutdown residue accounting (DESIGN.md §9.4): when the abort
/// flag fires, a worker stops serving and counts its residual state —
/// ring contents and extracted flow packages — as lost, with admission
/// charges revoked. Exact for migratable disciplines; others can only
/// report an aggregate flit count (the report's `forced` flag marks the
/// accounting as lossy).
pub(crate) fn abort_residuals(
    shared: &Shared,
    shard: usize,
    n_flows: usize,
    scheduler: &mut Box<dyn Scheduler + Send>,
) {
    let stats = &shared.stats[shard];
    while let Some(pkt) = shared.rings[shard].pop() {
        lose_packet(stats, &shared.admission, pkt.flow, pkt.len);
    }
    if scheduler.supports_migration() {
        for flow in 0..n_flows {
            // unpark: never — `abort_residuals` is the forced-abort
            // accounting sweep; the scheduler serves nothing after it
            // and is dropped with the aborted runtime.
            let _ = scheduler.park_flow(flow);
            if let Some(pkg) = scheduler.extract_flow(flow) {
                if let Some(cursor) = pkg.resume.and_then(|v| v.cursor) {
                    stats.lost_packets.add(1);
                    stats
                        .lost_flits
                        .add((cursor.packet.len - cursor.next_flit) as u64);
                    shared.admission.revoke(flow, cursor.packet.len);
                }
                for p in &pkg.packets {
                    lose_packet(stats, &shared.admission, flow, p.len);
                }
            }
        }
    } else {
        stats.lost_flits.add(scheduler.backlog_flits());
    }
    stats.backlog_flits.set(0);
    if let Some(fr) = shared.fault.as_ref() {
        let _guard = lock_unpoisoned(&fr.salvage);
        // Packages that raced the abort into our inbox are lost too.
        let pending: Vec<SalvageMsg> = {
            let mut inbox = lock_unpoisoned(&fr.inboxes[shard]);
            // ordering: Release — clear-under-lock pattern as in
            // `drain_inbox`.
            fr.inbox_flags[shard].store(false, Ordering::Release);
            inbox.drain(..).collect()
        };
        for msg in pending {
            if let SalvageMsg::Package { flow, pkg } = msg {
                for p in &pkg.packets {
                    lose_packet(stats, &shared.admission, flow, p.len);
                }
            }
        }
        fr.board.set_health(shard, ShardHealth::Exited);
    }
}

/// The supervisor loop (DESIGN.md §9.1): every `poll`, quarantine any
/// `Running` shard whose heartbeat has not advanced for
/// `heartbeat_deadline`. Never touches a scheduler — quarantine is a
/// flag the worker's own fault hook honors. With `respawn` set
/// (resurrection, §13.6), the scan also turns posted bequests into
/// successor worker threads.
pub(crate) fn run_supervisor(
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    respawn: Option<RespawnFn>,
) {
    let Some(fr) = shared.fault.as_ref() else {
        return;
    };
    let shards = fr.board.shards();
    let mut last_beat: Vec<u64> = (0..shards).map(|s| fr.board.heartbeat(s)).collect();
    let mut last_change: Vec<Instant> = vec![Instant::now(); shards];
    let mut generation: Vec<u64> = vec![0; shards];
    // ordering: Acquire pairs with the Release `stop` store in
    // `Runtime::drain_within` (supervisor shutdown latch).
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(fr.config.poll);
        for s in 0..shards {
            let beat = fr.board.heartbeat(s);
            if beat != last_beat[s] {
                last_beat[s] = beat;
                last_change[s] = Instant::now();
            } else if fr.board.health(s) == ShardHealth::Running
                && last_change[s].elapsed() >= fr.config.heartbeat_deadline
            {
                fr.board.quarantine(s);
            }
            let Some(respawn) = respawn.as_ref() else {
                continue;
            };
            // Resurrection (§13.6): adopt a posted bequest. The whole
            // take→spawn→push runs under the successors lock so
            // `drain_within`, which reads the same lock, can never
            // observe "no bequest, no successor" for a shard that is
            // mid-resurrection.
            let mut successors = lock_unpoisoned(&fr.successors);
            // ordering: Acquire pairs with the Release `abort` store in
            // `Runtime::drain_within` — no successor may spawn after
            // the forced-abort residue accounting starts.
            if shared.abort.load(Ordering::Acquire) {
                continue;
            }
            if let Some(bequest) = fr.take_bequest(s) {
                generation[s] += 1;
                fr.board.stamp_recovery(s);
                fr.board.set_health(s, ShardHealth::Running);
                // A fresh grace window: the successor's first beat may
                // lag thread spawn, and the stale pre-death timestamp
                // would instantly re-quarantine it.
                last_beat[s] = fr.board.heartbeat(s);
                last_change[s] = Instant::now();
                let handle = respawn(s, generation[s], bequest);
                successors.push((s, handle));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_transitions_and_stamps() {
        let b = FaultBoard::new(2);
        assert_eq!(b.shards(), 2);
        assert_eq!(b.health(0), ShardHealth::Running);
        assert_eq!(b.death_micros(0), None);
        assert!(b.quarantine(0), "Running → Quarantined");
        assert_eq!(b.health(0), ShardHealth::Quarantined);
        assert!(!b.quarantine(0), "CAS only fires from Running");
        b.set_health(0, ShardHealth::Dead);
        b.stamp_death(0);
        b.stamp_recovery(0);
        let (d, r) = (b.death_micros(0).unwrap(), b.recovery_micros(0).unwrap());
        assert!(r >= d, "recovery postdates death");
        assert_eq!(b.recovery_micros(1), None);
        b.beat(1);
        b.beat(1);
        assert_eq!(b.heartbeat(1), 2);
        assert_eq!(b.heartbeat(0), 0);
    }

    #[test]
    fn plan_builders_compile_sorted_per_shard() {
        let plan = FaultPlan::new()
            .kill_shard_at(1, 500)
            .stick_shard_at(0, 100)
            .kill_link_at(1, 3, 200)
            .kill_shard_at(7, 10); // out of range, dropped by compile
        assert_eq!(plan.events().len(), 4);
        let inj = FaultInjector::new(&plan, 2);
        assert_eq!(inj.next_due(0, 99), None, "not due yet");
        assert_eq!(inj.next_due(0, 100), Some(FaultKind::StickShard));
        assert_eq!(inj.next_due(0, 100_000), None, "consumed");
        // Shard 1's two events fire in `at` order regardless of
        // insertion order, both due at once.
        assert_eq!(inj.next_due(1, 1_000), Some(FaultKind::KillLink(3)));
        assert_eq!(inj.next_due(1, 1_000), Some(FaultKind::PanicShard));
        assert!(inj.exhausted());
    }

    #[test]
    fn from_rng_is_deterministic_and_bounded() {
        let rng = SimRng::new(42);
        let a = FaultPlan::from_rng(&rng, 8, 4, 0.001, 10_000);
        let b = FaultPlan::from_rng(&rng, 8, 4, 0.001, 10_000);
        assert_eq!(a.events(), b.events(), "same seed, same plan");
        for ev in a.events() {
            assert!(ev.shard < 8);
            assert!(ev.at <= 10_000, "events land inside the horizon");
            if let FaultKind::KillLink(l) = ev.kind {
                assert!(l < 4);
            }
        }
        // A wider horizon with certain rate faults every shard.
        let all = FaultPlan::from_rng(&rng, 4, 2, 1.0, 10);
        assert_eq!(all.events().len(), 4);
        // Different seeds diverge (overwhelmingly likely with 8 shards).
        let c = FaultPlan::from_rng(&SimRng::new(43), 8, 4, 1.0, 10_000);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn empty_plan_and_injector_are_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let inj = FaultInjector::new(&plan, 4);
        assert!(inj.exhausted());
        assert_eq!(inj.next_due(0, u64::MAX), None);
    }
}
