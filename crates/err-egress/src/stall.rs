//! Deterministic stall injection.
//!
//! The paper's central premise is that wormhole downstreams stall
//! unpredictably — but a *test* of that regime must be perfectly
//! predictable, or failures can't be replayed. The injector therefore
//! schedules freeze/release events on the **flush clock** (total flits
//! delivered, see [`LinkSet::flush_clock`]) rather than wall time, and
//! draws randomized schedules from the workspace's seeded
//! [`SimRng`]: same seed, same stalls, same histograms,
//! on any machine at any load.

use std::sync::atomic::{AtomicUsize, Ordering};

use desim::SimRng;

use crate::link::LinkSet;

/// One stall: `link` freezes when the flush clock reaches `start` and
/// thaws once it reaches `start + duration`. A `duration` of
/// [`u64::MAX`] never thaws (an indefinitely dead downstream).
#[derive(Clone, Copy, Debug)]
pub struct StallWindow {
    /// Link to freeze.
    pub link: usize,
    /// Flush-clock reading at which the stall begins.
    pub start: u64,
    /// Stall length in flush-clock cycles; `u64::MAX` = forever.
    pub duration: u64,
}

/// An ordered schedule of stall windows.
#[derive(Clone, Debug, Default)]
pub struct StallPlan {
    windows: Vec<StallWindow>,
}

#[derive(Clone, Copy, Debug)]
struct Event {
    at: u64,
    link: usize,
    freeze: bool,
}

impl StallPlan {
    /// A plan from explicit windows.
    pub fn new(windows: Vec<StallWindow>) -> Self {
        Self { windows }
    }

    /// Freezes `link` at flush-clock `start`, forever.
    pub fn freeze_forever(link: usize, start: u64) -> Self {
        Self::new(vec![StallWindow {
            link,
            start,
            duration: u64::MAX,
        }])
    }

    /// A randomized plan: each link independently stalls at geometric
    /// intervals (per-cycle probability `stall_rate`), for uniformly
    /// distributed durations in `[min_dur, max_dur]`, over flush-clock
    /// horizon `horizon`. Deterministic in `rng`'s seed.
    pub fn from_rng(
        rng: &SimRng,
        n_links: usize,
        horizon: u64,
        stall_rate: f64,
        min_dur: u64,
        max_dur: u64,
    ) -> Self {
        assert!(min_dur <= max_dur);
        let mut windows = Vec::new();
        for link in 0..n_links {
            let mut r = rng.derive(0x57A1_1000 + link as u64);
            let mut t = 0u64;
            loop {
                t = t.saturating_add(r.geometric_gap(stall_rate));
                if t >= horizon {
                    break;
                }
                let dur = if min_dur == max_dur {
                    min_dur
                } else {
                    min_dur
                        + r.uniform_u32(0, (max_dur - min_dur).min(u32::MAX as u64) as u32) as u64
                };
                windows.push(StallWindow {
                    link,
                    start: t,
                    duration: dur,
                });
                // Next stall can only start after this one ends.
                t = t.saturating_add(dur).saturating_add(1);
            }
        }
        Self::new(windows)
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[StallWindow] {
        &self.windows
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn compile(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.windows.len() * 2);
        for w in &self.windows {
            events.push(Event {
                at: w.start,
                link: w.link,
                freeze: true,
            });
            if w.duration != u64::MAX {
                events.push(Event {
                    at: w.start.saturating_add(w.duration),
                    link: w.link,
                    freeze: false,
                });
            }
        }
        // Stable order: by time, releases before freezes at a tie (a
        // zero-gap thaw/refreeze still registers both events).
        events.sort_by_key(|e| (e.at, e.freeze));
        events
    }
}

/// Applies a [`StallPlan`] against a [`LinkSet`] as the flush clock
/// advances. Many flusher threads may poll concurrently; an atomic
/// cursor guarantees each event is applied exactly once.
pub struct StallInjector {
    events: Vec<Event>,
    cursor: AtomicUsize,
}

impl StallInjector {
    /// Compiles `plan` into an injector.
    pub fn new(plan: &StallPlan) -> Self {
        Self {
            events: plan.compile(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Applies every event whose time has come. Cheap when nothing is
    /// due: one atomic load and one clock read.
    pub fn poll(&self, links: &LinkSet) {
        loop {
            // ordering: Acquire pairs with the AcqRel claim CAS below —
            // a poller that observes an advanced cursor is ordered
            // after the claiming poller's freeze/release.
            let idx = self.cursor.load(Ordering::Acquire);
            let Some(e) = self.events.get(idx) else {
                return;
            };
            if e.at > links.flush_clock() {
                return;
            }
            // Claim the event; on a race the loser retries at idx+1.
            // ordering: AcqRel — Release publishes the claim to the
            // Acquire loads above; Acquire orders this poller after
            // the previous claimer when cursors chain.
            if self
                .cursor
                .compare_exchange(idx, idx + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if e.freeze {
                    links.freeze(e.link);
                } else {
                    links.release_stall(e.link);
                }
            }
        }
    }

    /// Whether every scheduled event has been applied.
    pub fn exhausted(&self) -> bool {
        // ordering: Acquire pairs with the AcqRel claim CAS in `poll`
        // so an exhausted verdict is ordered after the last event's
        // application.
        self.cursor.load(Ordering::Acquire) >= self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fires_on_flush_clock() {
        let links = LinkSet::new(2, 8);
        let plan = StallPlan::new(vec![StallWindow {
            link: 1,
            start: 3,
            duration: 2,
        }]);
        let inj = StallInjector::new(&plan);
        inj.poll(&links);
        assert!(!links.is_stalled(1), "clock 0 < start 3");
        for _ in 0..3 {
            links.try_acquire(0);
            links.on_delivered(0);
        }
        inj.poll(&links);
        assert!(links.is_stalled(1), "freezes at clock 3");
        for _ in 0..2 {
            links.try_acquire(0);
            links.on_delivered(0);
        }
        inj.poll(&links);
        assert!(!links.is_stalled(1), "thaws at clock 5");
        assert!(inj.exhausted());
        assert_eq!(links.snapshot()[1].max_stall_cycles, 2);
    }

    #[test]
    fn forever_stall_never_releases() {
        let links = LinkSet::new(1, 8);
        let inj = StallInjector::new(&StallPlan::freeze_forever(0, 0));
        inj.poll(&links);
        assert!(links.is_stalled(0));
        assert!(inj.exhausted(), "no release event scheduled");
    }

    #[test]
    fn from_rng_is_deterministic() {
        let rng = desim::SimRng::new(42);
        let a = StallPlan::from_rng(&rng, 4, 10_000, 0.01, 50, 200);
        let b = StallPlan::from_rng(&rng, 4, 10_000, 0.01, 50, 200);
        assert_eq!(a.windows().len(), b.windows().len());
        assert!(!a.is_empty(), "rate 0.01 over 10k cycles must stall");
        for (x, y) in a.windows().iter().zip(b.windows()) {
            assert_eq!((x.link, x.start, x.duration), (y.link, y.start, y.duration));
            assert!((50..=200).contains(&x.duration));
            assert!(x.start < 10_000);
        }
    }

    #[test]
    fn windows_within_a_link_do_not_overlap() {
        let rng = desim::SimRng::new(7);
        let plan = StallPlan::from_rng(&rng, 2, 50_000, 0.02, 10, 100);
        for link in 0..2 {
            let mut last_end = 0u64;
            for w in plan.windows().iter().filter(|w| w.link == link) {
                assert!(w.start > last_end, "overlapping stalls on link {link}");
                last_end = w.start + w.duration;
            }
        }
    }

    #[test]
    fn concurrent_poll_applies_each_event_once() {
        use std::sync::Arc;
        let links = Arc::new(LinkSet::new(1, 8));
        // 10 zero-length windows, all 20 events due at clock 0.
        let windows: Vec<StallWindow> = (0..10)
            .map(|_| StallWindow {
                link: 0,
                start: 0,
                duration: 0,
            })
            .collect();
        let inj = Arc::new(StallInjector::new(&StallPlan::new(windows)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let links = Arc::clone(&links);
                std::thread::spawn(move || inj.poll(&links))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(inj.exhausted());
        // 10 freezes, but idempotent ones don't double-count events:
        // freeze/release pairs interleave at the same clock, so exact
        // counts depend on ordering; the invariant is "no panic, cursor
        // fully advanced, link state consistent".
        let _ = links.snapshot();
    }
}
