//! Credit-based asynchronous egress for the sharded ERR runtime.
//!
//! The paper's opening argument is that wormhole links stall: "a packet
//! which has begun transmission may be stalled due to lack of buffer
//! space downstream", for a time no scheduler can predict (§1). A
//! synchronous egress callback couples the scheduler's flit clock to
//! that unpredictable downstream — one dead link freezes an entire
//! shard, fairness state and all. This crate decouples them with the
//! standard wormhole machinery, in three pieces:
//!
//! * **Per-shard output ring** ([`spsc`]): the shard worker pushes
//!   served flits into a bounded SPSC ring; a dedicated flusher thread
//!   ([`flusher`]) drains it toward the downstream sink. The
//!   scheduler's clock never waits on delivery.
//! * **Per-link credits** ([`link`]): each downstream link advertises a
//!   credit pool, virtual-channel style. A worker spends one credit per
//!   flit it commits; the flusher returns the credit on delivery. A
//!   stalled link stops returning credits, so its backlog anywhere in
//!   the egress path is bounded by the pool — and the worker reacts by
//!   *parking* the link's flows in the scheduler
//!   ([`Scheduler::park_flow`](err_sched::Scheduler::park_flow)), which
//!   keeps serving everyone else.
//! * **Deterministic stalls** ([`stall`]): a seeded [`StallInjector`]
//!   freezes and thaws links on the flush clock (flits delivered, not
//!   wall time), and a per-link watchdog ([`link::LinkSnapshot`])
//!   reports stall-duration histograms. The stalled-downstream regime
//!   the paper treats analytically becomes a reproducible experiment.
//!
//! The runtime integration (`err-runtime`'s `EgressMode::Buffered`)
//! wires these together; this crate is freestanding and each piece is
//! testable on its own.

#![warn(missing_docs)]

pub mod credit;
pub mod flusher;
pub mod link;
pub mod spsc;
pub mod stall;
pub mod stats;
pub(crate) mod sync;

use std::sync::Arc;

pub use credit::CreditPool;
pub use err_sched::ServedFlit;
pub use flusher::{run_flusher, FlushProgress, FlusherCore};
pub use link::{DeadLinkPolicy, LinkSet, LinkSnapshot, LinkState};
pub use spsc::{spsc_ring, Consumer, Producer};
pub use stall::{StallInjector, StallPlan, StallWindow};
pub use stats::{EgressSnapshot, ShardEgressSnapshot, ShardEgressStats};

/// The downstream sink: where flits go when they leave the scheduler.
///
/// `shard` identifies the shard whose scheduler served the flit.
/// Implementations must be `Send` (the flusher thread owns the sink)
/// but need not be `Sync` — each shard gets its own sink value.
///
/// Any `FnMut(usize, &ServedFlit) + Send` closure is an `Egress` via
/// the blanket impl, so callback-style callers keep working unchanged:
///
/// ```
/// use err_egress::Egress;
/// use err_sched::ServedFlit;
///
/// fn takes_egress(mut e: impl Egress, f: &ServedFlit) {
///     e.emit(0, f);
/// }
///
/// let mut n = 0u64;
/// takes_egress(
///     |_shard: usize, _flit: &ServedFlit| n += 1,
///     &ServedFlit { flow: 0, packet: 0, arrival: 0, len: 1, flit_index: 0 },
/// );
/// ```
pub trait Egress: Send {
    /// Consumes one flit served by `shard`'s scheduler.
    fn emit(&mut self, shard: usize, flit: &ServedFlit);

    /// Refusable delivery (DESIGN.md §11.2): the flusher calls this and
    /// returns the flit's link credit **only on acceptance**. Returning
    /// `false` leaves the flit in the link's pending queue with its
    /// credit held — the hook a fabric forwarder uses to withhold
    /// credits while the downstream node's ingress has no room, which
    /// is what propagates wormhole backpressure hop by hop.
    ///
    /// The default accepts unconditionally by delegating to
    /// [`emit`](Egress::emit). An implementation that refuses must
    /// eventually accept (or the flit's link must die / enter drain
    /// dead-lettering), or the egress drain cannot complete.
    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {
        self.emit(shard, flit);
        true
    }
}

impl<F: FnMut(usize, &ServedFlit) + Send> Egress for F {
    fn emit(&mut self, shard: usize, flit: &ServedFlit) {
        self(shard, flit)
    }

    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {
        // A bare closure sink has no refusal signal: it always accepts,
        // so the non-blocking path is `emit` spelled out — never the
        // trait default's blocking delegation (which this override
        // exists to make explicit; see the try-emit-override lint).
        self(shard, flit);
        true
    }
}

/// A cloneable, `Sync`-shareable [`Egress`] over one underlying sink.
///
/// This is the sink handle stealing under buffered egress relies on
/// (DESIGN.md §13.5): a migrated flow's flits must reach the *same*
/// downstream sink from a different shard's flusher, so every flusher
/// holds a clone of one `SharedEgress`. `emit` serializes through a
/// mutex — a lock, but on the *flusher's* delivery path, never on a
/// scheduler's flit clock; the per-flow ordering the wormhole needs is
/// supplied upstream by the egress-retire fence (a donor flips a flow's
/// home only after its last victim flit has retired), not by this lock.
/// The handle is `Sync` by construction — asserted below, since the
/// fence design depends on it.
pub struct SharedEgress<E: Egress> {
    inner: Arc<std::sync::Mutex<E>>,
}

// `SharedEgress` must stay shareable across flusher threads (§13.5);
// a field change that silently dropped `Sync` would re-gate stealing
// out of buffered mode.
const _: fn() = || {
    fn assert_sync_send<T: Sync + Send>() {}
    fn holds_for<E: Egress>() {
        assert_sync_send::<SharedEgress<E>>();
    }
    let _ = holds_for::<fn(usize, &ServedFlit)>;
};

impl<E: Egress> SharedEgress<E> {
    /// Wraps `sink` for shared use.
    pub fn new(sink: E) -> Self {
        Self {
            inner: Arc::new(std::sync::Mutex::new(sink)),
        }
    }
}

impl<E: Egress> Clone for SharedEgress<E> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E: Egress> Egress for SharedEgress<E> {
    fn emit(&mut self, shard: usize, flit: &ServedFlit) {
        self.inner
            .lock()
            .expect("shared egress sink poisoned")
            .emit(shard, flit);
    }

    // Forward instead of inheriting the default: the default would
    // call `emit`, turning the inner sink's refusal into a block held
    // *under the lock* — every other holder of this sink would stall
    // behind one refused flit.
    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {
        self.inner
            .lock()
            .expect("shared egress sink poisoned")
            .try_emit(shard, flit)
    }
}

/// Configuration of the buffered egress path.
#[derive(Clone, Debug)]
pub struct BufferedConfig {
    /// Capacity of each shard's output ring, in flits.
    pub ring_capacity: usize,
    /// Credits per downstream link — the most flits that can be
    /// committed-but-undelivered to one link at a time.
    pub credits: u64,
    /// Number of downstream links. Flows map to links statically:
    /// `link = flow % n_links`, unless `route_table` overrides it.
    pub n_links: usize,
    /// Optional flow-indexed routing table (DESIGN.md §11.1): entry
    /// `flow` names the link carrying that flow, overriding the modulo
    /// default. Flows past the table's end fall back to the modulo
    /// rule. The fabric compiles one table per node from its topology.
    pub route_table: Option<Arc<[u32]>>,
    /// Optional deterministic stall schedule applied on the flush
    /// clock.
    pub stall_plan: Option<StallPlan>,
    /// Flush-clock cycles without a credit return (while credits are
    /// outstanding) before a link is declared [`LinkState::Dead`];
    /// `None` disables the dead-link watchdog (DESIGN.md §9.3).
    pub dead_link_deadline: Option<u64>,
    /// What happens to flits bound for a dead link.
    pub dead_link_policy: DeadLinkPolicy,
}

impl Default for BufferedConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 1024,
            credits: 64,
            n_links: 4,
            route_table: None,
            stall_plan: None,
            dead_link_deadline: None,
            dead_link_policy: DeadLinkPolicy::default(),
        }
    }
}

/// Handle over a running buffered-egress stage: freeze/thaw links and
/// snapshot the counters while the runtime is live. Cloneable; all
/// clones view the same links.
#[derive(Clone)]
pub struct EgressController {
    links: Arc<LinkSet>,
    injector: Option<Arc<StallInjector>>,
    shard_stats: Vec<Arc<ShardEgressStats>>,
}

impl EgressController {
    /// Bundles the shared egress state into a controller.
    pub fn new(
        links: Arc<LinkSet>,
        injector: Option<Arc<StallInjector>>,
        shard_stats: Vec<Arc<ShardEgressStats>>,
    ) -> Self {
        Self {
            links,
            injector,
            shard_stats,
        }
    }

    /// The shared link set.
    pub fn links(&self) -> &Arc<LinkSet> {
        &self.links
    }

    /// Manually freezes `link` (same effect as an injector event).
    pub fn freeze(&self, link: usize) {
        self.links.freeze(link);
    }

    /// Manually thaws `link`.
    pub fn release_stall(&self, link: usize) {
        self.links.release_stall(link);
    }

    /// Manually declares `link` dead (same effect as the deadline
    /// watchdog firing).
    pub fn declare_dead(&self, link: usize) {
        self.links.declare_dead(link);
    }

    /// Revives a dead `link`: under
    /// [`DeadLinkPolicy::HoldForRecovery`] its held flits deliver and
    /// its parked flows resume.
    pub fn resurrect(&self, link: usize) {
        self.links.resurrect(link);
    }

    /// Lifecycle state of `link`.
    pub fn link_state(&self, link: usize) -> LinkState {
        self.links.state(link)
    }

    /// Whether a configured stall plan has fully played out (`true`
    /// when no plan was configured).
    pub fn stall_plan_exhausted(&self) -> bool {
        self.injector.as_ref().is_none_or(|i| i.exhausted())
    }

    /// Snapshots per-shard and per-link egress counters.
    pub fn snapshot(&self) -> EgressSnapshot {
        EgressSnapshot {
            shards: self.shard_stats.iter().map(|s| s.snapshot()).collect(),
            links: self.links.snapshot(),
        }
    }
}
