//! The flusher: one thread per shard draining that shard's output ring.
//!
//! The flusher is the boundary between the scheduler's flit clock and
//! the downstream's delivery clock — the decoupling the paper's
//! analysis presumes. It pops flits from the shard's SPSC ring, routes
//! each to its link, and delivers through the caller's sink unless the
//! link is frozen, in which case the flit waits in a per-link pending
//! queue. Pending flits hold their link credits, so a frozen link's
//! buffered backlog is bounded by the credit pool no matter how long
//! the stall lasts.
//!
//! Ordering: per-link order is exactly ring order (pending queues are
//! drained before fresh ring flits for the same link); flits of
//! different links may reorder, which is fine — they leave on
//! different channels.

use std::collections::VecDeque;
// The `FlushProgress` watermark goes through the loom shim so the
// §13.5 retire fence is model-checkable; the `closed` latch crosses
// the runtime↔egress crate boundary in `run_flusher`'s signature and
// stays a std atomic (models drive `FlusherCore::step` directly).
use crate::sync::{AtomicU64, Ordering};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use err_sched::ServedFlit;

use crate::link::{DeadLinkPolicy, LinkSet};
use crate::spsc::Consumer;
use crate::stall::StallInjector;
use crate::stats::ShardEgressStats;
use crate::Egress;

/// Max ring pops per [`FlusherCore::step`] call, so one step can't
/// monopolize the thread when the worker is producing at full tilt.
const BURST: usize = 256;

/// Idle rounds of pure spinning before the flusher starts sleeping.
const SPIN_ROUNDS: u32 = 64;

/// First sleep once spinning gives up. Doubles per idle round.
const BACKOFF_FLOOR: std::time::Duration = std::time::Duration::from_micros(5);

/// Parking cap: the longest a flusher sleeps between ring checks.
/// Bounds wake-up latency when a long-frozen link finally thaws or the
/// worker resumes producing after a lull. The cap matters for
/// throughput, not just latency: a sleeping flusher returns no link
/// credits, and with small credit pools the workers park flows and
/// stall behind it — a 1 ms cap measurably regressed the stalled-
/// downstream bench at 4-8 shards on an oversubscribed core, so the
/// cap stays within 2x of the fixed 50 us period it replaced.
const BACKOFF_CAP: std::time::Duration = std::time::Duration::from_micros(100);

/// The flusher's retire watermark (DESIGN.md §13.5): a single monotone
/// cursor a stealing donor reads to prove its victim's flits have left
/// the egress path before the flow's home flips.
///
/// The value is the flusher's cumulative ring-pop count, published
/// **only at pending-free instants** — moments when every popped flit
/// has been delivered or dead-lettered. Because pops follow ring order
/// and the worker's pushes follow service order, `retired() >= s`
/// proves the first `s` flits the worker ever pushed are all disposed.
/// A two-counter design (pops + pending gauge) would admit a
/// publication race where a reader pairs a fresh pop count with a stale
/// gauge; the single conditional watermark cannot.
pub struct FlushProgress {
    watermark: AtomicU64,
}

impl Default for FlushProgress {
    fn default() -> Self {
        Self {
            watermark: AtomicU64::new(0),
        }
    }
}

impl FlushProgress {
    /// The latest pending-free pop count: every one of the first
    /// `retired()` flits pushed to this shard's ring has been delivered
    /// or dead-lettered.
    pub fn retired(&self) -> u64 {
        // ordering: Acquire pairs with the Release publish in
        // `FlusherCore::publish_progress` — a donor that reads
        // `retired() >= s` must also observe the deliveries behind it
        // (modeled: model_flush_progress_retire_fence).
        // [pair: flush-retire @ self]
        self.watermark.load(Ordering::Acquire)
    }

    fn publish(&self, popped: u64) {
        // ordering: Release — see `retired`. Monotone by construction:
        // `popped` never decreases and only this flusher writes.
        // [pair: flush-retire @ self]
        self.watermark.store(popped, Ordering::Release);
    }
}

/// Single-threaded flusher state machine. Split from the thread loop so
/// tests (and proptests) can drive it step-by-step deterministically.
pub struct FlusherCore {
    shard: usize,
    rx: Consumer<ServedFlit>,
    /// Flits popped from the ring but stuck behind a frozen link,
    /// per link, in ring order.
    pending: Vec<VecDeque<ServedFlit>>,
    pending_total: usize,
    /// Cumulative ring pops; the raw material of [`FlushProgress`].
    popped: u64,
    /// Flits dead-lettered since the last [`take_dead_lettered`]
    /// (DESIGN.md §9.3).
    ///
    /// [`take_dead_lettered`]: FlusherCore::take_dead_lettered
    dead_lettered: u64,
    /// Per link: whether the current pending backlog was ever observed
    /// held behind a dead link, so deliveries out of it after a
    /// resurrect count as replays ([`LinkSet::on_replayed`], DESIGN.md
    /// §14.2). Cleared whenever the backlog empties.
    dead_seen: Vec<bool>,
}

impl FlusherCore {
    /// A flusher for `shard`, draining `rx` toward `n_links` links.
    pub fn new(shard: usize, rx: Consumer<ServedFlit>, n_links: usize) -> Self {
        Self {
            shard,
            rx,
            pending: (0..n_links).map(|_| VecDeque::new()).collect(),
            pending_total: 0,
            popped: 0,
            dead_lettered: 0,
            dead_seen: vec![false; n_links],
        }
    }

    /// Cumulative flits popped from the shard's output ring.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Publishes the retire watermark when (and only when) no popped
    /// flit is still pending — the §13.5 invariant `FlushProgress`
    /// documents. The thread loop calls this once per pump.
    pub fn publish_progress(&self, progress: &FlushProgress) {
        if self.pending_total == 0 {
            progress.publish(self.popped);
        }
    }

    /// Flits currently parked behind `link`'s stall.
    pub fn pending_len(&self, link: usize) -> usize {
        self.pending[link].len()
    }

    /// Flits dead-lettered since the last call; resets the counter.
    /// The thread loop uses this as a progress signal — a burst of
    /// dead-letters is work done even though nothing reached the sink.
    pub fn take_dead_lettered(&mut self) -> u64 {
        std::mem::take(&mut self.dead_lettered)
    }

    /// Whether both the ring and every pending queue are empty.
    pub fn is_idle(&mut self) -> bool {
        self.pending_total == 0 && self.rx.is_empty()
    }

    /// Offers `flit` to the sink; returns the credit and advances the
    /// flush clock only on acceptance (DESIGN.md §11.2 — a refusing
    /// sink keeps the credit withheld, which is how a fabric forwarder
    /// propagates downstream backpressure into this node's scheduler).
    fn try_deliver<E: Egress + ?Sized>(
        &self,
        flit: &ServedFlit,
        link: usize,
        links: &LinkSet,
        injector: Option<&StallInjector>,
        sink: &mut E,
    ) -> bool {
        if !sink.try_emit(self.shard, flit) {
            return false;
        }
        links.on_delivered(link);
        // The clock moved: stall events may now be due. Polling per
        // delivery keeps single-shard schedules cycle-exact.
        if let Some(inj) = injector {
            inj.poll(links);
        }
        true
    }

    /// One pump: drain deliverable pending flits, then pop up to
    /// `BURST` ring flits, delivering or parking each. Returns the
    /// number delivered to the sink.
    pub fn step<E: Egress + ?Sized>(
        &mut self,
        links: &LinkSet,
        injector: Option<&StallInjector>,
        sink: &mut E,
    ) -> u64 {
        if let Some(inj) = injector {
            inj.poll(links);
        }
        links.poll_deadlines();
        let drop_dead = links.policy() == DeadLinkPolicy::DropAndAccount;
        let mut delivered = 0u64;
        // Pending first: per-link FIFO requires stalled flits to leave
        // before fresh ones for the same link.
        if self.pending_total > 0 {
            for link in 0..self.pending.len() {
                if links.is_dead(link) {
                    if drop_dead {
                        // The link died under its backlog: the whole
                        // queue dead-letters, in order, credits
                        // returning as it goes (§9.3).
                        while self.pending[link].pop_front().is_some() {
                            self.pending_total -= 1;
                            links.on_dead_letter(link);
                            self.dead_lettered += 1;
                        }
                        self.dead_seen[link] = false;
                        continue;
                    }
                    // HoldForRecovery: remember this backlog crossed a
                    // death window, so its eventual deliveries count as
                    // replays (§14.2).
                    if !self.pending[link].is_empty() {
                        self.dead_seen[link] = true;
                    }
                }
                while !self.pending[link].is_empty() && !links.blocked(link) {
                    let flit = *self.pending[link].front().expect("checked non-empty");
                    if !self.try_deliver(&flit, link, links, injector, sink) {
                        // Sink refusal: the head flit keeps its credit
                        // and per-link FIFO holds everything behind it.
                        break;
                    }
                    self.pending[link].pop_front();
                    self.pending_total -= 1;
                    if self.dead_seen[link] {
                        links.on_replayed(link);
                    }
                    delivered += 1;
                }
                if self.pending[link].is_empty() {
                    self.dead_seen[link] = false;
                }
            }
        }
        for _ in 0..BURST {
            let Some(flit) = self.rx.pop() else { break };
            self.popped += 1;
            let link = links.route(flit.flow);
            if drop_dead && links.is_dead(link) {
                links.on_dead_letter(link);
                self.dead_lettered += 1;
            } else if links.blocked(link)
                || !self.pending[link].is_empty()
                || !self.try_deliver(&flit, link, links, injector, sink)
            {
                self.pending[link].push_back(flit);
                self.pending_total += 1;
                if links.is_dead(link) {
                    // Parked behind a dead link under HoldForRecovery
                    // (DropAndAccount never reaches here dead): this
                    // backlog crossed a death window, so its eventual
                    // deliveries count as replays (§14.2).
                    self.dead_seen[link] = true;
                }
                // Every pending flit holds a credit, so the stall
                // buffer is bounded by the credit pool.
                debug_assert!(
                    self.pending[link].len() as u64 <= links.credits_per_link(),
                    "pending overflow on link {link}"
                );
            } else {
                delivered += 1;
            }
        }
        delivered
    }

    /// Shutdown path for [`DeadLinkPolicy::HoldForRecovery`]: a dead
    /// link blocks even in drain mode, so flits held behind it would
    /// strand the flusher forever. Once the runtime is closed, the
    /// thread loop calls this to dead-letter every flit still held
    /// behind a dead link — the honest outcome when the downstream
    /// never came back. Returns the number dead-lettered.
    pub fn finalize_dead_letters(&mut self, links: &LinkSet) -> u64 {
        let mut n = 0u64;
        for link in 0..self.pending.len() {
            // `is_dead` is rechecked per pop, not once per queue: a
            // `resurrect` racing this finalize (the monitor healing a
            // link in the same instant the drain gives up on it) must
            // not have the rest of the backlog dead-lettered under a
            // now-live link — the remainder stays pending and the next
            // `step` delivers it as a replay (§14.2).
            while !self.pending[link].is_empty() && links.is_dead(link) {
                self.pending[link].pop_front();
                self.pending_total -= 1;
                links.on_dead_letter(link);
                n += 1;
            }
            if self.pending[link].is_empty() {
                self.dead_seen[link] = false;
            }
        }
        self.dead_lettered += n;
        n
    }
}

/// Thread body: pumps `core` until `closed` is set *and* everything
/// buffered has been delivered. The runtime sets `closed` only after
/// the shard worker has exited and [`LinkSet::set_draining`] is on, so
/// exit implies no flit is stranded.
pub fn run_flusher<E: Egress>(
    mut core: FlusherCore,
    links: Arc<LinkSet>,
    injector: Option<Arc<StallInjector>>,
    closed: Arc<AtomicBool>,
    stats: Arc<ShardEgressStats>,
    progress: Arc<FlushProgress>,
    mut sink: E,
) {
    let inj = injector.as_deref();
    let mut idle_rounds = 0u32;
    let mut backoff = BACKOFF_FLOOR;
    loop {
        let n = core.step(&links, inj, &mut sink);
        let dead = core.take_dead_lettered();
        core.publish_progress(&progress);
        if n > 0 || dead > 0 {
            if n > 0 {
                stats.flushed_flits.fetch_add(n, Ordering::Relaxed);
            }
            idle_rounds = 0;
            backoff = BACKOFF_FLOOR;
            continue;
        }
        // ordering: Acquire pairs with the runtime's Release
        // `egress_closed` store at shutdown (err-runtime
        // drain_within) — the one-way "workers are gone" latch.
        // [pair: egress-closed @ crates/err-runtime/src/lib.rs]
        if closed.load(Ordering::Acquire) {
            if core.is_idle() {
                return;
            }
            // Nothing deliverable and the worker is gone: whatever is
            // still pending sits behind a dead HoldForRecovery link.
            // Dead-letter it so shutdown terminates (§9.3).
            if core.finalize_dead_letters(&links) > 0 {
                continue;
            }
        }
        idle_rounds += 1;
        if idle_rounds < SPIN_ROUNDS {
            std::hint::spin_loop();
        } else {
            // Long-idle (e.g. mid-stall with nothing deliverable):
            // exponential backoff from BACKOFF_FLOOR to the parking
            // cap. Short lulls cost microseconds of latency; a link
            // frozen for seconds costs one wake-up per millisecond
            // instead of the fixed-period busy-sleep this replaced.
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::spsc_ring;

    fn flit(flow: usize, packet: u64, idx: u32, len: u32) -> ServedFlit {
        ServedFlit {
            flow,
            packet,
            arrival: 0,
            len,
            flit_index: idx,
        }
    }

    #[test]
    fn delivers_in_ring_order_when_unstalled() {
        let links = LinkSet::new(2, 8);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 2);
        for i in 0..6u64 {
            assert!(links.try_acquire((i % 2) as usize));
            tx.push(flit((i % 2) as usize, i, 0, 1)).unwrap();
        }
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 6);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert!(core.is_idle());
        assert_eq!(links.flush_clock(), 6);
    }

    #[test]
    fn frozen_link_parks_flits_others_flow() {
        let links = LinkSet::new(2, 8);
        links.freeze(1);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 2);
        // Interleaved flits for links 0 and 1.
        for i in 0..8u64 {
            assert!(links.try_acquire((i % 2) as usize));
            tx.push(flit((i % 2) as usize, i, 0, 1)).unwrap();
        }
        let out = std::sync::Mutex::new(Vec::new());
        let mut sink = |_s: usize, f: &ServedFlit| out.lock().unwrap().push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 4);
        assert_eq!(
            *out.lock().unwrap(),
            vec![0, 2, 4, 6],
            "even packets ride link 0"
        );
        assert_eq!(core.pending_len(1), 4, "odd packets wait out the stall");
        // Thaw: pending leaves first, in order.
        links.release_stall(1);
        assert_eq!(core.step(&links, None, &mut sink), 4);
        assert_eq!(*out.lock().unwrap(), vec![0, 2, 4, 6, 1, 3, 5, 7]);
        assert!(core.is_idle());
    }

    #[test]
    fn per_link_fifo_across_thaw_boundary() {
        // A flit arriving while its link thaws must not overtake the
        // pending queue.
        let links = LinkSet::new(1, 8);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 1);
        links.freeze(0);
        links.try_acquire(0);
        tx.push(flit(0, 0, 0, 1)).unwrap();
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        core.step(&links, None, &mut sink);
        assert_eq!(core.pending_len(0), 1);
        links.release_stall(0);
        // New flit behind the pending one.
        links.try_acquire(0);
        tx.push(flit(0, 1, 0, 1)).unwrap();
        core.step(&links, None, &mut sink);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn drop_policy_dead_letters_backlog_and_fresh_flits() {
        let links = LinkSet::with_fault_policy(2, 8, None, DeadLinkPolicy::DropAndAccount);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 2);
        // Park two flits behind a stall on link 1, then kill the link.
        links.freeze(1);
        for i in 0..2u64 {
            links.try_acquire(1);
            tx.push(flit(1, i, 0, 1)).unwrap();
        }
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 0);
        assert_eq!(core.pending_len(1), 2);
        links.declare_dead(1);
        // Fresh flit for the dead link plus one for the live link.
        links.try_acquire(1);
        tx.push(flit(1, 2, 0, 1)).unwrap();
        links.try_acquire(0);
        tx.push(flit(0, 3, 0, 1)).unwrap();
        assert_eq!(core.step(&links, None, &mut sink), 1, "live link delivers");
        assert_eq!(out, vec![3]);
        assert_eq!(core.take_dead_lettered(), 3, "backlog + fresh flit");
        assert!(core.is_idle());
        let snap = links.snapshot();
        assert_eq!(snap[1].dead_letter_flits, 3);
        assert_eq!(
            snap[1].credits_available, 8,
            "dead-letters returned every credit"
        );
    }

    #[test]
    fn hold_policy_holds_then_delivers_on_resurrect() {
        let links = LinkSet::with_fault_policy(1, 8, None, DeadLinkPolicy::HoldForRecovery);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 1);
        links.declare_dead(0);
        for i in 0..3u64 {
            links.try_acquire(0);
            tx.push(flit(0, i, 0, 1)).unwrap();
        }
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 0);
        assert_eq!(core.pending_len(0), 3, "held, not dropped");
        assert_eq!(core.take_dead_lettered(), 0);
        links.resurrect(0);
        assert_eq!(core.step(&links, None, &mut sink), 3);
        assert_eq!(out, vec![0, 1, 2], "held flits deliver in order");
    }

    #[test]
    fn replay_counter_tracks_death_held_deliveries_only() {
        let links = LinkSet::with_fault_policy(2, 8, None, DeadLinkPolicy::HoldForRecovery);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 2);
        // Link 0 dies under a 3-flit backlog; link 1 stays healthy.
        links.declare_dead(0);
        for i in 0..3u64 {
            links.try_acquire(0);
            tx.push(flit(0, i, 0, 1)).unwrap();
        }
        links.try_acquire(1);
        tx.push(flit(1, 10, 0, 1)).unwrap();
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 1, "live link flows");
        // Another step observes the held backlog behind the dead link.
        assert_eq!(core.step(&links, None, &mut sink), 0);
        links.resurrect(0);
        assert_eq!(core.step(&links, None, &mut sink), 3);
        let snap = links.snapshot();
        assert_eq!(snap[0].replayed, 3, "held flits replay on resurrect");
        assert_eq!(snap[1].replayed, 0, "normal deliveries are not replays");
        // Post-replay traffic on link 0 is normal again.
        links.try_acquire(0);
        tx.push(flit(0, 20, 0, 1)).unwrap();
        assert_eq!(core.step(&links, None, &mut sink), 1);
        assert_eq!(links.snapshot()[0].replayed, 3, "replay window closed");
        assert_eq!(out, vec![10, 0, 1, 2, 20]);
    }

    #[test]
    fn finalize_rechecks_death_per_pop_so_resurrect_cannot_strand() {
        // Regression (§14.2): `finalize_dead_letters` used to test
        // `is_dead` once per queue and then drain it unconditionally —
        // a `resurrect` landing mid-drain had the rest of the backlog
        // dead-lettered under a live link. The per-pop recheck leaves
        // the remainder pending for the next step to deliver.
        let links = LinkSet::with_fault_policy(1, 8, None, DeadLinkPolicy::HoldForRecovery);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 1);
        links.declare_dead(0);
        for i in 0..3u64 {
            links.try_acquire(0);
            tx.push(flit(0, i, 0, 1)).unwrap();
        }
        let mut out = Vec::new();
        let mut sink = |_s: usize, f: &ServedFlit| out.push(f.packet);
        assert_eq!(core.step(&links, None, &mut sink), 0);
        assert_eq!(core.pending_len(0), 3);
        // Resurrect *before* finalize: nothing may be dead-lettered.
        links.resurrect(0);
        assert_eq!(core.finalize_dead_letters(&links), 0);
        assert_eq!(core.pending_len(0), 3, "backlog survives the finalize");
        assert_eq!(core.step(&links, None, &mut sink), 3);
        assert_eq!(out, vec![0, 1, 2]);
        let snap = links.snapshot();
        assert_eq!(snap[0].dead_letter_flits, 0);
        assert_eq!(snap[0].replayed, 3);
        assert_eq!(snap[0].credits_available, 8);
    }

    #[test]
    fn resurrect_racing_shutdown_strands_no_flit() {
        // Threaded regression for the same race: a resurrect fired from
        // another thread while the closed flusher is finalizing must
        // leave every flit either delivered or dead-lettered — never
        // stranded — and every credit returned.
        for round in 0..50u64 {
            let links = Arc::new(LinkSet::with_fault_policy(
                1,
                16,
                None,
                DeadLinkPolicy::HoldForRecovery,
            ));
            let closed = Arc::new(AtomicBool::new(false));
            let stats = Arc::new(ShardEgressStats::default());
            let progress = Arc::new(FlushProgress::default());
            let (mut tx, rx) = spsc_ring(32);
            let core = FlusherCore::new(0, rx, 1);
            let out = Arc::new(std::sync::Mutex::new(Vec::new()));
            let sink = {
                let out = Arc::clone(&out);
                move |_s: usize, f: &ServedFlit| out.lock().unwrap().push(f.packet)
            };
            links.declare_dead(0);
            const PUSHED: u64 = 8;
            for i in 0..PUSHED {
                assert!(links.try_acquire(0));
                tx.push(flit(0, i, 0, 1)).unwrap();
            }
            let h = {
                let (links, closed) = (Arc::clone(&links), Arc::clone(&closed));
                let (stats, progress) = (Arc::clone(&stats), Arc::clone(&progress));
                std::thread::spawn(move || {
                    run_flusher(core, links, None, closed, stats, progress, sink)
                })
            };
            // Jitter the interleaving: closed first, resurrect racing
            // the finalize that close triggers.
            closed.store(true, Ordering::Release);
            for _ in 0..(round % 7) * 40 {
                std::hint::spin_loop();
            }
            links.resurrect(0);
            h.join().unwrap();
            let snap = links.snapshot();
            let delivered = out.lock().unwrap().len() as u64;
            assert_eq!(
                delivered + snap[0].dead_letter_flits,
                PUSHED,
                "round {round}: every flit disposed exactly once"
            );
            assert_eq!(
                snap[0].credits_available, 16,
                "round {round}: all credits returned"
            );
        }
    }

    #[test]
    fn finalize_dead_letters_unsticks_held_flits() {
        let links = LinkSet::with_fault_policy(1, 8, None, DeadLinkPolicy::HoldForRecovery);
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 1);
        links.declare_dead(0);
        for i in 0..2u64 {
            links.try_acquire(0);
            tx.push(flit(0, i, 0, 1)).unwrap();
        }
        let mut sink = |_s: usize, _f: &ServedFlit| panic!("nothing should deliver");
        assert_eq!(core.step(&links, None, &mut sink), 0);
        links.set_draining(true);
        assert_eq!(
            core.step(&links, None, &mut sink),
            0,
            "death outlasts drain"
        );
        assert_eq!(core.finalize_dead_letters(&links), 2);
        assert!(core.is_idle());
        assert_eq!(links.snapshot()[0].dead_letter_flits, 2);
    }

    #[test]
    fn run_flusher_drains_and_exits() {
        let links = Arc::new(LinkSet::new(2, 64));
        let closed = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ShardEgressStats::default());
        let (mut tx, rx) = spsc_ring(64);
        let core = FlusherCore::new(3, rx, 2);
        let out = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = {
            let out = Arc::clone(&out);
            move |s: usize, f: &ServedFlit| out.lock().unwrap().push((s, f.packet))
        };
        let progress = Arc::new(FlushProgress::default());
        let h = {
            let links = Arc::clone(&links);
            let closed = Arc::clone(&closed);
            let stats = Arc::clone(&stats);
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                run_flusher(core, links, None, closed, stats, progress, sink)
            })
        };
        for i in 0..100u64 {
            links.try_acquire((i % 2) as usize);
            let mut f = flit((i % 2) as usize, i, 0, 1);
            loop {
                match tx.push(f) {
                    Ok(()) => break,
                    Err(back) => {
                        f = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        closed.store(true, Ordering::Release);
        h.join().unwrap();
        let out = out.lock().unwrap();
        assert_eq!(out.len(), 100, "no flit stranded");
        assert!(out.iter().all(|&(s, _)| s == 3), "shard id propagated");
        assert_eq!(stats.snapshot().flushed_flits, 100);
        assert_eq!(links.flush_clock(), 100);
        assert_eq!(
            progress.retired(),
            100,
            "watermark reaches the full pop count once everything retired"
        );
    }

    #[test]
    fn progress_watermark_holds_while_flits_pend() {
        // A frozen link keeps popped flits pending; the watermark must
        // not advance past the last pending-free instant, even though
        // the pop count has (§13.5 — the fence would otherwise declare
        // an undelivered flit retired).
        let links = LinkSet::new(2, 8);
        let progress = FlushProgress::default();
        let (mut tx, rx) = spsc_ring(16);
        let mut core = FlusherCore::new(0, rx, 2);
        let mut sink = |_s: usize, _f: &ServedFlit| {};
        links.try_acquire(0);
        tx.push(flit(0, 0, 0, 1)).unwrap();
        core.step(&links, None, &mut sink);
        core.publish_progress(&progress);
        assert_eq!(progress.retired(), 1);
        links.freeze(1);
        links.try_acquire(1);
        tx.push(flit(1, 1, 0, 1)).unwrap();
        links.try_acquire(0);
        tx.push(flit(0, 2, 0, 1)).unwrap();
        core.step(&links, None, &mut sink);
        core.publish_progress(&progress);
        assert_eq!(core.popped(), 3);
        assert_eq!(
            progress.retired(),
            1,
            "pending flit on link 1 pins the watermark"
        );
        links.release_stall(1);
        core.step(&links, None, &mut sink);
        core.publish_progress(&progress);
        assert_eq!(progress.retired(), 3, "thaw releases the watermark");
    }
}
