//! Synchronization primitives for the lock-free cores, switched between
//! `std` and the vendored `loom` model checker by the `loom` cargo
//! feature.
//!
//! Only the modules whose interleavings are model-checked go through
//! this shim ([`crate::spsc`], [`crate::credit`], [`crate::link`]'s
//! liveness flags and clocks, [`crate::flusher`]'s `FlushProgress`
//! watermark); everything else uses `std::sync::atomic` directly. The
//! feature is off by default and only enabled by `err-check`'s model
//! suite (`cargo test -p err-check --features model`), so every normal
//! build compiles the `std` arm — where the [`UnsafeCell`] wrapper is
//! a zero-cost `#[inline]` veneer over `std::cell::UnsafeCell`.

#[cfg(feature = "loom")]
pub(crate) use loom::cell::UnsafeCell;
#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// `std` stand-in for `loom::cell::UnsafeCell`: the same closure-based
/// access API, compiled down to plain raw-pointer access.
#[cfg(not(feature = "loom"))]
#[derive(Debug)]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(feature = "loom"))]
impl<T> UnsafeCell<T> {
    #[inline]
    pub(crate) fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    /// Immutable (read) access to the cell contents.
    #[inline]
    pub(crate) fn with<F, R>(&self, f: F) -> R
    where
        F: FnOnce(*const T) -> R,
    {
        f(self.0.get())
    }

    /// Mutable (write) access to the cell contents.
    #[inline]
    pub(crate) fn with_mut<F, R>(&self, f: F) -> R
    where
        F: FnOnce(*mut T) -> R,
    {
        f(self.0.get())
    }
}
