//! Per-link credit counters, stall flags, and the stall watchdog.
//!
//! This is the wormhole virtual-channel flow-control model: a link
//! advertises `credits` flit buffers; the sender (a shard worker)
//! consumes one credit per flit it commits to egress, and the receiver
//! (the flusher, standing in for the downstream router) returns the
//! credit when the flit is actually delivered. A stalled link simply
//! stops returning credits, so the backpressure a slow downstream can
//! exert is bounded by the credit pool — exactly the regime the paper
//! assumes when it argues that "a packet which has begun transmission
//! may be stalled due to lack of buffer space downstream" must not
//! freeze the scheduler (§1).
//!
//! All state is atomic: workers acquire credits, flushers release them,
//! and the [`StallInjector`](crate::stall::StallInjector) freezes links,
//! each from its own thread without locks on the fast path. Time is the
//! **flush clock** — the total number of flits delivered across all
//! links — not wall time, so stall durations are deterministic and
//! reproducible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use desim::Histogram;
use serde::Serialize;

/// Geometry of the stall-duration histograms (flush-clock cycles per
/// bin × bins). Stalls longer than 64k delivered flits land in the
/// overflow bucket; `max_stall_cycles` still records them exactly.
const STALL_HIST_BIN: u64 = 256;
const STALL_HIST_BINS: usize = 256;

/// State of one downstream link.
pub struct LinkState {
    /// Credits currently available to senders.
    credits: AtomicU64,
    /// Whether the downstream is refusing flits.
    stalled: AtomicBool,
    /// Flush-clock reading when the current stall began (valid while
    /// `stalled`).
    stall_began: AtomicU64,
    /// Stalls observed so far (frozen at least once).
    stall_events: AtomicU64,
    /// Longest completed stall, in flush-clock cycles.
    max_stall_cycles: AtomicU64,
    /// Flits delivered downstream on this link.
    delivered: AtomicU64,
    /// Peak credits outstanding at once (high-water mark of buffered
    /// flits committed to this link).
    outstanding_peak: AtomicU64,
    /// Completed stall durations. Watchdog-only state, touched once per
    /// stall release — never on the per-flit path — so a `Mutex` is fine.
    stall_hist: Mutex<Histogram>,
}

impl LinkState {
    fn new(credits: u64) -> Self {
        Self {
            credits: AtomicU64::new(credits),
            stalled: AtomicBool::new(false),
            stall_began: AtomicU64::new(0),
            stall_events: AtomicU64::new(0),
            max_stall_cycles: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            outstanding_peak: AtomicU64::new(0),
            stall_hist: Mutex::new(Histogram::new(STALL_HIST_BIN, STALL_HIST_BINS)),
        }
    }
}

/// Point-in-time view of one link's counters.
#[derive(Clone, Debug, Serialize)]
pub struct LinkSnapshot {
    /// Flits delivered downstream.
    pub delivered_flits: u64,
    /// Credits available at snapshot time.
    pub credits_available: u64,
    /// Peak credits outstanding at once.
    pub outstanding_peak: u64,
    /// Number of stalls that began on this link.
    pub stall_events: u64,
    /// Longest completed stall in flush-clock cycles.
    pub max_stall_cycles: u64,
    /// Mean completed-stall duration in flush-clock cycles.
    pub mean_stall_cycles: f64,
    /// Completed stalls recorded by the watchdog histogram.
    pub stalls_completed: u64,
}

/// The set of downstream links shared by every shard's egress path.
///
/// Flows are mapped to links statically: `link = flow % n_links`. That
/// matches the wormhole setting, where a flow is a (source, destination)
/// stream whose packets all traverse the same output channel.
pub struct LinkSet {
    links: Vec<LinkState>,
    credits_per_link: u64,
    /// While draining, `blocked` reports false so buffered flits can
    /// reach the sink even through a frozen link (conservation at
    /// shutdown outranks stall fidelity).
    draining: AtomicBool,
    /// Total flits delivered across all links — the deterministic clock
    /// that stall schedules and watchdog durations are measured on.
    flush_clock: AtomicU64,
}

impl LinkSet {
    /// Creates `n_links` links, each with `credits` credits.
    pub fn new(n_links: usize, credits: u64) -> Self {
        assert!(n_links > 0, "need at least one link");
        assert!(credits > 0, "need at least one credit per link");
        Self {
            links: (0..n_links).map(|_| LinkState::new(credits)).collect(),
            credits_per_link: credits,
            draining: AtomicBool::new(false),
            flush_clock: AtomicU64::new(0),
        }
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Credits each link starts with.
    pub fn credits_per_link(&self) -> u64 {
        self.credits_per_link
    }

    /// The link that carries `flow`.
    pub fn route(&self, flow: usize) -> usize {
        flow % self.links.len()
    }

    /// Current flush-clock reading (total delivered flits).
    pub fn flush_clock(&self) -> u64 {
        self.flush_clock.load(Ordering::Acquire)
    }

    /// Tries to take one credit on `link`. Returns `false` when the
    /// pool is exhausted — the caller must stop committing flits to
    /// this link until credits return.
    pub fn try_acquire(&self, link: usize) -> bool {
        let l = &self.links[link];
        let mut cur = l.credits.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match l
                .credits
                .compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    let outstanding = self.credits_per_link - (cur - 1);
                    l.outstanding_peak.fetch_max(outstanding, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a flit delivered downstream on `link`: returns its
    /// credit and advances the flush clock. Called by the flusher only.
    pub fn on_delivered(&self, link: usize) -> u64 {
        let l = &self.links[link];
        l.delivered.fetch_add(1, Ordering::Relaxed);
        let prev = l.credits.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            prev < self.credits_per_link,
            "credit overflow on link {link}"
        );
        self.flush_clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Whether `link` currently refuses flits. Always `false` while
    /// draining.
    pub fn blocked(&self, link: usize) -> bool {
        self.links[link].stalled.load(Ordering::Acquire) && !self.draining.load(Ordering::Acquire)
    }

    /// Whether `link` is administratively frozen (ignores draining —
    /// used by tests and stats).
    pub fn is_stalled(&self, link: usize) -> bool {
        self.links[link].stalled.load(Ordering::Acquire)
    }

    /// Freezes `link`: delivery stops until [`release_stall`]. A no-op
    /// if already frozen. The watchdog timestamps the stall on the
    /// flush clock.
    ///
    /// [`release_stall`]: LinkSet::release_stall
    pub fn freeze(&self, link: usize) {
        let l = &self.links[link];
        if l.stalled.swap(true, Ordering::AcqRel) {
            return;
        }
        l.stall_began
            .store(self.flush_clock.load(Ordering::Acquire), Ordering::Release);
        l.stall_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases a frozen `link` and records the stall duration (in
    /// flush-clock cycles) into the watchdog histogram. A no-op if not
    /// frozen.
    pub fn release_stall(&self, link: usize) {
        let l = &self.links[link];
        if !l.stalled.swap(false, Ordering::AcqRel) {
            return;
        }
        let began = l.stall_began.load(Ordering::Acquire);
        let dur = self
            .flush_clock
            .load(Ordering::Acquire)
            .saturating_sub(began);
        l.max_stall_cycles.fetch_max(dur, Ordering::Relaxed);
        l.stall_hist
            .lock()
            .expect("stall histogram poisoned")
            .record(dur);
    }

    /// Releases every still-open stall (shutdown: closes the watchdog
    /// windows so the histograms account for stalls that never ended).
    pub fn release_all_stalls(&self) {
        for link in 0..self.links.len() {
            self.release_stall(link);
        }
    }

    /// Enters drain mode: frozen links stop blocking so buffered flits
    /// can reach the sink.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::Release);
    }

    /// Snapshots every link's counters.
    pub fn snapshot(&self) -> Vec<LinkSnapshot> {
        self.links
            .iter()
            .map(|l| {
                let h = l.stall_hist.lock().expect("stall histogram poisoned");
                LinkSnapshot {
                    delivered_flits: l.delivered.load(Ordering::Relaxed),
                    credits_available: l.credits.load(Ordering::Relaxed),
                    outstanding_peak: l.outstanding_peak.load(Ordering::Relaxed),
                    stall_events: l.stall_events.load(Ordering::Relaxed),
                    max_stall_cycles: l.max_stall_cycles.load(Ordering::Relaxed),
                    mean_stall_cycles: h.mean(),
                    stalls_completed: h.count(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_outstanding() {
        let links = LinkSet::new(2, 3);
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        assert!(!links.try_acquire(0), "pool exhausted");
        assert!(links.try_acquire(1), "links are independent");
        links.on_delivered(0);
        assert!(links.try_acquire(0), "delivery returns the credit");
        let snap = links.snapshot();
        assert_eq!(snap[0].outstanding_peak, 3);
        assert_eq!(snap[0].delivered_flits, 1);
    }

    #[test]
    fn flush_clock_counts_deliveries() {
        let links = LinkSet::new(2, 8);
        assert_eq!(links.flush_clock(), 0);
        links.try_acquire(0);
        links.try_acquire(1);
        assert_eq!(links.on_delivered(0), 1);
        assert_eq!(links.on_delivered(1), 2);
        assert_eq!(links.flush_clock(), 2);
    }

    #[test]
    fn watchdog_measures_stall_on_flush_clock() {
        let links = LinkSet::new(2, 8);
        links.freeze(0);
        assert!(links.blocked(0));
        assert!(!links.blocked(1));
        // 5 flits flow through link 1 while link 0 is frozen.
        for _ in 0..5 {
            links.try_acquire(1);
            links.on_delivered(1);
        }
        links.release_stall(0);
        let snap = links.snapshot();
        assert_eq!(snap[0].stall_events, 1);
        assert_eq!(snap[0].max_stall_cycles, 5);
        assert_eq!(snap[0].stalls_completed, 1);
        assert!((snap[0].mean_stall_cycles - 5.0).abs() < 1e-9);
    }

    #[test]
    fn freeze_is_idempotent_release_closes_window() {
        let links = LinkSet::new(1, 4);
        links.freeze(0);
        links.freeze(0); // no second event
        links.release_stall(0);
        links.release_stall(0); // no second completion
        let snap = links.snapshot();
        assert_eq!(snap[0].stall_events, 1);
        assert_eq!(snap[0].stalls_completed, 1);
    }

    #[test]
    fn draining_unblocks_frozen_links() {
        let links = LinkSet::new(1, 4);
        links.freeze(0);
        assert!(links.blocked(0));
        links.set_draining(true);
        assert!(!links.blocked(0), "drain overrides the stall");
        assert!(links.is_stalled(0), "the stall itself is still recorded");
    }

    #[test]
    fn release_all_closes_open_windows() {
        let links = LinkSet::new(3, 4);
        links.freeze(0);
        links.freeze(2);
        links.release_all_stalls();
        let snap = links.snapshot();
        assert_eq!(snap[0].stalls_completed, 1);
        assert_eq!(snap[1].stalls_completed, 0);
        assert_eq!(snap[2].stalls_completed, 1);
    }
}
