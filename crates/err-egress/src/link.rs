//! Per-link credit counters, stall flags, and the stall watchdog.
//!
//! This is the wormhole virtual-channel flow-control model: a link
//! advertises `credits` flit buffers; the sender (a shard worker)
//! consumes one credit per flit it commits to egress, and the receiver
//! (the flusher, standing in for the downstream router) returns the
//! credit when the flit is actually delivered. A stalled link simply
//! stops returning credits, so the backpressure a slow downstream can
//! exert is bounded by the credit pool — exactly the regime the paper
//! assumes when it argues that "a packet which has begun transmission
//! may be stalled due to lack of buffer space downstream" must not
//! freeze the scheduler (§1).
//!
//! All state is atomic: workers acquire credits, flushers release them,
//! and the [`StallInjector`](crate::stall::StallInjector) freezes links,
//! each from its own thread without locks on the fast path. Time is the
//! **flush clock** — the total number of flits delivered across all
//! links — not wall time, so stall durations are deterministic and
//! reproducible.

// Atomics route through the loom shim so the model suite can check
// the liveness-flag and flush-clock edges; the histogram Mutex is a
// cold path (stall end / snapshot only) and stays std.
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use desim::Histogram;
use serde::Serialize;

use crate::credit::CreditPool;

/// Geometry of the stall-duration histograms (flush-clock cycles per
/// bin × bins). Stalls longer than 64k delivered flits land in the
/// overflow bucket; `max_stall_cycles` still records them exactly.
const STALL_HIST_BIN: u64 = 256;
const STALL_HIST_BINS: usize = 256;

/// Lifecycle state of a downstream link (DESIGN.md §9.3).
///
/// `Alive → Stalled ⇄ Alive` is the PR-2 injector/watchdog cycle; a
/// link with outstanding credits whose credit returns stop for
/// [`dead_link_deadline`](crate::BufferedConfig::dead_link_deadline)
/// flush-clock cycles is declared `Dead` and only
/// [`resurrect`](LinkSet::resurrect) revives it — unlike a stall,
/// drain mode does not override death.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum LinkState {
    /// Delivering normally.
    Alive,
    /// Administratively frozen (stall injection); drain mode overrides.
    Stalled,
    /// Declared dead by the credit-return deadline (or
    /// [`LinkSet::declare_dead`]); handled per [`DeadLinkPolicy`].
    Dead,
}

/// What happens to flits bound for a [`LinkState::Dead`] link
/// (DESIGN.md §9.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub enum DeadLinkPolicy {
    /// The dead link becomes an accounted blackhole: its flits are
    /// dead-lettered ([`LinkSnapshot::dead_letter_flits`]), credits
    /// return, and the link's flows keep being scheduled at full rate.
    #[default]
    DropAndAccount,
    /// Pending flits are held and credits stay exhausted, so the
    /// link's flows park (§7) and nothing is lost; a
    /// [`resurrect`](LinkSet::resurrect) delivers the held flits and
    /// revives the link. Flits still held at shutdown are
    /// dead-lettered then.
    HoldForRecovery,
}

/// Counters of one downstream link.
struct Link {
    /// The link's credit pool (available credits + outstanding peak).
    credits: CreditPool,
    /// Whether the downstream is refusing flits.
    stalled: AtomicBool,
    /// Flush-clock reading when the current stall began (valid while
    /// `stalled`).
    stall_began: AtomicU64,
    /// Stalls observed so far (frozen at least once).
    stall_events: AtomicU64,
    /// Longest completed stall, in flush-clock cycles.
    max_stall_cycles: AtomicU64,
    /// Flits delivered downstream on this link.
    delivered: AtomicU64,
    /// Whether the link has been declared dead (DESIGN.md §9.3).
    dead: AtomicBool,
    /// Flush-clock reading at the last credit return (delivery or
    /// dead-letter); the deadline watchdog measures from here.
    last_credit_return: AtomicU64,
    /// Flits dead-lettered on this link (dropped into the ledger
    /// instead of delivered).
    dead_letters: AtomicU64,
    /// Times this link was declared dead.
    deaths: AtomicU64,
    /// Times this link was resurrected.
    resurrections: AtomicU64,
    /// Flits delivered out of a death-held backlog after a resurrect
    /// (DESIGN.md §14.2) — the replay half of
    /// [`DeadLinkPolicy::HoldForRecovery`].
    replayed: AtomicU64,
    /// Completed stall durations. Watchdog-only state, touched once per
    /// stall release — never on the per-flit path — so a `Mutex` is fine.
    stall_hist: Mutex<Histogram>,
}

impl Link {
    fn new(credits: u64) -> Self {
        Self {
            credits: CreditPool::new(credits),
            stalled: AtomicBool::new(false),
            stall_began: AtomicU64::new(0),
            stall_events: AtomicU64::new(0),
            max_stall_cycles: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            last_credit_return: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            resurrections: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            stall_hist: Mutex::new(Histogram::new(STALL_HIST_BIN, STALL_HIST_BINS)),
        }
    }
}

/// Point-in-time view of one link's counters.
#[derive(Clone, Debug, Serialize)]
pub struct LinkSnapshot {
    /// Flits delivered downstream.
    pub delivered_flits: u64,
    /// Credits available at snapshot time.
    pub credits_available: u64,
    /// Peak credits outstanding at once.
    pub outstanding_peak: u64,
    /// Number of stalls that began on this link.
    pub stall_events: u64,
    /// Longest completed stall in flush-clock cycles.
    pub max_stall_cycles: u64,
    /// Mean completed-stall duration in flush-clock cycles.
    pub mean_stall_cycles: f64,
    /// Completed stalls recorded by the watchdog histogram.
    pub stalls_completed: u64,
    /// Lifecycle state at snapshot time (DESIGN.md §9.3).
    pub state: LinkState,
    /// Flits dead-lettered instead of delivered.
    pub dead_letter_flits: u64,
    /// Times the link was declared dead.
    pub deaths: u64,
    /// Times the link was resurrected.
    pub resurrections: u64,
    /// Flits delivered out of a death-held backlog after a resurrect
    /// (DESIGN.md §14.2).
    pub replayed: u64,
}

/// The set of downstream links shared by every shard's egress path.
///
/// Flows are mapped to links statically: `link = flow % n_links`, or by
/// an optional flow-indexed routing table (DESIGN.md §11.1 — the fabric
/// compiles one per node from its topology). Either way the mapping is
/// fixed for the run, matching the wormhole setting, where a flow is a
/// (source, destination) stream whose packets all traverse the same
/// output channel at a given switch.
pub struct LinkSet {
    links: Vec<Link>,
    credits_per_link: u64,
    /// Flow→link override; flows past its end use the modulo rule.
    route_table: Option<std::sync::Arc<[u32]>>,
    /// While draining, `blocked` reports false so buffered flits can
    /// reach the sink even through a frozen link (conservation at
    /// shutdown outranks stall fidelity).
    draining: AtomicBool,
    /// Total flits delivered across all links — the deterministic clock
    /// that stall schedules and watchdog durations are measured on.
    flush_clock: AtomicU64,
    /// Flush-clock cycles without a credit return (while credits are
    /// outstanding) after which a link is declared dead; `None`
    /// disables the deadline watchdog.
    dead_deadline: Option<u64>,
    /// What the flusher does with a dead link's flits.
    policy: DeadLinkPolicy,
}

impl LinkSet {
    /// Creates `n_links` links, each with `credits` credits, with the
    /// dead-link watchdog disabled.
    pub fn new(n_links: usize, credits: u64) -> Self {
        Self::with_fault_policy(n_links, credits, None, DeadLinkPolicy::default())
    }

    /// Creates `n_links` links with a dead-link deadline and policy
    /// (DESIGN.md §9.3).
    pub fn with_fault_policy(
        n_links: usize,
        credits: u64,
        dead_deadline: Option<u64>,
        policy: DeadLinkPolicy,
    ) -> Self {
        Self::with_routing(n_links, credits, dead_deadline, policy, None)
    }

    /// Creates `n_links` links with a fault policy and an optional
    /// flow→link routing table (DESIGN.md §11.1). Every table entry
    /// must name an existing link.
    pub fn with_routing(
        n_links: usize,
        credits: u64,
        dead_deadline: Option<u64>,
        policy: DeadLinkPolicy,
        route_table: Option<std::sync::Arc<[u32]>>,
    ) -> Self {
        assert!(n_links > 0, "need at least one link");
        assert!(credits > 0, "need at least one credit per link");
        if let Some(table) = &route_table {
            assert!(
                table.iter().all(|&l| (l as usize) < n_links),
                "route table names a link >= n_links"
            );
        }
        Self {
            links: (0..n_links).map(|_| Link::new(credits)).collect(),
            credits_per_link: credits,
            route_table,
            draining: AtomicBool::new(false),
            flush_clock: AtomicU64::new(0),
            dead_deadline,
            policy,
        }
    }

    /// The configured dead-link policy.
    pub fn policy(&self) -> DeadLinkPolicy {
        self.policy
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Credits each link starts with.
    pub fn credits_per_link(&self) -> u64 {
        self.credits_per_link
    }

    /// The link that carries `flow`: the routing table's entry when one
    /// is installed (falling back to modulo past its end), else
    /// `flow % n_links`.
    pub fn route(&self, flow: usize) -> usize {
        if let Some(table) = &self.route_table {
            if let Some(&link) = table.get(flow) {
                return link as usize;
            }
        }
        flow % self.links.len()
    }

    /// Current flush-clock reading (total delivered flits).
    pub fn flush_clock(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel clock advance in
        // `on_delivered` — a reader at clock `t` observes every
        // delivery that produced ticks ≤ `t`.
        self.flush_clock.load(Ordering::Acquire)
    }

    /// Tries to take one credit on `link`. Returns `false` when the
    /// pool is exhausted — the caller must stop committing flits to
    /// this link until credits return.
    pub fn try_acquire(&self, link: usize) -> bool {
        self.links[link].credits.try_acquire()
    }

    /// Records a flit delivered downstream on `link`: returns its
    /// credit and advances the flush clock. Called by the flusher only.
    pub fn on_delivered(&self, link: usize) -> u64 {
        let l = &self.links[link];
        l.delivered.fetch_add(1, Ordering::Relaxed);
        l.credits.release();
        // ordering: AcqRel — Release publishes this delivery to
        // `flush_clock` Acquire readers (watchdog, stall plans);
        // Acquire chains deliveries from other flushers so the clock
        // is a consistent total count.
        let clock = self.flush_clock.fetch_add(1, Ordering::AcqRel) + 1;
        l.last_credit_return.store(clock, Ordering::Relaxed);
        clock
    }

    /// Records that a flit just delivered on `link` had been held
    /// through a death window ([`DeadLinkPolicy::HoldForRecovery`]) and
    /// was replayed after a [`resurrect`](LinkSet::resurrect). Called
    /// by the flusher, after the matching [`on_delivered`] — replays
    /// are a subset of deliveries, not a separate clock.
    ///
    /// [`on_delivered`]: LinkSet::on_delivered
    pub fn on_replayed(&self, link: usize) {
        self.links[link].replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a flit finally *not* delivered on a dead `link`: the
    /// flit is dead-lettered, its credit returns so the scheduler side
    /// keeps moving, and the flush clock does **not** advance (the
    /// clock counts real deliveries). Called by the flusher only.
    pub fn on_dead_letter(&self, link: usize) {
        let l = &self.links[link];
        l.dead_letters.fetch_add(1, Ordering::Relaxed);
        l.credits.release();
        // ordering: Acquire — same flush-clock pairing as
        // `flush_clock()` (reads the clock without advancing it).
        l.last_credit_return
            .store(self.flush_clock.load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// Whether `link` currently refuses flits. A stall stops blocking
    /// while draining; a dead link under
    /// [`DeadLinkPolicy::HoldForRecovery`] blocks even then (drain must
    /// not pretend an absent downstream returned — its held flits are
    /// dead-lettered at flusher exit instead).
    pub fn blocked(&self, link: usize) -> bool {
        let l = &self.links[link];
        // ordering: Acquire pairs with the AcqRel `dead` swap in
        // `declare_dead`/`resurrect` — a worker that sees the verdict
        // is ordered after the watchdog's bookkeeping.
        if l.dead.load(Ordering::Acquire) {
            return self.policy == DeadLinkPolicy::HoldForRecovery;
        }
        // ordering: Acquire on both flags — pairs with the AcqRel
        // `stalled` swap in `freeze`/`release_stall` and the Release
        // `draining` store in `set_draining`.
        l.stalled.load(Ordering::Acquire) && !self.draining.load(Ordering::Acquire)
    }

    /// Whether `link` is administratively frozen (ignores draining —
    /// used by tests and stats).
    pub fn is_stalled(&self, link: usize) -> bool {
        // ordering: Acquire pairs with the AcqRel `stalled` swap in
        // `freeze`/`release_stall`.
        self.links[link].stalled.load(Ordering::Acquire)
    }

    /// Whether `link` has been declared dead.
    pub fn is_dead(&self, link: usize) -> bool {
        // ordering: Acquire pairs with the AcqRel `dead` swap in
        // `declare_dead`/`resurrect`.
        self.links[link].dead.load(Ordering::Acquire)
    }

    /// Lifecycle state of `link`. Death shadows a stall: a dead link
    /// reports [`LinkState::Dead`] even if the stall flag is still set.
    pub fn state(&self, link: usize) -> LinkState {
        let l = &self.links[link];
        // ordering: Acquire on both flags — same pairings as
        // `is_dead`/`is_stalled`.
        if l.dead.load(Ordering::Acquire) {
            LinkState::Dead
        } else if l.stalled.load(Ordering::Acquire) {
            LinkState::Stalled
        } else {
            LinkState::Alive
        }
    }

    /// Declares `link` dead (DESIGN.md §9.3). Idempotent: a link that
    /// is already dead records no second death.
    pub fn declare_dead(&self, link: usize) {
        let l = &self.links[link];
        // ordering: AcqRel — Release publishes the verdict to the
        // Acquire readers (`blocked`, `is_dead`, `state`); Acquire
        // orders a re-declaration after a racing `resurrect`.
        if !l.dead.swap(true, Ordering::AcqRel) {
            l.deaths.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Revives a dead `link`. The deadline watchdog is re-armed from
    /// the current flush-clock reading so the link is not immediately
    /// re-declared dead for credits that were outstanding while it was
    /// down. A no-op on a live link.
    pub fn resurrect(&self, link: usize) {
        let l = &self.links[link];
        // ordering: AcqRel — mirror of `declare_dead`'s swap.
        if l.dead.swap(false, Ordering::AcqRel) {
            // ordering: Acquire — flush-clock pairing as in
            // `flush_clock()` (re-arms the deadline from "now").
            l.last_credit_return
                .store(self.flush_clock.load(Ordering::Acquire), Ordering::Relaxed);
            l.resurrections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deadline watchdog (DESIGN.md §9.3): declares dead every live
    /// link that has credits outstanding and has returned none for more
    /// than `dead_deadline` flush-clock cycles. Returns the links
    /// declared dead by this poll. Called by the flusher on its idle /
    /// post-burst path; a no-op when no deadline is configured.
    pub fn poll_deadlines(&self) -> Vec<usize> {
        let Some(deadline) = self.dead_deadline else {
            return Vec::new();
        };
        // ordering: Acquire — flush-clock pairing as in
        // `flush_clock()`; deadlines are judged on a clock no newer
        // than any credit-return timestamp read below.
        let clock = self.flush_clock.load(Ordering::Acquire);
        let mut died = Vec::new();
        for (link, l) in self.links.iter().enumerate() {
            // ordering: Acquire — pairs with the AcqRel `dead` swaps.
            if l.dead.load(Ordering::Acquire) {
                continue;
            }
            let outstanding = l.credits.outstanding();
            if outstanding == 0 {
                continue;
            }
            let last = l.last_credit_return.load(Ordering::Relaxed);
            if clock.saturating_sub(last) > deadline {
                self.declare_dead(link);
                died.push(link);
            }
        }
        died
    }

    /// Freezes `link`: delivery stops until [`release_stall`]. A no-op
    /// if already frozen. The watchdog timestamps the stall on the
    /// flush clock.
    ///
    /// [`release_stall`]: LinkSet::release_stall
    pub fn freeze(&self, link: usize) {
        let l = &self.links[link];
        // ordering: AcqRel — Release publishes the freeze to `blocked`
        // Acquire readers; Acquire orders this freeze after a racing
        // release's histogram write.
        if l.stalled.swap(true, Ordering::AcqRel) {
            return;
        }
        // ordering: Release `stall_began` pairs with the Acquire load
        // in `release_stall`; the clock load is the `flush_clock()`
        // pairing.
        l.stall_began
            .store(self.flush_clock.load(Ordering::Acquire), Ordering::Release);
        l.stall_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases a frozen `link` and records the stall duration (in
    /// flush-clock cycles) into the watchdog histogram. A no-op if not
    /// frozen.
    pub fn release_stall(&self, link: usize) {
        let l = &self.links[link];
        // ordering: AcqRel — mirror of `freeze`'s swap; the Acquire
        // half orders this thaw after the freezer's `stall_began`
        // store.
        if !l.stalled.swap(false, Ordering::AcqRel) {
            return;
        }
        // ordering: Acquire pairs with the Release `stall_began` store
        // in `freeze`; the clock load is the `flush_clock()` pairing.
        let began = l.stall_began.load(Ordering::Acquire);
        let dur = self
            .flush_clock
            .load(Ordering::Acquire)
            .saturating_sub(began);
        l.max_stall_cycles.fetch_max(dur, Ordering::Relaxed);
        l.stall_hist
            .lock()
            .expect("stall histogram poisoned")
            .record(dur);
    }

    /// Releases every still-open stall (shutdown: closes the watchdog
    /// windows so the histograms account for stalls that never ended).
    pub fn release_all_stalls(&self) {
        for link in 0..self.links.len() {
            self.release_stall(link);
        }
    }

    /// Enters drain mode: frozen links stop blocking so buffered flits
    /// can reach the sink.
    pub fn set_draining(&self, draining: bool) {
        // ordering: Release pairs with the Acquire `draining` load in
        // `blocked` — a one-way (per drain) override latch.
        self.draining.store(draining, Ordering::Release);
    }

    /// Snapshots every link's counters.
    pub fn snapshot(&self) -> Vec<LinkSnapshot> {
        self.links
            .iter()
            .map(|l| {
                let h = l.stall_hist.lock().expect("stall histogram poisoned");
                LinkSnapshot {
                    delivered_flits: l.delivered.load(Ordering::Relaxed),
                    credits_available: l.credits.available(),
                    outstanding_peak: l.credits.outstanding_peak(),
                    stall_events: l.stall_events.load(Ordering::Relaxed),
                    max_stall_cycles: l.max_stall_cycles.load(Ordering::Relaxed),
                    mean_stall_cycles: h.mean(),
                    stalls_completed: h.count(),
                    // ordering: Acquire on both flags — same pairings
                    // as `state()`.
                    state: if l.dead.load(Ordering::Acquire) {
                        LinkState::Dead
                    } else if l.stalled.load(Ordering::Acquire) {
                        LinkState::Stalled
                    } else {
                        LinkState::Alive
                    },
                    dead_letter_flits: l.dead_letters.load(Ordering::Relaxed),
                    deaths: l.deaths.load(Ordering::Relaxed),
                    resurrections: l.resurrections.load(Ordering::Relaxed),
                    replayed: l.replayed.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_outstanding() {
        let links = LinkSet::new(2, 3);
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        assert!(!links.try_acquire(0), "pool exhausted");
        assert!(links.try_acquire(1), "links are independent");
        links.on_delivered(0);
        assert!(links.try_acquire(0), "delivery returns the credit");
        let snap = links.snapshot();
        assert_eq!(snap[0].outstanding_peak, 3);
        assert_eq!(snap[0].delivered_flits, 1);
    }

    #[test]
    fn flush_clock_counts_deliveries() {
        let links = LinkSet::new(2, 8);
        assert_eq!(links.flush_clock(), 0);
        links.try_acquire(0);
        links.try_acquire(1);
        assert_eq!(links.on_delivered(0), 1);
        assert_eq!(links.on_delivered(1), 2);
        assert_eq!(links.flush_clock(), 2);
    }

    #[test]
    fn watchdog_measures_stall_on_flush_clock() {
        let links = LinkSet::new(2, 8);
        links.freeze(0);
        assert!(links.blocked(0));
        assert!(!links.blocked(1));
        // 5 flits flow through link 1 while link 0 is frozen.
        for _ in 0..5 {
            links.try_acquire(1);
            links.on_delivered(1);
        }
        links.release_stall(0);
        let snap = links.snapshot();
        assert_eq!(snap[0].stall_events, 1);
        assert_eq!(snap[0].max_stall_cycles, 5);
        assert_eq!(snap[0].stalls_completed, 1);
        assert!((snap[0].mean_stall_cycles - 5.0).abs() < 1e-9);
    }

    #[test]
    fn freeze_is_idempotent_release_closes_window() {
        let links = LinkSet::new(1, 4);
        links.freeze(0);
        links.freeze(0); // no second event
        links.release_stall(0);
        links.release_stall(0); // no second completion
        let snap = links.snapshot();
        assert_eq!(snap[0].stall_events, 1);
        assert_eq!(snap[0].stalls_completed, 1);
    }

    #[test]
    fn draining_unblocks_frozen_links() {
        let links = LinkSet::new(1, 4);
        links.freeze(0);
        assert!(links.blocked(0));
        links.set_draining(true);
        assert!(!links.blocked(0), "drain overrides the stall");
        assert!(links.is_stalled(0), "the stall itself is still recorded");
    }

    #[test]
    fn deadline_declares_dead_on_flush_clock() {
        let links = LinkSet::with_fault_policy(2, 4, Some(10), DeadLinkPolicy::DropAndAccount);
        // Link 0 has a credit outstanding and returns nothing.
        links.try_acquire(0);
        // Link 1 delivers 11 flits: clock reaches 11, link 0's last
        // return is still 0 → past the 10-cycle deadline.
        for _ in 0..11 {
            links.try_acquire(1);
            links.on_delivered(1);
        }
        assert_eq!(links.poll_deadlines(), vec![0]);
        assert_eq!(links.state(0), LinkState::Dead);
        assert_eq!(links.state(1), LinkState::Alive);
        assert!(links.poll_deadlines().is_empty(), "death is latched");
        let snap = links.snapshot();
        assert_eq!(snap[0].deaths, 1);
    }

    #[test]
    fn deadline_ignores_idle_links() {
        let links = LinkSet::with_fault_policy(1, 4, Some(2), DeadLinkPolicy::DropAndAccount);
        // No credits outstanding: the downstream owes nothing, so a
        // silent link is idle, not dead.
        assert!(links.poll_deadlines().is_empty());
        assert_eq!(links.state(0), LinkState::Alive);
    }

    #[test]
    fn dead_letter_returns_credit_without_advancing_clock() {
        let links = LinkSet::with_fault_policy(1, 2, None, DeadLinkPolicy::DropAndAccount);
        links.try_acquire(0);
        links.try_acquire(0);
        assert!(!links.try_acquire(0));
        links.declare_dead(0);
        links.on_dead_letter(0);
        assert!(links.try_acquire(0), "dead-letter returned the credit");
        assert_eq!(links.flush_clock(), 0, "clock counts real deliveries");
        let snap = links.snapshot();
        assert_eq!(snap[0].dead_letter_flits, 1);
        assert_eq!(snap[0].delivered_flits, 0);
    }

    #[test]
    fn drop_policy_does_not_block_dead_link() {
        let links = LinkSet::with_fault_policy(1, 4, None, DeadLinkPolicy::DropAndAccount);
        links.declare_dead(0);
        assert!(!links.blocked(0), "DropAndAccount keeps flows scheduled");
    }

    #[test]
    fn hold_policy_blocks_dead_link_even_while_draining() {
        let links = LinkSet::with_fault_policy(1, 4, None, DeadLinkPolicy::HoldForRecovery);
        links.declare_dead(0);
        assert!(links.blocked(0));
        links.set_draining(true);
        assert!(links.blocked(0), "drain does not override death");
        links.resurrect(0);
        assert!(!links.blocked(0));
    }

    #[test]
    fn declare_and_resurrect_are_idempotent() {
        let links = LinkSet::with_fault_policy(1, 4, Some(100), DeadLinkPolicy::HoldForRecovery);
        links.resurrect(0); // live link: no-op
        links.declare_dead(0);
        links.declare_dead(0);
        links.resurrect(0);
        links.resurrect(0);
        let snap = links.snapshot();
        assert_eq!(snap[0].deaths, 1);
        assert_eq!(snap[0].resurrections, 1);
        assert_eq!(snap[0].state, LinkState::Alive);
    }

    #[test]
    fn resurrect_rearms_the_deadline() {
        let links = LinkSet::with_fault_policy(2, 4, Some(5), DeadLinkPolicy::HoldForRecovery);
        links.try_acquire(0);
        for _ in 0..6 {
            links.try_acquire(1);
            links.on_delivered(1);
        }
        assert_eq!(links.poll_deadlines(), vec![0]);
        links.resurrect(0);
        // The credit is still outstanding, but the watchdog now measures
        // from the resurrection clock — no instant re-death.
        assert!(links.poll_deadlines().is_empty());
    }

    #[test]
    fn replayed_counts_are_per_link_and_snapshot() {
        let links = LinkSet::with_fault_policy(2, 4, None, DeadLinkPolicy::HoldForRecovery);
        links.on_replayed(1);
        links.on_replayed(1);
        let snap = links.snapshot();
        assert_eq!(snap[0].replayed, 0);
        assert_eq!(snap[1].replayed, 2);
    }

    #[test]
    fn release_all_closes_open_windows() {
        let links = LinkSet::new(3, 4);
        links.freeze(0);
        links.freeze(2);
        links.release_all_stalls();
        let snap = links.snapshot();
        assert_eq!(snap[0].stalls_completed, 1);
        assert_eq!(snap[1].stalls_completed, 0);
        assert_eq!(snap[2].stalls_completed, 1);
    }
}
