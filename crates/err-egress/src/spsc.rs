//! Bounded single-producer/single-consumer ring buffer.
//!
//! Each shard worker is the sole producer of its output ring and the
//! shard's flusher thread the sole consumer, so the egress path can use
//! the classic Lamport queue instead of the heavier multi-producer ring
//! the ingress side needs (`err-runtime`'s Vyukov ring): one atomic
//! load + one atomic store per operation, with cached cursors so the
//! common case touches only one shared cache line.
//!
//! Capacity is rounded up to a power of two; one slot is sacrificed to
//! distinguish full from empty, so a ring built with capacity `c` holds
//! at least `c` items.

use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::sync::{AtomicUsize, Ordering, UnsafeCell};

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to read (owned by the consumer, read by the producer).
    head: AtomicUsize,
    /// Next slot to write (owned by the producer, read by the consumer).
    tail: AtomicUsize,
}

// SAFETY: the ring owns its values; moving it moves them, so `T: Send`
// suffices.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: the producer/consumer split guarantees each slot is accessed
// by at most one thread at a time — ownership transfers through the
// head/tail Acquire/Release pairs in `push`/`pop`.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any items still in flight (both handles are gone, so the
        // cursors are stable; the Arc teardown that got us `&mut self`
        // already ordered us after both sides' last access).
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            // SAFETY: positions in [head, tail) were written by the
            // producer and never read out by the consumer, and `&mut
            // self` proves no other accessor exists.
            self.buf[i & self.mask].with_mut(|p| unsafe { (*p).assume_init_drop() });
            i = i.wrapping_add(1);
        }
    }
}

/// Producer half of the ring. Not clonable: exactly one producer.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Producer's private copy of `head`; refreshed only when the ring
    /// looks full, so most pushes never read the consumer's cache line.
    cached_head: usize,
    tail: usize,
}

/// Consumer half of the ring. Not clonable: exactly one consumer.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's private copy of `tail`; refreshed only when the ring
    /// looks empty.
    cached_tail: usize,
    head: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` items.
pub fn spsc_ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    // +1 because one slot separates full from empty.
    let cap = (capacity + 1).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            cached_head: 0,
            tail: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
            head: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes `item`, or returns it if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap - 1 {
            // ordering: Acquire pairs with the consumer's Release
            // `head` store in `pop` — the consumer's read-out of the
            // slot we are about to overwrite completed before it
            // advanced `head`.
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap - 1 {
                return Err(item);
            }
        }
        // SAFETY: the slot at `tail` is outside [head, tail) — the
        // consumer never touches it — and the full-check above proved
        // the previous lap's value was read out (via the Acquire edge
        // on `head`), so the single producer owns it exclusively.
        self.inner.buf[self.tail & self.inner.mask].with_mut(|p| unsafe { (*p).write(item) });
        self.tail = self.tail.wrapping_add(1);
        // ordering: Release pairs with the consumer's Acquire `tail`
        // load in `pop`/`is_empty` — publishes the cell write above
        // before the slot becomes visible.
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Items currently buffered, as seen from the producer side (exact
    /// for the producer's own pushes; the consumer may have drained more
    /// since `cached_head` was refreshed, so this is an upper bound).
    pub fn occupancy(&mut self) -> usize {
        // ordering: Acquire — same pairing as the full-check in `push`
        // (the refreshed `cached_head` may be reused there).
        self.cached_head = self.inner.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.cached_head)
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            // ordering: Acquire pairs with the producer's Release
            // `tail` store in `push` — the cell write at `head` is
            // visible before the slot appears occupied.
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < cached_tail` (where `cached_tail` came from
        // the Acquire load above) proves the producer published this
        // slot, and the single consumer owns position `head`
        // exclusively, so the initialized value can be moved out
        // exactly once.
        let item = self.inner.buf[self.head & self.inner.mask]
            .with(|p| unsafe { (*p).assume_init_read() });
        self.head = self.head.wrapping_add(1);
        // ordering: Release pairs with the producer's Acquire `head`
        // load in `push` — the read-out above completes before the slot
        // reads free, so the next lap's write cannot clobber it.
        self.inner.head.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Whether the ring is empty right now (refreshes the tail view).
    pub fn is_empty(&mut self) -> bool {
        if self.head != self.cached_tail {
            return false;
        }
        // ordering: Acquire — same pairing as the empty-check in `pop`
        // (the refreshed `cached_tail` may be reused there).
        self.cached_tail = self.inner.tail.load(Ordering::Acquire);
        self.head == self.cached_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        for v in 0..8 {
            tx.push(v).unwrap();
        }
        for v in 0..8 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (mut tx, mut rx) = spsc_ring::<u32>(2);
        // Rounded capacity is at least 2; fill until rejection.
        let mut n = 0;
        while tx.push(n).is_ok() {
            n += 1;
        }
        assert!(n >= 2, "holds at least the requested capacity");
        assert_eq!(rx.pop(), Some(0));
        tx.push(n).unwrap(); // space reappears after a pop
        for v in 1..=n {
            assert_eq!(rx.pop(), Some(v));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn occupancy_tracks_contents() {
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        assert_eq!(tx.occupancy(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.occupancy(), 2);
        rx.pop();
        assert_eq!(tx.occupancy(), 1);
    }

    #[test]
    fn drops_in_flight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = spsc_ring::<D>(4);
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                let mut item = v;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, next);
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }
}
