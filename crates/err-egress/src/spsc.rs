//! Bounded single-producer/single-consumer ring buffer.
//!
//! Each shard worker is the sole producer of its output ring and the
//! shard's flusher thread the sole consumer, so the egress path can use
//! the classic Lamport queue instead of the heavier multi-producer ring
//! the ingress side needs (`err-runtime`'s Vyukov ring): one atomic
//! load + one atomic store per operation, with cached cursors so the
//! common case touches only one shared cache line.
//!
//! Capacity is rounded up to a power of two; one slot is sacrificed to
//! distinguish full from empty, so a ring built with capacity `c` holds
//! at least `c` items.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to read (owned by the consumer, read by the producer).
    head: AtomicUsize,
    /// Next slot to write (owned by the producer, read by the consumer).
    tail: AtomicUsize,
}

// The producer/consumer split guarantees each slot is accessed by at most
// one thread at a time (ownership transfers through the head/tail
// acquire/release pair).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any items still in flight (both handles are gone, so the
        // cursors are stable).
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Producer half of the ring. Not clonable: exactly one producer.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Producer's private copy of `head`; refreshed only when the ring
    /// looks full, so most pushes never read the consumer's cache line.
    cached_head: usize,
    tail: usize,
}

/// Consumer half of the ring. Not clonable: exactly one consumer.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's private copy of `tail`; refreshed only when the ring
    /// looks empty.
    cached_tail: usize,
    head: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` items.
pub fn spsc_ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    // +1 because one slot separates full from empty.
    let cap = (capacity + 1).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            cached_head: 0,
            tail: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
            head: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes `item`, or returns it if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap - 1 {
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap - 1 {
                return Err(item);
            }
        }
        unsafe {
            (*self.inner.buf[self.tail & self.inner.mask].get()).write(item);
        }
        self.tail = self.tail.wrapping_add(1);
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Items currently buffered, as seen from the producer side (exact
    /// for the producer's own pushes; the consumer may have drained more
    /// since `cached_head` was refreshed, so this is an upper bound).
    pub fn occupancy(&mut self) -> usize {
        self.cached_head = self.inner.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.cached_head)
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let item =
            unsafe { (*self.inner.buf[self.head & self.inner.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.inner.head.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Whether the ring is empty right now (refreshes the tail view).
    pub fn is_empty(&mut self) -> bool {
        if self.head != self.cached_tail {
            return false;
        }
        self.cached_tail = self.inner.tail.load(Ordering::Acquire);
        self.head == self.cached_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        for v in 0..8 {
            tx.push(v).unwrap();
        }
        for v in 0..8 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (mut tx, mut rx) = spsc_ring::<u32>(2);
        // Rounded capacity is at least 2; fill until rejection.
        let mut n = 0;
        while tx.push(n).is_ok() {
            n += 1;
        }
        assert!(n >= 2, "holds at least the requested capacity");
        assert_eq!(rx.pop(), Some(0));
        tx.push(n).unwrap(); // space reappears after a pop
        for v in 1..=n {
            assert_eq!(rx.pop(), Some(v));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn occupancy_tracks_contents() {
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        assert_eq!(tx.occupancy(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.occupancy(), 2);
        rx.pop();
        assert_eq!(tx.occupancy(), 1);
    }

    #[test]
    fn drops_in_flight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = spsc_ring::<D>(4);
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                let mut item = v;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, next);
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }
}
