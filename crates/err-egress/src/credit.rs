//! The per-link credit counter: wormhole virtual-channel flow control
//! reduced to one atomic.
//!
//! A pool advertises `capacity` flit buffers. Shard workers
//! [`try_acquire`](CreditPool::try_acquire) one credit per flit
//! *before* committing it to an egress ring; the flusher
//! [`release`](CreditPool::release)s the credit when the flit is
//! delivered (or dead-lettered). The pool is therefore a hard bound on
//! buffered flits per link — the invariant
//! `tests/egress_integration.rs` asserts and err-check's `spsc_credit`
//! loom model checks under every interleaving.
//!
//! Extracted from `link.rs` in PR 5 so the exact shipped atomics can be
//! compiled against the loom shim (the crate-private `sync` module) and
//! checked.

use crate::sync::{AtomicU64, Ordering};

/// A bounded credit counter shared by any number of acquiring workers
/// and releasing flushers.
#[derive(Debug)]
pub struct CreditPool {
    capacity: u64,
    /// Credits currently available to senders.
    credits: AtomicU64,
    /// High-water mark of credits outstanding at once.
    outstanding_peak: AtomicU64,
}

impl CreditPool {
    /// A full pool of `capacity` credits.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "need at least one credit");
        Self {
            capacity,
            credits: AtomicU64::new(capacity),
            outstanding_peak: AtomicU64::new(0),
        }
    }

    /// The advertised buffer capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Tries to take one credit. Returns `false` when the pool is
    /// exhausted — the caller must stop committing flits until credits
    /// return.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.credits.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            // ordering: AcqRel — the Acquire half pairs with the
            // Release half of the flusher's `release` fetch_add, so the
            // downstream buffer this credit stands for is observed free
            // before the worker reuses it; the Release half keeps the
            // release sequence intact for other acquiring workers.
            match self.credits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let outstanding = self.capacity - (cur - 1);
                    self.outstanding_peak
                        .fetch_max(outstanding, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns one credit (a delivery or dead-letter downstream).
    /// Panics in debug builds if the pool would exceed its capacity —
    /// that means a release without a matching acquire.
    pub fn release(&self) {
        // ordering: AcqRel — the Release half pairs with the Acquire
        // half of `try_acquire`'s CAS (publishes the flusher's work on
        // the freed buffer); the Acquire half orders the flusher after
        // the worker's acquire when the pool cycles at capacity.
        let prev = self.credits.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < self.capacity, "credit released above capacity");
    }

    /// Credits currently available (racy; exact only when quiescent).
    pub fn available(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel RMWs above so a
        // quiescent reader (snapshot, watchdog) sees the final count.
        self.credits.load(Ordering::Acquire)
    }

    /// Credits currently outstanding (capacity − available).
    pub fn outstanding(&self) -> u64 {
        self.capacity - self.available()
    }

    /// High-water mark of credits outstanding at once.
    pub fn outstanding_peak(&self) -> u64 {
        self.outstanding_peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_outstanding_and_tracks_peak() {
        let pool = CreditPool::new(3);
        assert_eq!(pool.capacity(), 3);
        assert!(pool.try_acquire());
        assert!(pool.try_acquire());
        assert!(pool.try_acquire());
        assert!(!pool.try_acquire(), "pool exhausted");
        assert_eq!(pool.outstanding(), 3);
        pool.release();
        assert!(pool.try_acquire(), "release returns the credit");
        assert_eq!(pool.outstanding_peak(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "credit released above capacity")]
    fn overflow_release_panics_in_debug() {
        let pool = CreditPool::new(1);
        pool.release();
    }
}
