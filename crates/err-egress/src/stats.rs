//! Egress-side counters: per-shard atomics plus aggregate snapshots.
//!
//! Like the runtime's stats module, every counter is **approximate
//! under race**: all accesses are `Relaxed` (enforced by err-check's
//! `stats-relaxed` lint), each counter is individually exact, and
//! cross-counter relationships are only meaningful after a drain.
//! Nothing in the scheduling or flow-control path reads these.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

use crate::link::LinkSnapshot;

/// Counters for one shard's egress path. Writers: the shard worker
/// (ring occupancy, credit waits) and the shard's flusher (flushed
/// flits). Cache-line padded like the runtime's shard stats so two
/// shards never false-share.
#[repr(align(64))]
#[derive(Default)]
pub struct ShardEgressStats {
    /// Flits the flusher has handed to the sink.
    pub flushed_flits: AtomicU64,
    /// High-water mark of the shard's output-ring occupancy.
    pub ring_peak: AtomicU64,
    /// Times the worker found a link's credit pool empty and had to
    /// park the link's flows (or block, for non-parking disciplines).
    pub credit_exhaustions: AtomicU64,
    /// Times the worker found the output ring full and had to spin.
    pub ring_full_spins: AtomicU64,
    /// Times this shard's flusher body unwound and was caught by its
    /// supervisor (DESIGN.md §14.4). Written by the flusher thread's
    /// catch-unwind wrapper, once per panic — never on the flit path.
    pub flusher_panics: AtomicU64,
}

impl ShardEgressStats {
    /// Records a post-push ring occupancy observation.
    pub fn note_ring_occupancy(&self, occupancy: u64) {
        self.ring_peak.fetch_max(occupancy, Ordering::Relaxed);
    }

    /// Snapshots the counters.
    pub fn snapshot(&self) -> ShardEgressSnapshot {
        ShardEgressSnapshot {
            flushed_flits: self.flushed_flits.load(Ordering::Relaxed),
            ring_peak: self.ring_peak.load(Ordering::Relaxed),
            credit_exhaustions: self.credit_exhaustions.load(Ordering::Relaxed),
            ring_full_spins: self.ring_full_spins.load(Ordering::Relaxed),
            flusher_panics: self.flusher_panics.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one shard's egress counters.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct ShardEgressSnapshot {
    /// Flits delivered to the sink by this shard's flusher.
    pub flushed_flits: u64,
    /// Peak output-ring occupancy.
    pub ring_peak: u64,
    /// Credit-pool exhaustion events seen by the worker.
    pub credit_exhaustions: u64,
    /// Ring-full spins seen by the worker.
    pub ring_full_spins: u64,
    /// Flusher-body panics caught by the supervisor (DESIGN.md §14.4).
    pub flusher_panics: u64,
}

/// Aggregate egress view: per-shard counters plus per-link watchdog
/// results.
#[derive(Clone, Debug, Default, Serialize)]
pub struct EgressSnapshot {
    /// One entry per shard.
    pub shards: Vec<ShardEgressSnapshot>,
    /// One entry per downstream link.
    pub links: Vec<LinkSnapshot>,
}

impl EgressSnapshot {
    /// Total flits flushed across shards.
    pub fn flushed_flits(&self) -> u64 {
        self.shards.iter().map(|s| s.flushed_flits).sum()
    }

    /// Largest per-shard ring peak.
    pub fn peak_ring_occupancy(&self) -> u64 {
        self.shards.iter().map(|s| s.ring_peak).max().unwrap_or(0)
    }

    /// Total flusher panics caught across shards (§14.4).
    pub fn flusher_panics(&self) -> u64 {
        self.shards.iter().map(|s| s.flusher_panics).sum()
    }

    /// Total stall events across links.
    pub fn stall_events(&self) -> u64 {
        self.links.iter().map(|l| l.stall_events).sum()
    }

    /// Longest completed stall across links, in flush-clock cycles.
    pub fn max_stall_cycles(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.max_stall_cycles)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_peak_is_a_high_water_mark() {
        let s = ShardEgressStats::default();
        s.note_ring_occupancy(3);
        s.note_ring_occupancy(9);
        s.note_ring_occupancy(1);
        assert_eq!(s.snapshot().ring_peak, 9);
    }

    #[test]
    fn aggregate_sums_and_maxes() {
        let snap = EgressSnapshot {
            shards: vec![
                ShardEgressSnapshot {
                    flushed_flits: 10,
                    ring_peak: 4,
                    ..Default::default()
                },
                ShardEgressSnapshot {
                    flushed_flits: 5,
                    ring_peak: 7,
                    ..Default::default()
                },
            ],
            links: Vec::new(),
        };
        assert_eq!(snap.flushed_flits(), 15);
        assert_eq!(snap.peak_ring_occupancy(), 7);
        assert_eq!(snap.stall_events(), 0);
        assert_eq!(snap.max_stall_cycles(), 0);
    }
}
