//! Property tests for the buffered egress path.
//!
//! The load-bearing property: the ring + flusher + credit machinery is
//! a *transparent pipe* per link. Whatever sequence of flits the worker
//! commits, under any stall schedule, each link's delivery order equals
//! its commit order, nothing is lost or duplicated, and the buffered
//! backlog per link never exceeds the credit pool.

use err_egress::{spsc_ring, FlusherCore, LinkSet};
use err_sched::ServedFlit;
use proptest::prelude::*;

const N_LINKS: usize = 3;
const CREDITS: u64 = 4;
const RING: usize = 16;

fn flit(flow: usize, packet: u64) -> ServedFlit {
    ServedFlit {
        flow,
        packet,
        arrival: 0,
        len: 1,
        flit_index: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-link delivery order equals commit order under arbitrary
    /// freeze/thaw interleavings, with conservation and bounded
    /// buffering.
    #[test]
    fn buffered_path_is_a_transparent_pipe_per_link(
        // (flow, action): action 0 = nothing, 1 = freeze the flow's
        // link first, 2 = thaw it first.
        script in prop::collection::vec((0..6usize, 0..3u8), 1..300),
    ) {
        let links = LinkSet::new(N_LINKS, CREDITS);
        let (mut tx, rx) = spsc_ring(RING);
        let mut core = FlusherCore::new(0, rx, N_LINKS);
        let mut delivered: Vec<(usize, u64)> = Vec::new();
        let mut committed: Vec<(usize, u64)> = Vec::new();

        for (i, &(flow, action)) in script.iter().enumerate() {
            let link = links.route(flow);
            match action {
                1 => links.freeze(link),
                2 => links.release_stall(link),
                _ => {}
            }
            // The worker's commit protocol: credit first, then ring.
            // A real worker would park the flow on credit exhaustion;
            // this single-threaded harness thaws the link and pumps the
            // flusher instead, which must always free a credit.
            let mut guard = 0;
            while !links.try_acquire(link) {
                links.release_stall(link);
                let mut sink = |_s: usize, f: &ServedFlit| {
                    delivered.push((links.route(f.flow), f.packet));
                };
                core.step(&links, None, &mut sink);
                guard += 1;
                prop_assert!(guard < 1000, "credit never freed for link {link}");
            }
            let mut item = flit(flow, i as u64);
            let mut guard = 0;
            while let Err(back) = tx.push(item) {
                item = back;
                let mut sink = |_s: usize, f: &ServedFlit| {
                    delivered.push((links.route(f.flow), f.packet));
                };
                core.step(&links, None, &mut sink);
                guard += 1;
                prop_assert!(guard < 1000, "ring never drained");
            }
            committed.push((link, i as u64));
            // Pump the flusher at an arbitrary-but-deterministic cadence
            // so rings run at varying occupancy across cases.
            if i % 3 == 0 {
                let mut sink = |_s: usize, f: &ServedFlit| {
                    delivered.push((links.route(f.flow), f.packet));
                };
                core.step(&links, None, &mut sink);
            }
            for l in 0..N_LINKS {
                prop_assert!(
                    core.pending_len(l) as u64 <= CREDITS,
                    "pending on link {l} exceeds credit pool"
                );
            }
        }

        // Shutdown: thaw everything and drain.
        for l in 0..N_LINKS {
            links.release_stall(l);
        }
        let mut guard = 0;
        loop {
            let mut sink = |_s: usize, f: &ServedFlit| {
                delivered.push((links.route(f.flow), f.packet));
            };
            if core.step(&links, None, &mut sink) == 0 && core.is_idle() {
                break;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not converge");
        }

        // Conservation.
        prop_assert_eq!(delivered.len(), committed.len());
        prop_assert_eq!(links.flush_clock(), committed.len() as u64);
        // Per-link order = commit order.
        for l in 0..N_LINKS {
            let got: Vec<u64> = delivered.iter().filter(|&&(dl, _)| dl == l).map(|&(_, p)| p).collect();
            let want: Vec<u64> = committed.iter().filter(|&&(cl, _)| cl == l).map(|&(_, p)| p).collect();
            prop_assert_eq!(got, want, "link {} reordered", l);
        }
        // Every credit returned.
        for s in links.snapshot() {
            prop_assert_eq!(s.credits_available, CREDITS);
            prop_assert!(s.outstanding_peak <= CREDITS);
        }
    }
}
