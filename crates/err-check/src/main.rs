//! `err-check` CLI.
//!
//! * `err-check lint [--root PATH]` — run the concurrency source lints
//!   and doc-drift rules over the workspace; exit 1 on any violation.
//! * `err-check lint --list` — print every lint pass and what it
//!   enforces (CI logs this so a green run records which rules ran).
//! * `err-check mutants` — smoke-run the intentionally-broken model
//!   mutants (`cargo test -p err-check --features model mutant_`) and
//!   fail unless every one of them is caught by the checker.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!("usage: err-check lint [--root PATH | --list] | err-check mutants");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.iter().any(|a| a == "--list") => {
            println!("err-check lint passes ({}):", err_check::PASSES.len());
            for (name, what) in err_check::PASSES {
                println!("  {name:<18} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("lint") => {
            let root = match args.get(1).map(String::as_str) {
                None => err_check::workspace_root(),
                Some("--root") => match args.get(2) {
                    Some(p) => PathBuf::from(p),
                    None => return usage(),
                },
                Some(_) => return usage(),
            };
            let violations = match err_check::lint_workspace(&root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("err-check: cannot scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if violations.is_empty() {
                println!("err-check: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("err-check: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("mutants") => {
            // Each `mutant_*` test re-runs a lock-free core with one
            // ordering deliberately weakened and asserts the model
            // checker reports a violation — so a passing filter run
            // means every shipped mutant is caught.
            let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
                .args(["test", "-p", "err-check", "--features", "model", "mutant_"])
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => {
                    eprintln!("err-check: a mutant escaped the model checker");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("err-check: failed to spawn cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
