//! Concurrency static analysis for the workspace sources.
//!
//! The runtime's correctness claims rest on hand-rolled lock-free code
//! — the MPSC ingress ring, the Lamport SPSC egress ring, the credit
//! counters, the `closed+in_flight` drain gate, and the epoch-stamped
//! migration/salvage protocols. This crate enforces the hygiene rules
//! that keep those claims auditable (DESIGN.md §10):
//!
//! * **safety-comment** — every `unsafe` token carries a `// SAFETY:`
//!   justification within the preceding few lines.
//! * **ordering-comment** — every non-`Relaxed` atomic ordering carries
//!   a `// ordering:` comment naming its pairing site.
//! * **seqcst-scope** — `Ordering::SeqCst` is allowlisted per file (the
//!   drain/salvage Dekker protocols) and an error anywhere else; the
//!   per-site justification is the mandatory `// ordering:` comment.
//! * **no-std-mutex** — `std::sync::Mutex` only in allowlisted modules
//!   (cold-path locks documented as such); never on a per-flit path.
//! * **stats-relaxed** — `stats.rs` modules are approximate-under-race
//!   by contract and may only use `Relaxed`.
//! * **try-emit-override** — every `impl Egress` must override
//!   `try_emit` explicitly (or ack with `// try-emit:`): the trait
//!   default delegates to the *blocking* `emit`, the PR 6 deadlock
//!   class.
//! * **ordering-pairing** — `[pair: label @ file]` clauses inside
//!   `// ordering:` comments form a cross-file graph; every clause
//!   must resolve to a scanned file holding a matching clause that
//!   points back, so a refactor cannot strand one side of an
//!   Acquire/Release pair. Mandatory in the fabric-era protocol files.
//! * **park-protocol** — in the per-flow-claim files, every
//!   `park_flow` call names its unpark authority in a `// unpark:`
//!   comment (backticked identifiers must resolve to real code), and
//!   a direct `unpark_flow` needs the same justification — donor
//!   unwinds go through `unpark_respecting_links` (the PR 8 wedge
//!   class).
//! * **panic-boundary** — every spawned-thread closure wraps its body
//!   in `catch_unwind` or carries a `// panic-policy:` justification.
//! * **doc-drift** — declarative needle rules keeping DESIGN.md
//!   §8–§14, README.md, and EXPERIMENTS.md naming the real protocol
//!   vocabulary (generalizes the PR 3/PR 4 drift tests).
//!
//! The scanner is a deliberately small line lexer, not a full parser:
//! it masks string/char literals and comments (so `"unsafe"` in a
//! string does not count), tracks nested block comments and raw
//! strings, and skips `#[cfg(test)]` modules by brace counting. Rules
//! then run over the masked code with an N-line comment lookback; the
//! pairing graph and unpark-authority resolution run as a second,
//! cross-file pass over the whole scanned set ([`lint_files`]).
//!
//! The rule *tables* — allowlists, pass registry, protocol-file lists,
//! doc-drift needles — live in `rules.rs` (one declarative module), so
//! growing the workspace means editing data, not lexer code.
//!
//! `vendor/` is excluded: the vendored stand-ins (including the loom
//! checker itself) are the instrumentation layer, not product code.

#![warn(missing_docs)]

mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::PASSES;
use rules::{CLAIM_FILES, DOC_RULES, MUTEX_FILES, PAIRED_FILES, SEQCST_FILES, TRAIT_IMPL_RULES};

/// How many lines above an `unsafe`/ordering site a justifying comment
/// may sit (multi-line statements push the token below its comment).
const LOOKBACK: usize = 8;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line (0 for whole-document rules).
    pub line: usize,
    /// Rule identifier, e.g. `safety-comment`.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// One source line after masking: `code` has comments and literal
/// contents blanked out; `comment` is the text of any `//` comment.
#[derive(Debug, Default)]
struct Line {
    code: String,
    comment: String,
}

/// Masks `text` line by line: string/char literal contents and comment
/// bodies become spaces in `code`; `//` comment text is captured
/// separately so the SAFETY/ordering rules can read it. Handles nested
/// block comments, raw strings, and multi-line strings.
fn scrub(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum S {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut state = S::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match state {
                S::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            S::Code
                        } else {
                            S::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = S::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                    code.push(' ');
                }
                S::Str => {
                    if b[i] == '\\' {
                        i += 2;
                        code.push(' ');
                    } else {
                        if b[i] == '"' {
                            state = S::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                S::RawStr(hashes) => {
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes as usize)
                            .filter(|c| **c == '#')
                            .count()
                            == hashes as usize
                    {
                        state = S::Code;
                        i += 1 + hashes as usize;
                        code.push(' ');
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                S::Code => match b[i] {
                    '/' if b.get(i + 1) == Some(&'/') => {
                        comment = b[i..].iter().collect();
                        i = b.len();
                    }
                    '/' if b.get(i + 1) == Some(&'*') => {
                        state = S::Block(1);
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = S::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' if raw_string_at(&b, i).is_some() => {
                        let (quote, hashes) = raw_string_at(&b, i).expect("guard checked");
                        state = S::RawStr(hashes);
                        for _ in i..=quote {
                            code.push(' ');
                        }
                        i = quote + 1;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes
                        // with a `'` right after one (possibly escaped)
                        // character; a lifetime never closes.
                        if b.get(i + 1) == Some(&'\\') {
                            let close = b[i + 2..].iter().position(|c| *c == '\'');
                            match close {
                                Some(off) => {
                                    for _ in 0..off + 3 {
                                        code.push(' ');
                                    }
                                    i += off + 3;
                                }
                                None => {
                                    code.push(' ');
                                    i += 1;
                                }
                            }
                        } else if b.get(i + 2) == Some(&'\'') {
                            code.push_str("   ");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
            }
        }
        out.push(Line { code, comment });
    }
    out
}

/// Detects a raw-string opener (`r"`, `r#"`, `br"`, …) at `i`:
/// returns the index of the opening quote and the hash count.
fn raw_string_at(b: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i + 1;
    if b[i] == 'b' {
        if b.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some((j, hashes))
}

/// Whether `code` contains `word` as a standalone token (not a
/// substring of a longer identifier).
fn has_token(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let end = at + word.len();
        let after_ok = end >= code.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Marks the lines belonging to `#[cfg(test)]` items (by brace
/// counting from the attribute), so test code is exempt from the
/// production-hygiene rules.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // Skip until the attached item ends: at the first `;`
            // before any `{`, or at the brace that closes the item.
            let mut depth = 0usize;
            let mut entered = false;
            while i < lines.len() {
                mask[i] = true;
                for c in lines[i].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        ';' if !entered => {
                            entered = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                i += 1;
                if entered && depth == 0 {
                    break;
                }
            }
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether any comment within the lookback window (ending at `line`,
/// inclusive) contains `needle`.
fn comment_nearby(lines: &[Line], line: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(LOOKBACK);
    lines[lo..=line].iter().any(|l| l.comment.contains(needle))
}

/// Whether `code` opens an `impl <trait_name> for …` item (token
/// boundary on the trait name, so `SharedEgress for` is not an
/// `Egress for`).
fn is_trait_impl(code: &str, trait_name: &str) -> bool {
    if !has_token(code, "impl") {
        return false;
    }
    let needle = format!("{trait_name} for ");
    code.match_indices(&needle).any(|(at, _)| {
        at == 0 || {
            let c = code.as_bytes()[at - 1] as char;
            !c.is_alphanumeric() && c != '_'
        }
    })
}

/// Whether the item block opening at (or shortly after) `start`
/// contains `method` as a token — brace-counted from the first `{`,
/// so nested fn bodies stay inside the scanned span.
fn block_has_token(lines: &[Line], start: usize, method: &str) -> bool {
    let mut depth = 0usize;
    let mut entered = false;
    for l in &lines[start..] {
        if has_token(&l.code, method) {
            return true;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if entered && depth == 0 {
            return false;
        }
    }
    false
}

/// Whether the `spawn(…)` call starting on `start` contains `needle`
/// as a token anywhere inside its argument span (paren-counted from
/// the spawn's opening parenthesis, so the whole closure body is
/// scanned however many lines it spans).
fn spawn_span_has_token(lines: &[Line], start: usize, needle: &str) -> bool {
    let mut depth = 0i64;
    let mut entered = false;
    for (j, l) in lines.iter().enumerate().skip(start) {
        let from = if j == start {
            l.code
                .find(".spawn(")
                .or_else(|| l.code.find("::spawn("))
                .unwrap_or(0)
        } else {
            0
        };
        let code = &l.code[from..];
        if has_token(code, needle) {
            return true;
        }
        for c in code.chars() {
            match c {
                '(' => {
                    depth += 1;
                    entered = true;
                }
                ')' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            return false;
        }
    }
    false
}

/// Parses every `[pair: label @ target]` clause out of one comment.
/// Returns `(label, target)` pairs plus whether a malformed clause
/// (no `@` or unterminated) was seen.
fn pair_clauses(comment: &str) -> (Vec<(String, String)>, bool) {
    let mut out = Vec::new();
    let mut malformed = false;
    let mut rest = comment;
    while let Some(p) = rest.find("[pair:") {
        let after = &rest[p + "[pair:".len()..];
        let Some(end) = after.find(']') else {
            malformed = true;
            break;
        };
        match after[..end].split_once('@') {
            Some((label, target)) if !label.trim().is_empty() && !target.trim().is_empty() => {
                out.push((label.trim().to_owned(), target.trim().to_owned()));
            }
            _ => malformed = true,
        }
        rest = &after[end + 1..];
    }
    (out, malformed)
}

/// Extracts the leading identifier of every `` `backticked` `` span in
/// a comment (`` `unpark_respecting_links` `` → that name;
/// `` `park_flow(flow)` `` → `park_flow`).
fn backticked_idents(text: &str) -> Vec<String> {
    text.split('`')
        .skip(1)
        .step_by(2)
        .filter_map(|span| {
            let ident: String = span
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_numeric()))
                .then_some(ident)
        })
        .collect()
}

/// Runs every source rule over one file. `relpath` uses `/` separators
/// relative to the workspace root.
pub fn lint_source(relpath: &str, text: &str) -> Vec<Violation> {
    let lines = scrub(text);
    let in_test = test_mask(&lines);
    let is_stats = relpath.ends_with("src/stats.rs");
    let seqcst_ok = SEQCST_FILES.contains(&relpath);
    let mutex_ok = MUTEX_FILES.contains(&relpath);
    let paired = PAIRED_FILES.contains(&relpath);
    let claim_file = CLAIM_FILES.contains(&relpath);
    let mut v = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        v.push(Violation {
            file: relpath.to_owned(),
            line: line + 1,
            rule,
            msg,
        });
    };
    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if has_token(&l.code, "unsafe") && !comment_nearby(&lines, i, "SAFETY:") {
            push(
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` justification in the preceding lines".into(),
            );
        }
        let non_relaxed = [
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ]
        .iter()
        .any(|o| l.code.contains(o));
        if non_relaxed {
            if !comment_nearby(&lines, i, "ordering:") {
                push(
                    i,
                    "ordering-comment",
                    "non-Relaxed atomic ordering without a `// ordering:` comment naming its pairing site"
                        .into(),
                );
            }
            if paired && !comment_nearby(&lines, i, "[pair:") {
                push(
                    i,
                    "ordering-pairing",
                    "non-Relaxed site in a fabric-era protocol file without a machine-checkable \
                     `[pair: label @ file]` clause (use `@ self` for a same-file counterpart)"
                        .into(),
                );
            }
            if is_stats {
                push(
                    i,
                    "stats-relaxed",
                    "stats modules are approximate-under-race by contract and may only use `Relaxed`"
                        .into(),
                );
            }
        }
        if l.code.contains("Ordering::SeqCst") && !seqcst_ok {
            push(
                i,
                "seqcst-scope",
                format!(
                    "`SeqCst` outside the drain/salvage allowlist ({}); justify with a Dekker argument and allowlist the file, or downgrade",
                    SEQCST_FILES.join(", ")
                ),
            );
        }
        if has_token(&l.code, "Mutex") && !mutex_ok {
            push(
                i,
                "no-std-mutex",
                "`Mutex` outside the documented cold-path allowlist; use the lock-free cores or allowlist with a rationale"
                    .into(),
            );
        }
        for (trait_name, method, ack) in TRAIT_IMPL_RULES {
            if is_trait_impl(&l.code, trait_name)
                && !block_has_token(&lines, i, method)
                && !comment_nearby(&lines, i, ack)
            {
                push(
                    i,
                    "try-emit-override",
                    format!(
                        "`impl {trait_name}` without an explicit `{method}` override: the trait \
                         default delegates to the blocking `emit` (the PR 6 flusher-deadlock \
                         class); override it, or ack inheriting the default with a `// {ack}` \
                         comment"
                    ),
                );
            }
        }
        if claim_file {
            if has_token(&l.code, "park_flow") && !comment_nearby(&lines, i, "unpark:") {
                push(
                    i,
                    "park-protocol",
                    "`park_flow` call without a `// unpark:` comment naming (in backticks) the \
                     authority that will unpark this flow"
                        .into(),
                );
            }
            if has_token(&l.code, "unpark_flow") && !comment_nearby(&lines, i, "unpark:") {
                push(
                    i,
                    "park-protocol",
                    "direct `unpark_flow` call in a claim file: donor-unwind/abort paths must go \
                     through `unpark_respecting_links` (the PR 8 stash-wedge class); a legitimate \
                     authority justifies itself with a `// unpark:` comment"
                        .into(),
                );
            }
        }
        if (l.code.contains(".spawn(") || l.code.contains("::spawn("))
            && !spawn_span_has_token(&lines, i, "catch_unwind")
            && !comment_nearby(&lines, i, "panic-policy:")
        {
            push(
                i,
                "panic-boundary",
                "spawned-thread closure without a `catch_unwind` boundary; wrap the body, or \
                 state the unwind contract in a `// panic-policy:` comment"
                    .into(),
            );
        }
    }
    v
}

/// The cross-file pass: resolves the `[pair:]` graph and the
/// `// unpark:` authorities over the whole scanned set. `files` holds
/// `(workspace-relative path, source text)` pairs.
fn lint_cross(files: &[(String, String)]) -> Vec<Violation> {
    let mut v = Vec::new();
    // Scrub once per file; keep the flattened code for token lookups.
    let scrubbed: Vec<(usize, Vec<Line>)> = files
        .iter()
        .enumerate()
        .map(|(fi, (_, text))| (fi, scrub(text)))
        .collect();
    let flat_code: Vec<String> = scrubbed
        .iter()
        .map(|(_, lines)| {
            lines
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    let resolves = |ident: &str| flat_code.iter().any(|code| has_token(code, ident));
    let known_file = |rel: &str| files.iter().any(|(f, _)| f == rel);

    // Every pairing clause, graph-wide: (file idx, line, label, target).
    struct Clause {
        file: usize,
        line: usize,
        label: String,
        target: String,
    }
    let mut clauses: Vec<Clause> = Vec::new();
    for (fi, lines) in &scrubbed {
        // The linter's own sources document the clause grammar in
        // prose (`[pair: label @ file]` examples); they hold no
        // atomics and are not protocol annotations.
        if files[*fi].0.starts_with("crates/err-check/") {
            continue;
        }
        for (i, l) in lines.iter().enumerate() {
            if l.comment.is_empty() {
                continue;
            }
            let (found, malformed) = pair_clauses(&l.comment);
            if malformed {
                v.push(Violation {
                    file: files[*fi].0.clone(),
                    line: i + 1,
                    rule: "ordering-pairing",
                    msg: "malformed pairing clause; expected `[pair: label @ file]` (target \
                          `self` for a same-file counterpart)"
                        .into(),
                });
            }
            for (label, target) in found {
                let target = if target == "self" {
                    files[*fi].0.clone()
                } else {
                    target
                };
                clauses.push(Clause {
                    file: *fi,
                    line: i + 1,
                    label,
                    target,
                });
            }
        }
    }
    for c in &clauses {
        if !known_file(&c.target) {
            v.push(Violation {
                file: files[c.file].0.clone(),
                line: c.line,
                rule: "ordering-pairing",
                msg: format!(
                    "pairing `{}` targets `{}`, which is not a scanned source file — the \
                     counterpart moved or the path is stale",
                    c.label, c.target
                ),
            });
            continue;
        }
        let this_file = &files[c.file].0;
        let paired_back = clauses.iter().any(|d| {
            d.label == c.label
                && files[d.file].0 == c.target
                && d.target == *this_file
                && (d.file != c.file || d.line != c.line)
        });
        if !paired_back {
            v.push(Violation {
                file: this_file.clone(),
                line: c.line,
                rule: "ordering-pairing",
                msg: format!(
                    "one-sided pairing: `{}` claims its counterpart lives in `{}`, but that file \
                     has no `[pair: {} @ …]` clause pointing back here — half the \
                     Acquire/Release pair has been stranded",
                    c.label, c.target, c.label
                ),
            });
        }
    }

    // Unpark authorities: every backticked name in a claim-file
    // `// unpark:` comment must resolve to real code somewhere in the
    // scanned set (a renamed sweep or helper invalidates the comment).
    for (fi, lines) in &scrubbed {
        if !CLAIM_FILES.contains(&files[*fi].0.as_str()) {
            continue;
        }
        for (i, l) in lines.iter().enumerate() {
            let Some(at) = l.comment.find("unpark:") else {
                continue;
            };
            let after = &l.comment[at + "unpark:".len()..];
            let idents = backticked_idents(after);
            if idents.is_empty() {
                v.push(Violation {
                    file: files[*fi].0.clone(),
                    line: i + 1,
                    rule: "park-protocol",
                    msg: "`// unpark:` comment names no backticked authority; name the function \
                          or sweep that will unpark the flow"
                        .into(),
                });
                continue;
            }
            for ident in idents {
                if !resolves(&ident) {
                    v.push(Violation {
                        file: files[*fi].0.clone(),
                        line: i + 1,
                        rule: "park-protocol",
                        msg: format!(
                            "`// unpark:` names `{ident}`, which resolves to nothing in the \
                             scanned sources — the authority was renamed or removed"
                        ),
                    });
                }
            }
        }
    }
    v
}

/// Runs the per-file rules over every file plus the cross-file passes
/// (pairing graph, unpark-authority resolution). This is the
/// source-side entry point `lint_workspace` builds on; tests feed it
/// miniature in-memory workspaces.
pub fn lint_files(files: &[(String, String)]) -> Vec<Violation> {
    let mut v = Vec::new();
    for (rel, text) in files {
        v.extend(lint_source(rel, text));
    }
    v.extend(lint_cross(files));
    v
}

/// Applies the declarative doc-drift rules against the docs under `root`.
pub fn check_docs(root: &Path) -> Vec<Violation> {
    let mut v = Vec::new();
    for rule in DOC_RULES {
        let text = match std::fs::read_to_string(root.join(rule.doc)) {
            Ok(t) => t,
            Err(e) => {
                v.push(Violation {
                    file: rule.doc.into(),
                    line: 0,
                    rule: "doc-drift",
                    msg: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let scope = match rule.section {
            None => text.as_str(),
            Some(heading) => {
                let Some(start) = text.find(&format!("\n{heading}")) else {
                    v.push(Violation {
                        file: rule.doc.into(),
                        line: 0,
                        rule: "doc-drift",
                        msg: format!("missing section `{heading}`"),
                    });
                    continue;
                };
                let rest = &text[start + 1..];
                match rest[heading.len()..].find("\n## ") {
                    Some(end) => &rest[..heading.len() + end],
                    None => rest,
                }
            }
        };
        // Case-insensitive needle match: docs may capitalize prose
        // ("Mutant kill matrix") differently from identifiers.
        let lower = scope.to_lowercase();
        for needle in rule.needles {
            if !lower.contains(&needle.to_lowercase()) {
                let at = rule
                    .section
                    .map(|s| format!(" section `{s}`"))
                    .unwrap_or_default();
                v.push(Violation {
                    file: rule.doc.into(),
                    line: 0,
                    rule: "doc-drift",
                    msg: format!("{}{at} no longer mentions `{needle}`", rule.doc),
                });
            }
        }
    }
    v
}

/// Collects the `.rs` files subject to the source rules: `src/` and
/// every `crates/*/src` tree (recursively). `vendor/`, `target/`, and
/// integration-test trees are out of scope by construction.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every in-scope source file (per-file rules plus the
/// cross-file pairing/unpark passes) and the doc-drift rules. Returns
/// all violations, sorted by file and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    let mut violations = lint_files(&files);
    violations.extend(check_docs(root));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// The workspace root, resolved at compile time (two levels above this
/// crate's manifest), so the binary works from any cwd.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["safety-comment"]
        );
        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn non_relaxed_requires_ordering_comment() {
        let bad = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["ordering-comment"]
        );
        let good =
            "fn f(a: &AtomicU64) {\n    // ordering: Acquire pairs with the Release store in g.\n    a.load(Ordering::Acquire);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good).is_empty());
        let relaxed = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", relaxed).is_empty());
    }

    #[test]
    fn seqcst_is_scoped_to_the_drain_allowlist() {
        let src = "fn f(a: &AtomicU64) {\n    // ordering: SeqCst Dekker with g.\n    a.load(Ordering::SeqCst);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["seqcst-scope"]
        );
        assert!(lint_source("crates/err-runtime/src/gate.rs", src).is_empty());
    }

    #[test]
    fn mutex_is_scoped_to_the_cold_path_allowlist() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["no-std-mutex"]
        );
        assert!(lint_source("crates/err-egress/src/link.rs", src).is_empty());
    }

    #[test]
    fn stats_modules_must_stay_relaxed() {
        let src = "fn f(a: &AtomicU64) {\n    // ordering: Acquire pairs with merge.\n    a.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/err-runtime/src/stats.rs", src)),
            ["stats-relaxed"]
        );
        let relaxed = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/err-runtime/src/stats.rs", relaxed).is_empty());
    }

    #[test]
    fn literals_and_comments_do_not_trip_rules() {
        let src = concat!(
            "fn f() {\n",
            "    let s = \"unsafe Ordering::SeqCst Mutex\";\n",
            "    let c = 'u';\n",
            "    let r = r#\"unsafe { Mutex }\"#;\n",
            "    /* unsafe Mutex Ordering::Acquire */\n",
            "}\n",
            "// prose about unsafe Mutex blocks is fine\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn multi_line_strings_stay_masked() {
        let src = "fn f() {\n    let s = \"line one\n    unsafe Mutex line two\";\n}\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::sync::Mutex;\n",
            "    fn t() {\n",
            "        unsafe { core::hint::unreachable_unchecked() }\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
        let outside = "use std::sync::Mutex;\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", outside)),
            ["no-std-mutex"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were treated as an opening char literal the rest of
        // the line would be masked and the violation missed.
        let src = "fn f<'a>(x: &'a AtomicU64) {\n    x.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["ordering-comment"]
        );
    }

    #[test]
    fn lookback_window_is_bounded() {
        let mut src = String::from("// SAFETY: too far away.\n");
        for _ in 0..LOOKBACK + 1 {
            src.push_str("fn pad() {}\n");
        }
        src.push_str("fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", &src)),
            ["safety-comment"]
        );
    }

    #[test]
    fn token_matching_requires_word_boundaries() {
        let src = "fn f(unsafety: u32, my_mutex_count: MutexCount) {}\n";
        // `unsafety` and `MutexCount` are distinct identifiers, not the
        // `unsafe` / `Mutex` tokens.
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn egress_impl_requires_try_emit_override() {
        let bad = concat!(
            "impl Egress for MySink {\n",
            "    fn emit(&mut self, shard: usize, flit: &ServedFlit) {}\n",
            "}\n",
        );
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["try-emit-override"]
        );
        let overridden = concat!(
            "impl Egress for MySink {\n",
            "    fn emit(&mut self, shard: usize, flit: &ServedFlit) {}\n",
            "    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {\n",
            "        true\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", overridden).is_empty());
        let acked = concat!(
            "// try-emit: this sink never blocks, so inheriting the\n",
            "// default's emit delegation is safe.\n",
            "impl Egress for MySink {\n",
            "    fn emit(&mut self, shard: usize, flit: &ServedFlit) {}\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", acked).is_empty());
    }

    #[test]
    fn paired_files_require_machine_checkable_clauses() {
        let free_text = concat!(
            "fn f(a: &AtomicU64) {\n",
            "    // ordering: Acquire pairs with the publish in g.\n",
            "    a.load(Ordering::Acquire);\n",
            "}\n",
        );
        // Outside the protocol files a free-text comment is enough...
        assert!(lint_source("crates/x/src/a.rs", free_text).is_empty());
        // ...inside them the clause is mandatory.
        assert_eq!(
            rules_of(&lint_source("crates/err-egress/src/flusher.rs", free_text)),
            ["ordering-pairing"]
        );
        let claused = concat!(
            "fn f(a: &AtomicU64) {\n",
            "    // ordering: Acquire pairs with the publish in g.\n",
            "    // [pair: watermark @ self]\n",
            "    a.load(Ordering::Acquire);\n",
            "}\n",
        );
        assert!(lint_source("crates/err-egress/src/flusher.rs", claused).is_empty());
    }

    #[test]
    fn pairing_graph_resolves_both_sides() {
        let a = (
            "crates/x/src/a.rs".to_owned(),
            concat!(
                "fn f(x: &AtomicU64) {\n",
                "    // ordering: Release publishes the state g joins.\n",
                "    // [pair: x-flag @ crates/x/src/b.rs]\n",
                "    x.store(1, Ordering::Release);\n",
                "}\n",
            )
            .to_owned(),
        );
        let b_ok = (
            "crates/x/src/b.rs".to_owned(),
            concat!(
                "fn g(x: &AtomicU64) {\n",
                "    // ordering: Acquire joins f's publish.\n",
                "    // [pair: x-flag @ crates/x/src/a.rs]\n",
                "    x.load(Ordering::Acquire);\n",
                "}\n",
            )
            .to_owned(),
        );
        assert!(lint_files(&[a.clone(), b_ok]).is_empty());
        // Counterpart clause gone: the pairing is one-sided.
        let b_bare = ("crates/x/src/b.rs".to_owned(), "fn g() {}\n".to_owned());
        assert_eq!(
            rules_of(&lint_files(&[a.clone(), b_bare])),
            ["ordering-pairing"]
        );
        // Target file not in the scanned set: the path went stale.
        assert_eq!(rules_of(&lint_files(&[a])), ["ordering-pairing"]);
    }

    #[test]
    fn self_pairs_need_a_counterpart_clause() {
        let one_sided = (
            "crates/x/src/a.rs".to_owned(),
            "// ordering: Release half of the loop. [pair: loop @ self]\n".to_owned(),
        );
        assert_eq!(rules_of(&lint_files(&[one_sided])), ["ordering-pairing"]);
        let both = (
            "crates/x/src/a.rs".to_owned(),
            concat!(
                "// ordering: Release half of the loop. [pair: loop @ self]\n",
                "// ordering: Acquire half of the loop. [pair: loop @ self]\n",
            )
            .to_owned(),
        );
        assert!(lint_files(&[both]).is_empty());
    }

    #[test]
    fn malformed_pair_clauses_are_flagged() {
        for bad in ["// [pair: no-target]\n", "// [pair: unterminated\n"] {
            let file = ("crates/x/src/a.rs".to_owned(), bad.to_owned());
            let v = lint_files(&[file]);
            assert_eq!(rules_of(&v), ["ordering-pairing"], "case: {bad:?}");
            assert!(v[0].msg.contains("malformed"), "case: {bad:?}");
        }
    }

    #[test]
    fn park_calls_need_an_unpark_comment_in_claim_files() {
        let bad = "fn f(s: &mut S) {\n    s.sched.park_flow(flow);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/err-runtime/src/shard.rs", bad)),
            ["park-protocol"]
        );
        // Outside the claim files the pass does not run.
        assert!(lint_source("crates/x/src/a.rs", bad).is_empty());
        let direct = "fn f(s: &mut S) {\n    s.sched.unpark_flow(flow);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/err-runtime/src/shard.rs", direct)),
            ["park-protocol"]
        );
    }

    #[test]
    fn unpark_authorities_must_resolve() {
        let live = (
            "crates/err-runtime/src/shard.rs".to_owned(),
            concat!(
                "fn sweep_links() {}\n",
                "fn f(s: &mut S) {\n",
                "    // unpark: the `sweep_links` pass at the loop top.\n",
                "    s.sched.park_flow(flow);\n",
                "}\n",
            )
            .to_owned(),
        );
        assert!(lint_files(&[live]).is_empty());
        let renamed = (
            "crates/err-runtime/src/shard.rs".to_owned(),
            concat!(
                "fn f(s: &mut S) {\n",
                "    // unpark: the `ghost_sweep` pass at the loop top.\n",
                "    s.sched.park_flow(flow);\n",
                "}\n",
            )
            .to_owned(),
        );
        let v = lint_files(&[renamed]);
        assert_eq!(rules_of(&v), ["park-protocol"]);
        assert!(v[0].msg.contains("ghost_sweep"));
        let nameless = (
            "crates/err-runtime/src/shard.rs".to_owned(),
            concat!(
                "fn f(s: &mut S) {\n",
                "    // unpark: somebody, eventually.\n",
                "    s.sched.park_flow(flow);\n",
                "}\n",
            )
            .to_owned(),
        );
        assert_eq!(rules_of(&lint_files(&[nameless])), ["park-protocol"]);
    }

    #[test]
    fn spawns_need_a_panic_boundary() {
        let bad = concat!(
            "fn f() {\n",
            "    std::thread::spawn(move || {\n",
            "        work();\n",
            "    });\n",
            "}\n",
        );
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["panic-boundary"]
        );
        let caught = concat!(
            "fn f() {\n",
            "    std::thread::spawn(move || {\n",
            "        let _ = std::panic::catch_unwind(|| work());\n",
            "    });\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", caught).is_empty());
        let policy = concat!(
            "fn f() {\n",
            "    // panic-policy: a worker death is a modeled fault; the\n",
            "    // supervisor sweep detects and salvages it.\n",
            "    std::thread::spawn(move || {\n",
            "        work();\n",
            "    });\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", policy).is_empty());
    }

    #[test]
    fn pair_clause_and_backtick_parsing() {
        let (clauses, malformed) =
            pair_clauses("x [pair: a @ self] then [pair: b @ crates/x/src/a.rs]");
        assert!(!malformed);
        assert_eq!(
            clauses,
            [
                ("a".to_owned(), "self".to_owned()),
                ("b".to_owned(), "crates/x/src/a.rs".to_owned()),
            ]
        );
        assert!(pair_clauses("[pair: broken").1);
        assert!(pair_clauses("[pair: no-at-sign]").1);
        assert_eq!(
            backticked_idents("the `unpark_respecting_links` helper, via `park_flow(flow)`"),
            ["unpark_respecting_links", "park_flow"]
        );
        assert!(backticked_idents("`42` and `!` are not identifiers").is_empty());
    }

    #[test]
    fn every_normative_design_section_has_a_doc_rule() {
        let design =
            std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
        for n in 8..=14 {
            let heading = format!("## {n}");
            assert!(
                design.contains(&format!("\n{heading}")),
                "DESIGN.md lost its normative section `{heading}`"
            );
            assert!(
                DOC_RULES
                    .iter()
                    .any(|r| r.doc == "DESIGN.md" && r.section == Some(heading.as_str())),
                "normative DESIGN.md section `{heading}` has no doc-drift rule; \
                 add one to rules::DOC_RULES"
            );
        }
    }

    #[test]
    fn passes_registry_covers_every_emitted_rule() {
        // Every rule id a lint pass can emit; a new pass must register
        // itself in `rules::PASSES` so `lint --list` stays honest.
        let emitted = [
            "safety-comment",
            "ordering-comment",
            "seqcst-scope",
            "no-std-mutex",
            "stats-relaxed",
            "try-emit-override",
            "ordering-pairing",
            "park-protocol",
            "panic-boundary",
            "doc-drift",
        ];
        for rule in emitted {
            assert!(
                PASSES.iter().any(|(id, _)| *id == rule),
                "pass `{rule}` missing from the rules::PASSES registry"
            );
        }
        assert_eq!(
            PASSES.len(),
            emitted.len(),
            "PASSES lists a pass no lint emits"
        );
    }
}
