//! Concurrency static analysis for the workspace sources.
//!
//! The runtime's correctness claims rest on hand-rolled lock-free code
//! — the MPSC ingress ring, the Lamport SPSC egress ring, the credit
//! counters, the `closed+in_flight` drain gate, and the epoch-stamped
//! migration/salvage protocols. This crate enforces the hygiene rules
//! that keep those claims auditable (DESIGN.md §10):
//!
//! * **safety-comment** — every `unsafe` token carries a `// SAFETY:`
//!   justification within the preceding few lines.
//! * **ordering-comment** — every non-`Relaxed` atomic ordering carries
//!   a `// ordering:` comment naming its pairing site.
//! * **seqcst-scope** — `Ordering::SeqCst` is allowlisted per file (the
//!   drain/salvage Dekker protocols) and an error anywhere else; the
//!   per-site justification is the mandatory `// ordering:` comment.
//! * **no-std-mutex** — `std::sync::Mutex` only in allowlisted modules
//!   (cold-path locks documented as such); never on a per-flit path.
//! * **stats-relaxed** — `stats.rs` modules are approximate-under-race
//!   by contract and may only use `Relaxed`.
//! * **doc-drift** — declarative needle rules keeping DESIGN.md §8/§9/
//!   §10, README.md, and EXPERIMENTS.md naming the real protocol
//!   vocabulary (generalizes the PR 3/PR 4 drift tests).
//!
//! The scanner is a deliberately small line lexer, not a full parser:
//! it masks string/char literals and comments (so `"unsafe"` in a
//! string does not count), tracks nested block comments and raw
//! strings, and skips `#[cfg(test)]` modules by brace counting. Rules
//! then run over the masked code with an N-line comment lookback.
//!
//! `vendor/` is excluded: the vendored stand-ins (including the loom
//! checker itself) are the instrumentation layer, not product code.

#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above an `unsafe`/ordering site a justifying comment
/// may sit (multi-line statements push the token below its comment).
const LOOKBACK: usize = 8;

/// Files allowed to use `Ordering::SeqCst`. Everything here is a
/// store→load (Dekker) protocol where independent total order is the
/// point: the drain gate's `closed+in_flight` pairing and the
/// salvage/migration epoch machinery built on it.
const SEQCST_FILES: &[&str] = &[
    "crates/err-runtime/src/gate.rs",
    "crates/err-runtime/src/fault.rs",
    "crates/err-runtime/src/migrate.rs",
    // Ownership: the §13.3 submit-window Dekker (window enter vs map
    // flip) and the §13.2 epoch CAS; modeled with the shipped atomics
    // by err-check's model_ownership_window_dekker.
    "crates/err-runtime/src/ownership.rs",
    // FabricGate: the §10 DrainGate `closed+in_flight` Dekker pair
    // replayed at fabric scope (DESIGN.md §11.3).
    "crates/err-fabric/src/fabric.rs",
];

/// Files allowed to hold a `std::sync::Mutex`. Each is a documented
/// cold-path lock: never taken on the per-flit fast path.
const MUTEX_FILES: &[&str] = &[
    // SharedEgress: serialized sink for stealing groundwork (lib docs).
    "crates/err-egress/src/lib.rs",
    // stall_hist: watchdog-only, touched once per stall release.
    "crates/err-egress/src/link.rs",
    // MigrationSlot package handoff: once per migration, not per flit.
    "crates/err-runtime/src/migrate.rs",
    // Salvage lock + exit collection: once per shard death.
    "crates/err-runtime/src/fault.rs",
    // Experiment-harness job queue (parking_lot): offline runner, no
    // runtime fast path.
    "crates/err-experiments/src/runner.rs",
    // Fabric node registry, kill reports, and fault-event log: taken at
    // boot, on a chaos kill, and at drain — never per flit (the
    // per-flit fabric path is the forwarder's lock-free handoff).
    "crates/err-fabric/src/fabric.rs",
    // HopTracker entry stamps (§11.8): sharded map touched once per
    // packet per hop — never per flit — on the forwarder's tail path.
    "crates/err-fabric/src/hops.rs",
];

/// One declarative doc-drift rule: `doc` (under the workspace root)
/// must contain every needle, inside `section` when one is given.
struct DocRule {
    doc: &'static str,
    /// A `## N` heading; the rule applies from there to the next `## `.
    section: Option<&'static str>,
    needles: &'static [&'static str],
}

/// The drift contract: normative docs must keep naming the protocol
/// vocabulary the code exports. Mirrors (and extends to §10) the
/// enum-derived drift tests in `tests/migration_stealing.rs` and
/// `tests/fault_tolerance.rs`.
const DOC_RULES: &[DocRule] = &[
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 8"),
        needles: &[
            "Idle",
            "Requested",
            "Quiescing",
            "Draining",
            "InTransit",
            "FlowMap",
            "LoadBoard",
            "MigrationSlot",
            "MigratedFlow",
            "extract_flow",
            "absorb_flow",
            "park_flow",
        ],
    },
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 9"),
        needles: &[
            "Running",
            "Quarantined",
            "Dead",
            "Exited",
            "Clean",
            "Panicked",
            "Abandoned",
            "FaultBoard",
            "salvage",
        ],
    },
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 10"),
        needles: &[
            "MpscRing",
            "DrainGate",
            "CreditPool",
            "spsc",
            "Acquire",
            "Release",
            "SeqCst",
            "err-check",
            "loom",
            "happens-before",
        ],
    },
    // §11 vocabulary: every routing verdict, forwarder outcome, and
    // fabric fault the code can take must stay named in the spec.
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 11"),
        needles: &[
            // NextHop / LinkEnd (topology.rs).
            "Eject",
            "Forward",
            "Neighbor",
            // ForwardOutcome (forwarder.rs).
            "Ejected",
            "Forwarded",
            "Refused",
            "Rerouted",
            "DeadLettered",
            // FabricFault (chaos.rs).
            "KillLink",
            "KillNode",
            // The machinery the outcomes ride on.
            "Forwarder",
            "FabricFaultPlan",
            "try_emit",
            "route_table",
            "dimension-order",
            "ECMP",
            // Per-hop latency attribution (§11.8, hops.rs / stats.rs).
            "HopTracker",
            "HopSnapshot",
            "flow_hops",
            "service clock",
        ],
    },
    // §12 vocabulary: the estimator's pipeline stages, regimes, and
    // acceptance artifacts must stay named in the spec.
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 12"),
        needles: &[
            // The pipeline (decompose.rs / linksim.rs / compose.rs).
            "decompose",
            "LinkLoad",
            "simulate_node",
            "PathEstimate",
            "EstimateReport",
            "HopEstimate",
            "contention domain",
            // The arrival model and composition regimes.
            "just-in-time",
            "primer",
            "service clock",
            "credit-share",
            "funnel",
            // The envelope and the validation gates.
            "floor",
            "ceiling",
            "envelope",
            "BENCH_estimate",
            "--estimate",
        ],
    },
    // §13 vocabulary: the ownership authority's states, protocol
    // verbs, and the resurrection handshake must stay named in the
    // spec (the ownership layer is spec-first; see §13's preamble).
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 13"),
        needles: &[
            // OwnerState (ownership.rs).
            "Settled",
            "Stealing",
            "Salvaging",
            // The authority and its protocol verbs.
            "Ownership",
            "FlowMap",
            "ClaimToken",
            "WindowGuard",
            "try_claim",
            "seize_for_salvage",
            "try_reroute",
            "release",
            "window_enter",
            "window_clear",
            "epoch",
            "linearization",
            // The §13.5 fence and §13.6 handshake.
            "FlushProgress",
            "Bequest",
            "resurrection",
        ],
    },
    // §14 vocabulary: the healing layer's fault events, policies, and
    // supervision artifacts must stay named in the spec (spec-first,
    // like §13; see §14's preamble).
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 14"),
        needles: &[
            // FabricFault heal events and their builders (chaos.rs).
            "HealLink",
            "ReviveNode",
            "PanicForwarder",
            "heal_link_at",
            "revive_node_at",
            "panic_forwarder_at",
            // The dead-letter replay machinery (link.rs / flusher.rs).
            "HoldForRecovery",
            "resurrect",
            "replayed",
            // Bounded drains (fabric.rs).
            "DrainOutcome",
            "HeldForRecovery",
            // Forwarder supervision (forwarder.rs / chaos.rs).
            "ForwarderExit",
            "catch_unwind",
            "poisoned",
        ],
    },
    DocRule {
        doc: "README.md",
        section: None,
        needles: &[
            "err-check",
            "loom",
            "err-fabric",
            "err-estimate",
            "backpressure",
        ],
    },
    DocRule {
        doc: "EXPERIMENTS.md",
        section: None,
        needles: &[
            "interleavings",
            "mutant",
            "BENCH_fabric",
            "BENCH_estimate",
            "isolation",
            "speedup",
            "fabric_heal",
            "fabric_flap",
        ],
    },
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line (0 for whole-document rules).
    pub line: usize,
    /// Rule identifier, e.g. `safety-comment`.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// One source line after masking: `code` has comments and literal
/// contents blanked out; `comment` is the text of any `//` comment.
#[derive(Debug, Default)]
struct Line {
    code: String,
    comment: String,
}

/// Masks `text` line by line: string/char literal contents and comment
/// bodies become spaces in `code`; `//` comment text is captured
/// separately so the SAFETY/ordering rules can read it. Handles nested
/// block comments, raw strings, and multi-line strings.
fn scrub(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum S {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut state = S::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match state {
                S::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            S::Code
                        } else {
                            S::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = S::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                    code.push(' ');
                }
                S::Str => {
                    if b[i] == '\\' {
                        i += 2;
                        code.push(' ');
                    } else {
                        if b[i] == '"' {
                            state = S::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                S::RawStr(hashes) => {
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes as usize)
                            .filter(|c| **c == '#')
                            .count()
                            == hashes as usize
                    {
                        state = S::Code;
                        i += 1 + hashes as usize;
                        code.push(' ');
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                S::Code => match b[i] {
                    '/' if b.get(i + 1) == Some(&'/') => {
                        comment = b[i..].iter().collect();
                        i = b.len();
                    }
                    '/' if b.get(i + 1) == Some(&'*') => {
                        state = S::Block(1);
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = S::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' if raw_string_at(&b, i).is_some() => {
                        let (quote, hashes) = raw_string_at(&b, i).expect("guard checked");
                        state = S::RawStr(hashes);
                        for _ in i..=quote {
                            code.push(' ');
                        }
                        i = quote + 1;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes
                        // with a `'` right after one (possibly escaped)
                        // character; a lifetime never closes.
                        if b.get(i + 1) == Some(&'\\') {
                            let close = b[i + 2..].iter().position(|c| *c == '\'');
                            match close {
                                Some(off) => {
                                    for _ in 0..off + 3 {
                                        code.push(' ');
                                    }
                                    i += off + 3;
                                }
                                None => {
                                    code.push(' ');
                                    i += 1;
                                }
                            }
                        } else if b.get(i + 2) == Some(&'\'') {
                            code.push_str("   ");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
            }
        }
        out.push(Line { code, comment });
    }
    out
}

/// Detects a raw-string opener (`r"`, `r#"`, `br"`, …) at `i`:
/// returns the index of the opening quote and the hash count.
fn raw_string_at(b: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i + 1;
    if b[i] == 'b' {
        if b.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some((j, hashes))
}

/// Whether `code` contains `word` as a standalone token (not a
/// substring of a longer identifier).
fn has_token(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let end = at + word.len();
        let after_ok = end >= code.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Marks the lines belonging to `#[cfg(test)]` items (by brace
/// counting from the attribute), so test code is exempt from the
/// production-hygiene rules.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // Skip until the attached item ends: at the first `;`
            // before any `{`, or at the brace that closes the item.
            let mut depth = 0usize;
            let mut entered = false;
            while i < lines.len() {
                mask[i] = true;
                for c in lines[i].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        ';' if !entered => {
                            entered = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                i += 1;
                if entered && depth == 0 {
                    break;
                }
            }
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether any comment within the lookback window (ending at `line`,
/// inclusive) contains `needle`.
fn comment_nearby(lines: &[Line], line: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(LOOKBACK);
    lines[lo..=line].iter().any(|l| l.comment.contains(needle))
}

/// Runs every source rule over one file. `relpath` uses `/` separators
/// relative to the workspace root.
pub fn lint_source(relpath: &str, text: &str) -> Vec<Violation> {
    let lines = scrub(text);
    let in_test = test_mask(&lines);
    let is_stats = relpath.ends_with("src/stats.rs");
    let seqcst_ok = SEQCST_FILES.contains(&relpath);
    let mutex_ok = MUTEX_FILES.contains(&relpath);
    let mut v = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        v.push(Violation {
            file: relpath.to_owned(),
            line: line + 1,
            rule,
            msg,
        });
    };
    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if has_token(&l.code, "unsafe") && !comment_nearby(&lines, i, "SAFETY:") {
            push(
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` justification in the preceding lines".into(),
            );
        }
        let non_relaxed = [
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ]
        .iter()
        .any(|o| l.code.contains(o));
        if non_relaxed {
            if !comment_nearby(&lines, i, "ordering:") {
                push(
                    i,
                    "ordering-comment",
                    "non-Relaxed atomic ordering without a `// ordering:` comment naming its pairing site"
                        .into(),
                );
            }
            if is_stats {
                push(
                    i,
                    "stats-relaxed",
                    "stats modules are approximate-under-race by contract and may only use `Relaxed`"
                        .into(),
                );
            }
        }
        if l.code.contains("Ordering::SeqCst") && !seqcst_ok {
            push(
                i,
                "seqcst-scope",
                format!(
                    "`SeqCst` outside the drain/salvage allowlist ({}); justify with a Dekker argument and allowlist the file, or downgrade",
                    SEQCST_FILES.join(", ")
                ),
            );
        }
        if has_token(&l.code, "Mutex") && !mutex_ok {
            push(
                i,
                "no-std-mutex",
                "`Mutex` outside the documented cold-path allowlist; use the lock-free cores or allowlist with a rationale"
                    .into(),
            );
        }
    }
    v
}

/// Applies the declarative doc-drift rules against the docs under `root`.
pub fn check_docs(root: &Path) -> Vec<Violation> {
    let mut v = Vec::new();
    for rule in DOC_RULES {
        let text = match std::fs::read_to_string(root.join(rule.doc)) {
            Ok(t) => t,
            Err(e) => {
                v.push(Violation {
                    file: rule.doc.into(),
                    line: 0,
                    rule: "doc-drift",
                    msg: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let scope = match rule.section {
            None => text.as_str(),
            Some(heading) => {
                let Some(start) = text.find(&format!("\n{heading}")) else {
                    v.push(Violation {
                        file: rule.doc.into(),
                        line: 0,
                        rule: "doc-drift",
                        msg: format!("missing section `{heading}`"),
                    });
                    continue;
                };
                let rest = &text[start + 1..];
                match rest[heading.len()..].find("\n## ") {
                    Some(end) => &rest[..heading.len() + end],
                    None => rest,
                }
            }
        };
        // Case-insensitive needle match: docs may capitalize prose
        // ("Mutant kill matrix") differently from identifiers.
        let lower = scope.to_lowercase();
        for needle in rule.needles {
            if !lower.contains(&needle.to_lowercase()) {
                let at = rule
                    .section
                    .map(|s| format!(" section `{s}`"))
                    .unwrap_or_default();
                v.push(Violation {
                    file: rule.doc.into(),
                    line: 0,
                    rule: "doc-drift",
                    msg: format!("{}{at} no longer mentions `{needle}`", rule.doc),
                });
            }
        }
    }
    v
}

/// Collects the `.rs` files subject to the source rules: `src/` and
/// every `crates/*/src` tree (recursively). `vendor/`, `target/`, and
/// integration-test trees are out of scope by construction.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every in-scope source file plus the doc-drift rules. Returns
/// all violations, sorted by file and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        violations.extend(lint_source(&rel, &text));
    }
    violations.extend(check_docs(root));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// The workspace root, resolved at compile time (two levels above this
/// crate's manifest), so the binary works from any cwd.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["safety-comment"]
        );
        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn non_relaxed_requires_ordering_comment() {
        let bad = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", bad)),
            ["ordering-comment"]
        );
        let good =
            "fn f(a: &AtomicU64) {\n    // ordering: Acquire pairs with the Release store in g.\n    a.load(Ordering::Acquire);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good).is_empty());
        let relaxed = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", relaxed).is_empty());
    }

    #[test]
    fn seqcst_is_scoped_to_the_drain_allowlist() {
        let src = "fn f(a: &AtomicU64) {\n    // ordering: SeqCst Dekker with g.\n    a.load(Ordering::SeqCst);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["seqcst-scope"]
        );
        assert!(lint_source("crates/err-runtime/src/gate.rs", src).is_empty());
    }

    #[test]
    fn mutex_is_scoped_to_the_cold_path_allowlist() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["no-std-mutex"]
        );
        assert!(lint_source("crates/err-egress/src/link.rs", src).is_empty());
    }

    #[test]
    fn stats_modules_must_stay_relaxed() {
        let src = "fn f(a: &AtomicU64) {\n    // ordering: Acquire pairs with merge.\n    a.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/err-runtime/src/stats.rs", src)),
            ["stats-relaxed"]
        );
        let relaxed = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/err-runtime/src/stats.rs", relaxed).is_empty());
    }

    #[test]
    fn literals_and_comments_do_not_trip_rules() {
        let src = concat!(
            "fn f() {\n",
            "    let s = \"unsafe Ordering::SeqCst Mutex\";\n",
            "    let c = 'u';\n",
            "    let r = r#\"unsafe { Mutex }\"#;\n",
            "    /* unsafe Mutex Ordering::Acquire */\n",
            "}\n",
            "// prose about unsafe Mutex blocks is fine\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn multi_line_strings_stay_masked() {
        let src = "fn f() {\n    let s = \"line one\n    unsafe Mutex line two\";\n}\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::sync::Mutex;\n",
            "    fn t() {\n",
            "        unsafe { core::hint::unreachable_unchecked() }\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
        let outside = "use std::sync::Mutex;\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", outside)),
            ["no-std-mutex"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were treated as an opening char literal the rest of
        // the line would be masked and the violation missed.
        let src = "fn f<'a>(x: &'a AtomicU64) {\n    x.load(Ordering::Acquire);\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", src)),
            ["ordering-comment"]
        );
    }

    #[test]
    fn lookback_window_is_bounded() {
        let mut src = String::from("// SAFETY: too far away.\n");
        for _ in 0..LOOKBACK + 1 {
            src.push_str("fn pad() {}\n");
        }
        src.push_str("fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(
            rules_of(&lint_source("crates/x/src/a.rs", &src)),
            ["safety-comment"]
        );
    }

    #[test]
    fn token_matching_requires_word_boundaries() {
        let src = "fn f(unsafety: u32, my_mutex_count: MutexCount) {}\n";
        // `unsafety` and `MutexCount` are distinct identifiers, not the
        // `unsafe` / `Mutex` tokens.
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }
}
