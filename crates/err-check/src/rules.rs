//! The declarative rule tables behind the lint passes: file
//! allowlists, protocol-aware pass configuration, and the doc-drift
//! vocabulary contract. `lib.rs` holds the lexer and the pass
//! implementations; everything a reviewer would want to *edit* when
//! the workspace grows — a new Dekker file, a new DESIGN section, a
//! new trait whose override is load-bearing — lives here.

/// Every lint pass, in the order `lint` runs them: `(rule id, what it
/// enforces)`. `cargo run -p err-check -- lint --list` prints this
/// table so CI logs record exactly which passes ran.
pub const PASSES: &[(&str, &str)] = &[
    (
        "safety-comment",
        "every `unsafe` token carries a `// SAFETY:` justification within the lookback window",
    ),
    (
        "ordering-comment",
        "every non-Relaxed atomic ordering carries a `// ordering:` comment naming its pairing site",
    ),
    (
        "seqcst-scope",
        "`Ordering::SeqCst` only in the allowlisted Dekker files; downgrade or allowlist with proof",
    ),
    (
        "no-std-mutex",
        "`std::sync::Mutex` only in allowlisted cold-path modules, never per flit",
    ),
    (
        "stats-relaxed",
        "stats modules are approximate-under-race by contract and stay entirely `Relaxed`",
    ),
    (
        "try-emit-override",
        "every `impl Egress` overrides `try_emit` explicitly or acks with `// try-emit:` (the PR 6 \
         deadlock class: the default delegates to the blocking `emit`)",
    ),
    (
        "ordering-pairing",
        "`[pair: label @ file]` clauses in `// ordering:` comments form a graph; each side must \
         resolve to a matching clause pointing back (refactors cannot strand half an \
         Acquire/Release pair); mandatory in the fabric-era protocol files",
    ),
    (
        "park-protocol",
        "in per-flow-claim files every `park_flow` names its unpark authority in a `// unpark:` \
         comment whose backticked identifiers resolve, and direct `unpark_flow` calls need the \
         same justification — donor-unwind paths go through `unpark_respecting_links` (the PR 8 \
         wedge class)",
    ),
    (
        "panic-boundary",
        "every spawned-thread closure wraps its body in `catch_unwind` or carries a \
         `// panic-policy:` justification",
    ),
    (
        "doc-drift",
        "DESIGN/README/EXPERIMENTS keep naming the protocol vocabulary the code exports",
    ),
];

/// Files allowed to use `Ordering::SeqCst`. Everything here is a
/// store→load (Dekker) protocol where independent total order is the
/// point: the drain gate's `closed+in_flight` pairing and the
/// salvage/migration epoch machinery built on it.
pub(crate) const SEQCST_FILES: &[&str] = &[
    "crates/err-runtime/src/gate.rs",
    "crates/err-runtime/src/fault.rs",
    "crates/err-runtime/src/migrate.rs",
    // Ownership: the §13.3 submit-window Dekker (window enter vs map
    // flip) and the §13.2 epoch CAS; modeled with the shipped atomics
    // by err-check's model_ownership_window_dekker.
    "crates/err-runtime/src/ownership.rs",
    // FabricGate: the §10 DrainGate `closed+in_flight` Dekker pair
    // replayed at fabric scope (DESIGN.md §11.3).
    "crates/err-fabric/src/fabric.rs",
];

/// Files allowed to hold a `std::sync::Mutex`. Each is a documented
/// cold-path lock: never taken on the per-flit fast path.
pub(crate) const MUTEX_FILES: &[&str] = &[
    // SharedEgress: serialized sink for stealing groundwork (lib docs).
    "crates/err-egress/src/lib.rs",
    // stall_hist: watchdog-only, touched once per stall release.
    "crates/err-egress/src/link.rs",
    // MigrationSlot package handoff: once per migration, not per flit.
    "crates/err-runtime/src/migrate.rs",
    // Salvage lock + exit collection: once per shard death.
    "crates/err-runtime/src/fault.rs",
    // Experiment-harness job queue (parking_lot): offline runner, no
    // runtime fast path.
    "crates/err-experiments/src/runner.rs",
    // Fabric node registry, kill reports, and fault-event log: taken at
    // boot, on a chaos kill, and at drain — never per flit (the
    // per-flit fabric path is the forwarder's lock-free handoff).
    "crates/err-fabric/src/fabric.rs",
    // HopTracker entry stamps (§11.8): sharded map touched once per
    // packet per hop — never per flit — on the forwarder's tail path.
    "crates/err-fabric/src/hops.rs",
];

/// Trait impls whose method override is load-bearing: `(trait name,
/// method that must be overridden, ack needle)`. An `impl <trait> for`
/// block missing the method is a violation unless a `// <ack>` comment
/// near the impl line justifies inheriting the default.
///
/// `Egress::try_emit` is the PR 6 deadlock class: the trait default
/// delegates to the *blocking* `emit`, so a wrapper that forgets the
/// override turns a forwarder's polite refusal into a flusher-thread
/// spin that starves every other link's credits.
pub(crate) const TRAIT_IMPL_RULES: &[(&str, &str, &str)] = &[("Egress", "try_emit", "try-emit:")];

/// Files whose non-Relaxed atomic sites must carry a machine-checkable
/// `[pair: label @ file]` clause (the PR 8/9 fabric-era protocol
/// files). Elsewhere a free-text `// ordering:` comment is enough;
/// clauses are still graph-checked wherever they appear.
pub(crate) const PAIRED_FILES: &[&str] = &[
    "crates/err-runtime/src/ownership.rs",
    "crates/err-fabric/src/chaos.rs",
    "crates/err-fabric/src/fabric.rs",
    "crates/err-egress/src/flusher.rs",
];

/// Files that take per-flow claims (DESIGN.md §13): the park/unpark
/// protocol pass runs only here. An unpark that bypasses
/// `unpark_respecting_links` on a donor-unwind path is the PR 8
/// stash-wedge class.
pub(crate) const CLAIM_FILES: &[&str] = &[
    "crates/err-runtime/src/migrate.rs",
    "crates/err-runtime/src/fault.rs",
    "crates/err-runtime/src/shard.rs",
];

/// One declarative doc-drift rule: `doc` (under the workspace root)
/// must contain every needle, inside `section` when one is given.
pub(crate) struct DocRule {
    pub(crate) doc: &'static str,
    /// A `## N` heading; the rule applies from there to the next `## `.
    pub(crate) section: Option<&'static str>,
    pub(crate) needles: &'static [&'static str],
}

/// The drift contract: normative docs must keep naming the protocol
/// vocabulary the code exports. Mirrors (and extends to §10) the
/// enum-derived drift tests in `tests/migration_stealing.rs` and
/// `tests/fault_tolerance.rs`. One rule per normative DESIGN section
/// (§8–§14) — `tests::every_normative_design_section_has_a_doc_rule`
/// asserts the table stays complete as sections are added.
pub(crate) const DOC_RULES: &[DocRule] = &[
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 8"),
        needles: &[
            "Idle",
            "Requested",
            "Quiescing",
            "Draining",
            "InTransit",
            "FlowMap",
            "LoadBoard",
            "MigrationSlot",
            "MigratedFlow",
            "extract_flow",
            "absorb_flow",
            "park_flow",
        ],
    },
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 9"),
        needles: &[
            "Running",
            "Quarantined",
            "Dead",
            "Exited",
            "Clean",
            "Panicked",
            "Abandoned",
            "FaultBoard",
            "salvage",
        ],
    },
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 10"),
        needles: &[
            "MpscRing",
            "DrainGate",
            "CreditPool",
            "spsc",
            "Acquire",
            "Release",
            "SeqCst",
            "err-check",
            "loom",
            "happens-before",
            // The v2 protocol-aware passes and fabric-era models.
            "try-emit-override",
            "ordering-pairing",
            "park-protocol",
            "panic-boundary",
            "[pair:",
            "HandleTable",
            "FlushProgress",
            "HoldForRecovery",
        ],
    },
    // §11 vocabulary: every routing verdict, forwarder outcome, and
    // fabric fault the code can take must stay named in the spec.
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 11"),
        needles: &[
            // NextHop / LinkEnd (topology.rs).
            "Eject",
            "Forward",
            "Neighbor",
            // ForwardOutcome (forwarder.rs).
            "Ejected",
            "Forwarded",
            "Refused",
            "Rerouted",
            "DeadLettered",
            // FabricFault (chaos.rs).
            "KillLink",
            "KillNode",
            // The machinery the outcomes ride on.
            "Forwarder",
            "FabricFaultPlan",
            "try_emit",
            "route_table",
            "dimension-order",
            "ECMP",
            // Per-hop latency attribution (§11.8, hops.rs / stats.rs).
            "HopTracker",
            "HopSnapshot",
            "flow_hops",
            "service clock",
        ],
    },
    // §12 vocabulary: the estimator's pipeline stages, regimes, and
    // acceptance artifacts must stay named in the spec.
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 12"),
        needles: &[
            // The pipeline (decompose.rs / linksim.rs / compose.rs).
            "decompose",
            "LinkLoad",
            "simulate_node",
            "PathEstimate",
            "EstimateReport",
            "HopEstimate",
            "contention domain",
            // The arrival model and composition regimes.
            "just-in-time",
            "primer",
            "service clock",
            "credit-share",
            "funnel",
            // The envelope and the validation gates.
            "floor",
            "ceiling",
            "envelope",
            "BENCH_estimate",
            "--estimate",
        ],
    },
    // §13 vocabulary: the ownership authority's states, protocol
    // verbs, and the resurrection handshake must stay named in the
    // spec (the ownership layer is spec-first; see §13's preamble).
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 13"),
        needles: &[
            // OwnerState (ownership.rs).
            "Settled",
            "Stealing",
            "Salvaging",
            // The authority and its protocol verbs.
            "Ownership",
            "FlowMap",
            "ClaimToken",
            "WindowGuard",
            "try_claim",
            "seize_for_salvage",
            "try_reroute",
            "release",
            "window_enter",
            "window_clear",
            "epoch",
            "linearization",
            // The §13.5 fence and §13.6 handshake.
            "FlushProgress",
            "Bequest",
            "resurrection",
        ],
    },
    // §14 vocabulary: the healing layer's fault events, policies, and
    // supervision artifacts must stay named in the spec (spec-first,
    // like §13; see §14's preamble).
    DocRule {
        doc: "DESIGN.md",
        section: Some("## 14"),
        needles: &[
            // FabricFault heal events and their builders (chaos.rs).
            "HealLink",
            "ReviveNode",
            "PanicForwarder",
            "heal_link_at",
            "revive_node_at",
            "panic_forwarder_at",
            // The dead-letter replay machinery (link.rs / flusher.rs).
            "HoldForRecovery",
            "resurrect",
            "replayed",
            // Bounded drains (fabric.rs).
            "DrainOutcome",
            "HeldForRecovery",
            // Forwarder supervision (forwarder.rs / chaos.rs).
            "ForwarderExit",
            "catch_unwind",
            "poisoned",
        ],
    },
    DocRule {
        doc: "README.md",
        section: None,
        needles: &[
            "err-check",
            "loom",
            "err-fabric",
            "err-estimate",
            "backpressure",
        ],
    },
    DocRule {
        doc: "EXPERIMENTS.md",
        section: None,
        needles: &[
            "interleavings",
            "mutant",
            "BENCH_fabric",
            "BENCH_estimate",
            "isolation",
            "speedup",
            "fabric_heal",
            "fabric_flap",
            // The four fabric-era models (PR 10) must stay in the
            // interleaving-count / mutant-kill matrix.
            "model_credit_hold_refused_try_emit",
            "model_handle_table_swap_mid_handoff",
            "model_hold_for_recovery_resurrect_vs_finalize",
            "model_flush_progress_retire_fence",
        ],
    },
];
