// Violating fixture: the PR 9 stranded-pair class. The Release side
// claims its Acquire counterpart lives in another file; the pairing
// graph must notice nothing points back.
pub fn publish(flag: &AtomicBool) {
    // ordering: Release publishes the drained state the reader joins.
    // [pair: drain-flag @ crates/err-runtime/src/lib.rs]
    flag.store(true, Ordering::Release);
}
