// Violating fixture: a bare worker spawn. A panic in `pump` unwinds
// into a silent thread death — no boundary, no stated contract.
pub fn start(state: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        pump(&state);
    })
}
