// Passing fixture: the wrapper forwards both delivery paths, so the
// inner sink's refusal stays a refusal.
impl Egress for TracingSink {
    fn emit(&mut self, shard: usize, flit: &ServedFlit) {
        self.log.push((shard, flit.packet));
        self.inner.emit(shard, flit);
    }

    fn try_emit(&mut self, shard: usize, flit: &ServedFlit) -> bool {
        if !self.inner.try_emit(shard, flit) {
            return false;
        }
        self.log.push((shard, flit.packet));
        true
    }
}

// Passing fixture: a sink that deliberately inherits the default and
// says so.
// try-emit: this sink is terminal and never refuses; the default's
// delegation to `emit` is the intended behavior.
impl Egress for CountingSink {
    fn emit(&mut self, _shard: usize, _flit: &ServedFlit) {
        self.count += 1;
    }
}
