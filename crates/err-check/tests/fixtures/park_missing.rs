// Violating fixture: the PR 8 stash-wedge class. A donor-unwind path
// unparks directly — bypassing `unpark_respecting_links` — and parks a
// flow with no named unpark authority.
pub fn withdraw(ctx: &mut StealContext, flow: usize) {
    ctx.sched.unpark_flow(flow);
}

pub fn credit_park(ctx: &mut StealContext, flow: usize) {
    ctx.sched.park_flow(flow);
}
