// Passing fixture: the Acquire half pointing back at the Release half
// in `pairing_ok_a.rs`.
pub fn join(flag: &AtomicBool) -> bool {
    // ordering: Acquire joins the drain publish.
    // [pair: drain-flag @ crates/err-egress/src/flusher.rs]
    flag.load(Ordering::Acquire)
}
