// Passing fixture: every park names its unpark authority and the
// direct unpark justifies itself.
pub fn unpark_respecting_links(ctx: &mut StealContext, flow: usize) {
    ctx.sched.handoff(flow);
}

pub fn withdraw(ctx: &mut StealContext, flow: usize) {
    // unpark: this call *is* `unpark_respecting_links` duty — the
    // credit re-check above is exactly the guard it provides.
    ctx.sched.unpark_flow(flow);
}

pub fn credit_park(ctx: &mut StealContext, flow: usize) {
    // unpark: `unpark_respecting_links` on the withdraw path above,
    // once the link's credit frees.
    ctx.sched.park_flow(flow);
}
