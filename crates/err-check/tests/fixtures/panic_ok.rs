// Passing fixture: one spawn carries an unwind boundary, the other
// states its contract.
pub fn start_caught(state: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| pump(&state)));
        state.record(outcome);
    })
}

pub fn start_supervised(state: Arc<Shared>) -> std::thread::JoinHandle<()> {
    // panic-policy: a pump panic is a modeled fault — the supervisor's
    // sweep detects the dead thread and the drain-time `join` reports
    // it; nothing is poisoned.
    std::thread::spawn(move || {
        pump(&state);
    })
}
