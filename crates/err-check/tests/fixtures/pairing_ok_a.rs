// Passing fixture: the Release half of a cross-file pair; its
// counterpart lives in `pairing_ok_b.rs` and points back.
pub fn publish(flag: &AtomicBool) {
    // ordering: Release publishes the drained state the reader joins.
    // [pair: drain-flag @ crates/err-runtime/src/lib.rs]
    flag.store(true, Ordering::Release);
}
