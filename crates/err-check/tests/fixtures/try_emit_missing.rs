// Violating fixture: the PR 6 flusher-deadlock class. This wrapper
// forwards `emit` but forgets `try_emit`, so the trait default turns a
// downstream refusal into a blocking `emit` under the wrapper.
impl Egress for TracingSink {
    fn emit(&mut self, shard: usize, flit: &ServedFlit) {
        self.log.push((shard, flit.packet));
        self.inner.emit(shard, flit);
    }
}
