//! Fixture-driven tests for the protocol-aware lint passes: each pass
//! gets a violating fixture it must flag and a passing fixture it must
//! accept, plus meta-tests that replay the historical bug classes the
//! passes were built from (the PR 6 flusher deadlock, the PR 8
//! donor-unwind wedge, the PR 9 stranded pairing) and assert the
//! linter would have caught each one.

use err_check::{lint_files, lint_source, Violation};

fn rules_of(v: &[Violation]) -> Vec<&'static str> {
    v.iter().map(|x| x.rule).collect()
}

/// A scanned-set entry at a path the relevant pass applies to.
fn at(path: &str, src: &str) -> (String, String) {
    (path.to_owned(), src.to_owned())
}

// ---------------------------------------------------------------------
// try-emit-override
// ---------------------------------------------------------------------

#[test]
fn try_emit_fixture_violating() {
    let src = include_str!("fixtures/try_emit_missing.rs");
    let v = lint_source("crates/x/src/sink.rs", src);
    assert_eq!(rules_of(&v), ["try-emit-override"]);
    assert!(v[0].msg.contains("try_emit"));
}

#[test]
fn try_emit_fixture_passing() {
    let src = include_str!("fixtures/try_emit_ok.rs");
    assert!(lint_source("crates/x/src/sink.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// ordering-pairing
// ---------------------------------------------------------------------

#[test]
fn pairing_fixture_violating() {
    // The counterpart file exists but lost its clause: the exact
    // stranding `lint_files` must report as one-sided.
    let v = lint_files(&[
        at(
            "crates/err-egress/src/flusher.rs",
            include_str!("fixtures/pairing_one_sided.rs"),
        ),
        at("crates/err-runtime/src/lib.rs", "pub fn join() {}\n"),
    ]);
    assert_eq!(rules_of(&v), ["ordering-pairing"]);
    assert!(v[0].msg.contains("one-sided"));
}

#[test]
fn pairing_fixture_stale_target() {
    // The counterpart file itself is gone from the scanned set.
    let v = lint_files(&[at(
        "crates/err-egress/src/flusher.rs",
        include_str!("fixtures/pairing_one_sided.rs"),
    )]);
    assert_eq!(rules_of(&v), ["ordering-pairing"]);
    assert!(v[0].msg.contains("not a scanned source file"));
}

#[test]
fn pairing_fixture_passing() {
    let v = lint_files(&[
        at(
            "crates/err-egress/src/flusher.rs",
            include_str!("fixtures/pairing_ok_a.rs"),
        ),
        at(
            "crates/err-runtime/src/lib.rs",
            include_str!("fixtures/pairing_ok_b.rs"),
        ),
    ]);
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ---------------------------------------------------------------------
// park-protocol
// ---------------------------------------------------------------------

#[test]
fn park_fixture_violating() {
    let v = lint_files(&[at(
        "crates/err-runtime/src/migrate.rs",
        include_str!("fixtures/park_missing.rs"),
    )]);
    // Both the justification-free direct unpark and the authority-free
    // park are flagged.
    assert_eq!(rules_of(&v), ["park-protocol", "park-protocol"]);
}

#[test]
fn park_fixture_passing() {
    let v = lint_files(&[at(
        "crates/err-runtime/src/migrate.rs",
        include_str!("fixtures/park_ok.rs"),
    )]);
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ---------------------------------------------------------------------
// panic-boundary
// ---------------------------------------------------------------------

#[test]
fn panic_fixture_violating() {
    let src = include_str!("fixtures/panic_missing.rs");
    let v = lint_source("crates/x/src/worker.rs", src);
    assert_eq!(rules_of(&v), ["panic-boundary"]);
}

#[test]
fn panic_fixture_passing() {
    let src = include_str!("fixtures/panic_ok.rs");
    assert!(lint_source("crates/x/src/worker.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Historical bug classes: each pass replayed against a miniature of
// the real regression it was distilled from. If a refactor weakens a
// pass below catching its founding bug, these fail.
// ---------------------------------------------------------------------

/// PR 6: `SharedEgress` wrapped an inner sink and inherited the trait
/// default, so the inner sink's `try_emit` refusal became a blocking
/// `emit` held under the shared lock — every flusher stalled behind
/// one refused flit.
#[test]
fn meta_pr6_shared_egress_missing_override_is_caught() {
    let src = concat!(
        "impl<E: Egress> Egress for SharedEgress<E> {\n",
        "    fn emit(&mut self, shard: usize, flit: &ServedFlit) {\n",
        "        self.inner.lock().expect(\"poisoned\").emit(shard, flit);\n",
        "    }\n",
        "}\n",
    );
    let v = lint_source("crates/err-egress/src/lib.rs", src);
    assert_eq!(rules_of(&v), ["try-emit-override"]);
}

/// PR 8: a donor's unwind path called `unpark_flow` directly, skipping
/// the credit re-check `unpark_respecting_links` performs — the flow
/// woke against a stalled link and wedged its stash.
#[test]
fn meta_pr8_donor_unwind_direct_unpark_is_caught() {
    let src = concat!(
        "fn withdraw_grant(ctx: &mut StealContext, flow: usize) {\n",
        "    ctx.slot.clear();\n",
        "    ctx.sched.unpark_flow(flow);\n",
        "}\n",
    );
    let v = lint_files(&[at("crates/err-runtime/src/migrate.rs", src)]);
    assert_eq!(rules_of(&v), ["park-protocol"]);
    assert!(v[0].msg.contains("unpark_respecting_links"));
}

/// PR 9: a drain refactor moved the Acquire side of the egress-closed
/// pairing and the stale comment survived review — the class the
/// machine-checked `[pair:]` graph exists to catch.
#[test]
fn meta_pr9_stranded_pairing_is_caught() {
    let release_side = concat!(
        "pub fn close(flag: &AtomicBool) {\n",
        "    // ordering: Release publishes the close to the flusher.\n",
        "    // [pair: egress-closed @ crates/err-egress/src/flusher.rs]\n",
        "    flag.store(true, Ordering::Release);\n",
        "}\n",
    );
    // The flusher after the refactor: still loads the flag, but its
    // clause was dropped on the way.
    let acquire_side = concat!(
        "pub fn run(flag: &AtomicBool) {\n",
        "    // ordering: Acquire joins the runtime's close publish.\n",
        "    while !flag.load(Ordering::Acquire) {}\n",
        "}\n",
    );
    let v = lint_files(&[
        at("crates/err-runtime/src/lib.rs", release_side),
        at("crates/err-egress/src/flusher.rs", acquire_side),
    ]);
    let rules = rules_of(&v);
    assert!(
        rules.contains(&"ordering-pairing"),
        "stranded pair escaped: {v:?}"
    );
    assert!(v.iter().any(|x| x.msg.contains("one-sided")));
}

/// The supervision era's founding hazard: a worker spawned with no
/// unwind boundary and no stated policy dies silently, leaving its
/// shard's flows unscheduled with nothing sweeping them.
#[test]
fn meta_silent_worker_death_is_caught() {
    let src = concat!(
        "fn boot(shared: Arc<Shared>) {\n",
        "    std::thread::spawn(move || loop {\n",
        "        shared.pump();\n",
        "    });\n",
        "}\n",
    );
    let v = lint_source("crates/err-runtime/src/lib.rs", src);
    assert_eq!(rules_of(&v), ["panic-boundary"]);
}
