//! The workspace must lint clean: every rule in err-check's engine,
//! applied to every source file and doc contract, with zero findings.
//! This is the same check CI runs via `cargo run -p err-check -- lint`,
//! pinned as a test so `cargo test --workspace` catches drift too.

use err_check::{check_docs, lint_workspace, workspace_root};

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let mut violations = lint_workspace(&root).expect("walk workspace sources");
    violations.extend(check_docs(&root));
    assert!(
        violations.is_empty(),
        "err-check found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
