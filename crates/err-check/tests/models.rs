//! Loom-style model checks over the workspace's lock-free cores, plus
//! intentionally-broken mutants the checker must catch.
//!
//! Run with `cargo test -p err-check --features model`. Each shipped
//! structure gets a model that passes (exhaustively where the state
//! space allows, preemption-bounded where it doesn't) and a paired
//! `mutant_*` test that weakens exactly one memory ordering and asserts
//! the checker reports a violation. `cargo run -p err-check -- mutants`
//! runs only the mutant half as a CI smoke.
#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use err_egress::{spsc_ring, CreditPool};
use err_runtime::channel::MpscRing;
use err_runtime::gate::DrainGate;
use err_runtime::{OwnerState, Ownership};
use loom::cell::UnsafeCell;
use loom::model::Builder;
use loom::thread;

/// Runs `f` under the checker expecting a violation (data race, failed
/// assertion, deadlock); panics if the mutant escapes.
fn expect_violation<F>(name: &str, f: F)
where
    F: FnOnce(),
{
    let payload = catch_unwind(AssertUnwindSafe(f))
        .expect_err(&format!("mutant `{name}` escaped the model checker"));
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(
        msg.contains("loom model violation"),
        "mutant `{name}` panicked for the wrong reason: {msg}"
    );
}

// ---------------------------------------------------------------------
// Shipped models: these must pass.
// ---------------------------------------------------------------------

/// Two producers race into the ingress MPSC ring while the consumer
/// drains; nothing is lost, duplicated, or torn. Preemption-bounded:
/// three threads with retry loops blow up the unbounded schedule space,
/// and two preemptions already cover every publish/consume overlap.
#[test]
fn model_mpsc_two_producers_no_loss() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let ring = Arc::new(MpscRing::with_capacity(2));
        let handles: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|v| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    ring.push(v).expect("capacity 2 never fills with 2 pushes");
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for h in handles {
            h.join().expect("producer");
        }
        got.sort_unstable();
        assert_eq!(got, [1, 2], "each packet delivered exactly once");
        assert!(ring.is_empty());
    });
    println!(
        "model_mpsc_two_producers_no_loss: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// A capacity-1 ring forced through sequence-number wraparound: the
/// producer pushes two packets back-to-back (retrying while full), so
/// the same slot is reused with a lap-incremented sequence. FIFO order
/// must survive the wrap.
#[test]
fn model_mpsc_wraparound_capacity_one() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let ring = Arc::new(MpscRing::with_capacity(1));
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for v in [10u32, 20u32] {
                    let mut item = v;
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(_) => {
                                item = v;
                                thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, [10, 20], "FIFO across the wraparound");
    });
    println!(
        "model_mpsc_wraparound_capacity_one: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The egress pipeline in miniature: the worker acquires a credit
/// before pushing into the SPSC ring; the flusher pops and releases the
/// credit on delivery. With one credit the ring can never hold more
/// than one in-flight flit, order is preserved, and the pool returns to
/// full once drained.
#[test]
fn model_spsc_credit_pipeline() {
    let mut b = Builder::new();
    b.max_preemptions = Some(3);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let (mut tx, mut rx) = spsc_ring::<u32>(2);
        let credits = Arc::new(CreditPool::new(1));
        let producer = {
            let credits = Arc::clone(&credits);
            thread::spawn(move || {
                for v in [7u32, 8u32] {
                    while !credits.try_acquire() {
                        thread::yield_now();
                    }
                    tx.push(v).expect("a held credit guarantees ring space");
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            match rx.pop() {
                Some(v) => {
                    got.push(v);
                    credits.release();
                }
                None => thread::yield_now(),
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, [7, 8], "SPSC order preserved");
        assert!(rx.is_empty());
        assert_eq!(credits.available(), 1, "all credits returned");
        assert_eq!(credits.outstanding(), 0);
    });
    println!(
        "model_spsc_credit_pipeline: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The closed+in_flight drain pairing (DESIGN.md §10), pinning PR 4's
/// one-packet leak: a submitter races `DrainGate::enter` against the
/// worker's `close` → `can_finish` → final ring read. The shipped
/// announce-then-check order means any packet the gate admits is
/// visible to the worker's final read — checked exhaustively, no
/// preemption bound.
#[test]
fn model_drain_gate_no_lost_packet() {
    let report = Builder::new().check(|| {
        let gate = Arc::new(DrainGate::new());
        let ring = Arc::new(UnsafeCell::new(0u32));
        let submitter = {
            let gate = Arc::clone(&gate);
            let ring = Arc::clone(&ring);
            thread::spawn(move || match gate.enter() {
                Some(permit) => {
                    ring.with_mut(|p| unsafe { *p += 1 });
                    drop(permit);
                    true
                }
                None => false,
            })
        };
        gate.close();
        while !gate.can_finish() {
            thread::yield_now();
        }
        // can_finish() == true orders this read after any admitted
        // push's permit drop; a rejected submitter never touches the
        // ring. The race detector proves both claims.
        let drained = ring.with(|p| unsafe { *p });
        let accepted = submitter.join().expect("submitter");
        assert_eq!(
            drained,
            u32::from(accepted),
            "every admitted packet is drained, every rejected one untouched"
        );
    });
    println!(
        "model_drain_gate_no_lost_packet: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "gate model must be exhaustive");
}

/// The three-party submit-window Dekker (DESIGN.md §13.3) over the
/// *shipped* [`Ownership`] — not a miniature: two producers race a
/// mover on one flow. Each producer enters the submit window, reads the
/// map, and pushes into the ring the map names; the mover claims the
/// flow, flips the map (epoch CAS), waits for the window to clear, and
/// only then drains the old ring. The old-ring slots are raw cells, so
/// the window protocol is the *only* thing keeping a producer's push
/// and the mover's drain apart — the race detector proves the Dekker,
/// and the final assertion proves no push strands in the old ring
/// after the drain (the §13.3 lost-packet hazard).
#[test]
fn model_ownership_window_dekker() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        use loom::sync::atomic::{AtomicU64, Ordering};
        let own = Arc::new(Ownership::new(1, 2));
        let src = own.shard_of(0).expect("flow 0 is mapped");
        let dst = 1 - src;
        // One old-ring slot per producer (a real MpscRing synchronizes
        // concurrent pushes internally; per-producer slots model the
        // ring without re-modeling it).
        let slots: Arc<[UnsafeCell<u64>; 2]> = Arc::new([UnsafeCell::new(0), UnsafeCell::new(0)]);
        // The new ring stands in as an atomic counter: its internal
        // synchronization is someone else's model (the MPSC one above).
        let dst_ring = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = [0usize, 1usize]
            .into_iter()
            .map(|i| {
                let own = Arc::clone(&own);
                let slots = Arc::clone(&slots);
                let dst_ring = Arc::clone(&dst_ring);
                thread::spawn(move || {
                    let guard = own.window_enter(0).expect("mapped flow has a window");
                    let home = own.shard_of(0).expect("mapped");
                    if home == src {
                        slots[i].with_mut(|p| unsafe { *p += 1 });
                    } else {
                        dst_ring.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(guard);
                })
            })
            .collect();
        let mover = {
            let own = Arc::clone(&own);
            let slots = Arc::clone(&slots);
            thread::spawn(move || {
                let tok = own
                    .try_claim(0, OwnerState::Stealing, dst)
                    .expect("flow starts Settled");
                assert!(own.try_reroute(&tok, dst), "epoch-0 reroute cannot lose");
                while !own.window_clear(0) {
                    thread::yield_now();
                }
                // Window clear after the flip ⇒ every old-epoch push
                // is drained here, none lands later.
                let moved = slots[0].with_mut(|p| unsafe {
                    let v = *p;
                    *p = 0;
                    v
                }) + slots[1].with_mut(|p| unsafe {
                    let v = *p;
                    *p = 0;
                    v
                });
                own.release(&tok);
                moved
            })
        };
        for p in producers {
            p.join().expect("producer");
        }
        let moved = mover.join().expect("mover");
        let residue = slots[0].with(|p| unsafe { *p }) + slots[1].with(|p| unsafe { *p });
        assert_eq!(residue, 0, "a push landed in the old ring after the drain");
        assert_eq!(
            moved + dst_ring.load(Ordering::SeqCst),
            2,
            "every packet delivered exactly once (moved or re-routed)"
        );
    });
    println!(
        "model_ownership_window_dekker: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

// ---------------------------------------------------------------------
// Mutants: one weakened ordering each; the checker must catch them.
// Each is a self-contained miniature of the shipped structure with the
// single load/store under test flipped to a broken ordering.
// ---------------------------------------------------------------------

/// MpscRing's slot-sequence publish (`channel.rs` push) with the
/// Release store weakened to Relaxed: the consumer's Acquire sequence
/// load no longer carries the cell write, so reading the payload is a
/// data race.
#[test]
fn mutant_mpsc_publish_relaxed() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    expect_violation("mpsc_publish_relaxed", || {
        Builder::new().check(|| {
            let seq = Arc::new(AtomicUsize::new(0));
            let val = Arc::new(UnsafeCell::new(0usize));
            let producer = {
                let (seq, val) = (Arc::clone(&seq), Arc::clone(&val));
                thread::spawn(move || {
                    val.with_mut(|p| unsafe { *p = 42 });
                    // MUTATION: shipped code publishes with Release.
                    seq.store(1, Ordering::Relaxed);
                })
            };
            while seq.load(Ordering::Acquire) != 1 {
                thread::yield_now();
            }
            let got = val.with(|p| unsafe { *p });
            assert_eq!(got, 42);
            producer.join().expect("producer");
        });
    });
}

/// The SPSC ring's Lamport tail publish (`spsc.rs` push) weakened from
/// Release to Relaxed: the consumer's Acquire tail load observes the
/// new index without acquiring the slot write before it.
#[test]
fn mutant_spsc_tail_relaxed() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    expect_violation("spsc_tail_relaxed", || {
        Builder::new().check(|| {
            let tail = Arc::new(AtomicUsize::new(0));
            let head = Arc::new(AtomicUsize::new(0));
            let slot = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (tail, slot) = (Arc::clone(&tail), Arc::clone(&slot));
                thread::spawn(move || {
                    let t = tail.load(Ordering::Relaxed);
                    slot.with_mut(|p| unsafe { *p = 99 });
                    // MUTATION: shipped code stores tail with Release.
                    tail.store(t + 1, Ordering::Relaxed);
                })
            };
            let h = head.load(Ordering::Relaxed);
            while tail.load(Ordering::Acquire) == h {
                thread::yield_now();
            }
            let got = slot.with(|p| unsafe { *p });
            assert_eq!(got, 99);
            head.store(h + 1, Ordering::Release);
            producer.join().expect("producer");
        });
    });
}

/// CreditPool::release (`credit.rs`) weakened from AcqRel to Relaxed:
/// the next try_acquire's CAS sees the credit come back but not the
/// payload work it covered, so two holders of the same credit race on
/// the guarded cell.
#[test]
fn mutant_credit_release_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("credit_release_relaxed", || {
        Builder::new().check(|| {
            let credits = Arc::new(AtomicU64::new(1));
            let guarded = Arc::new(UnsafeCell::new(0u32));
            let try_acquire = |c: &AtomicU64| {
                // Acquire CAS, as shipped (the consume side is sound).
                c.compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            };
            let holder = {
                let (credits, guarded) = (Arc::clone(&credits), Arc::clone(&guarded));
                thread::spawn(move || {
                    assert!(try_acquire(&credits), "credit starts available");
                    guarded.with_mut(|p| unsafe { *p += 1 });
                    // MUTATION: shipped release is AcqRel fetch_add.
                    credits.fetch_add(1, Ordering::Relaxed);
                })
            };
            while !try_acquire(&credits) {
                thread::yield_now();
            }
            guarded.with_mut(|p| unsafe { *p += 1 });
            credits.fetch_add(1, Ordering::Relaxed);
            holder.join().expect("holder");
        });
    });
}

/// DrainGate::enter (`gate.rs`) with the Dekker inverted to
/// check-then-announce — exactly PR 4's one-packet drain leak: the
/// submitter reads `closed == false`, stalls before bumping
/// `in_flight`, the worker closes, sees `in_flight == 0`, declares the
/// drain finished and takes its final ring read — then the stalled
/// submitter lands a packet nobody will ever flush.
#[test]
fn mutant_drain_gate_check_then_enter() {
    use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    struct BrokenGate {
        closed: AtomicBool,
        in_flight: AtomicU64,
    }
    impl BrokenGate {
        // MUTATION: shipped enter announces (fetch_add) *before*
        // checking closed; this checks first.
        fn enter(&self) -> bool {
            if self.closed.load(Ordering::SeqCst) {
                return false;
            }
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            true
        }
        fn exit(&self) {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        fn can_finish(&self) -> bool {
            self.closed.load(Ordering::SeqCst) && self.in_flight.load(Ordering::SeqCst) == 0
        }
    }
    expect_violation("drain_gate_check_then_enter", || {
        // The leak needs one preemption (submitter stalled between its
        // closed check and its in_flight announce); bounding keeps the
        // yield-spin schedule space from drowning it.
        let mut b = Builder::new();
        b.max_preemptions = Some(3);
        b.check(|| {
            let gate = Arc::new(BrokenGate {
                closed: AtomicBool::new(false),
                in_flight: AtomicU64::new(0),
            });
            let ring = Arc::new(UnsafeCell::new(0u32));
            let submitter = {
                let (gate, ring) = (Arc::clone(&gate), Arc::clone(&ring));
                thread::spawn(move || {
                    if gate.enter() {
                        ring.with_mut(|p| unsafe { *p += 1 });
                        gate.exit();
                        true
                    } else {
                        false
                    }
                })
            };
            gate.closed.store(true, Ordering::SeqCst);
            while !gate.can_finish() {
                thread::yield_now();
            }
            let drained = ring.with(|p| unsafe { *p });
            let accepted = submitter.join().expect("submitter");
            assert_eq!(drained, u32::from(accepted), "leaked packet");
        });
    });
}

// The §13.3 window protocol needs three orderings to carry
// happens-before: the producer's window *exit* (WindowGuard's
// fetch_sub publishes the ring push it covers), the mover's
// *window-clear load* (joins that publication before the drain), and
// the claim *release* (publishes the mover's last packet touch to the
// next claimant). Each gets a mutant below. The enter/flip SeqCst
// pairing is a store-buffering (value-order) requirement — the
// vendored checker executes values sequentially consistently (rt.rs
// header), so weakening those cannot be observed through any
// interleaving and they carry no cell-guarding edge to cut.

/// `WindowGuard::drop` (`ownership.rs`) weakened from SeqCst to
/// Relaxed: the relaxed `fetch_sub` extends the release sequence headed
/// by the *enter* — a clock from before the push — so the mover's
/// window-clear load no longer acquires the push, and the drain races
/// it.
#[test]
fn mutant_ownership_window_exit_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("ownership_window_exit_relaxed", || {
        Builder::new().check(|| {
            let window = Arc::new(AtomicU64::new(0));
            let map = Arc::new(AtomicU64::new(0)); // flow homed at src=0
            let ring = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (window, map, ring) =
                    (Arc::clone(&window), Arc::clone(&map), Arc::clone(&ring));
                thread::spawn(move || {
                    window.fetch_add(1, Ordering::SeqCst);
                    if map.load(Ordering::SeqCst) == 0 {
                        ring.with_mut(|p| unsafe { *p += 1 });
                    }
                    // MUTATION: shipped WindowGuard::drop subs SeqCst.
                    window.fetch_sub(1, Ordering::Relaxed);
                })
            };
            map.store(1, Ordering::SeqCst); // the mover's flip
            while window.load(Ordering::SeqCst) != 0 {
                thread::yield_now();
            }
            let _drained = ring.with_mut(|p| unsafe {
                let v = *p;
                *p = 0;
                v
            });
            producer.join().expect("producer");
        });
    });
}

/// `Ownership::window_clear` (`ownership.rs`) weakened from SeqCst to
/// Relaxed: the mover sees the counter hit zero but acquires nothing,
/// so the producer's covered push is unordered against the drain.
#[test]
fn mutant_ownership_window_wait_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("ownership_window_wait_relaxed", || {
        Builder::new().check(|| {
            let window = Arc::new(AtomicU64::new(0));
            let map = Arc::new(AtomicU64::new(0));
            let ring = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (window, map, ring) =
                    (Arc::clone(&window), Arc::clone(&map), Arc::clone(&ring));
                thread::spawn(move || {
                    window.fetch_add(1, Ordering::SeqCst);
                    if map.load(Ordering::SeqCst) == 0 {
                        ring.with_mut(|p| unsafe { *p += 1 });
                    }
                    window.fetch_sub(1, Ordering::SeqCst);
                })
            };
            map.store(1, Ordering::SeqCst);
            // MUTATION: shipped window_clear loads SeqCst.
            while window.load(Ordering::Relaxed) != 0 {
                thread::yield_now();
            }
            let _drained = ring.with_mut(|p| unsafe {
                let v = *p;
                *p = 0;
                v
            });
            producer.join().expect("producer");
        });
    });
}

/// `Ownership::release` (`ownership.rs`) weakened from SeqCst to
/// Relaxed: the relaxed CAS keeps the release sequence headed by the
/// *claim* — a clock from before the mover touched the flow's packets —
/// so the next claimant's acquire joins a stale clock and its packet
/// access races the first mover's.
#[test]
fn mutant_ownership_release_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    const SETTLED: u64 = 0;
    const CLAIMED: u64 = 1;
    expect_violation("ownership_release_relaxed", || {
        Builder::new().check(|| {
            let claim = Arc::new(AtomicU64::new(SETTLED));
            let packets = Arc::new(UnsafeCell::new(0u64));
            let first = {
                let (claim, packets) = (Arc::clone(&claim), Arc::clone(&packets));
                thread::spawn(move || {
                    // Spin-claim (the other mover may hold it first;
                    // losing the race outright must not panic — only
                    // the ordering bug should fail the model).
                    while claim
                        .compare_exchange(SETTLED, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        thread::yield_now();
                    }
                    packets.with_mut(|p| unsafe { *p += 1 });
                    // MUTATION: shipped release CASes SeqCst.
                    claim
                        .compare_exchange(CLAIMED, SETTLED, Ordering::Relaxed, Ordering::Relaxed)
                        .expect("nothing seizes this claim");
                })
            };
            // The next mover: spin-claim, then touch the packets the
            // release was supposed to publish.
            while claim
                .compare_exchange(SETTLED, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                thread::yield_now();
            }
            packets.with_mut(|p| unsafe { *p += 1 });
            claim.store(SETTLED, Ordering::SeqCst);
            first.join().expect("first mover");
        });
    });
}
