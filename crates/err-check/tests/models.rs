//! Loom-style model checks over the workspace's lock-free cores, plus
//! intentionally-broken mutants the checker must catch.
//!
//! Run with `cargo test -p err-check --features model`. Each shipped
//! structure gets a model that passes (exhaustively where the state
//! space allows, preemption-bounded where it doesn't) and a paired
//! `mutant_*` test that weakens exactly one memory ordering and asserts
//! the checker reports a violation. `cargo run -p err-check -- mutants`
//! runs only the mutant half as a CI smoke.
#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use err_egress::{
    spsc_ring, CreditPool, DeadLinkPolicy, Egress, FlushProgress, FlusherCore, LinkSet, ServedFlit,
};
use err_fabric::HandleTable;
use err_runtime::channel::MpscRing;
use err_runtime::gate::DrainGate;
use err_runtime::{OwnerState, Ownership};
use loom::cell::UnsafeCell;
use loom::model::Builder;
use loom::thread;

/// A one-flit-packet for driving the shipped `FlusherCore`.
fn served(flow: usize, packet: u64) -> ServedFlit {
    ServedFlit {
        flow,
        packet,
        arrival: 0,
        len: 1,
        flit_index: 0,
    }
}

/// Runs `f` under the checker expecting a violation (data race, failed
/// assertion, deadlock); panics if the mutant escapes.
fn expect_violation<F>(name: &str, f: F)
where
    F: FnOnce(),
{
    let payload = catch_unwind(AssertUnwindSafe(f))
        .expect_err(&format!("mutant `{name}` escaped the model checker"));
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(
        msg.contains("loom model violation"),
        "mutant `{name}` panicked for the wrong reason: {msg}"
    );
}

// ---------------------------------------------------------------------
// Shipped models: these must pass.
// ---------------------------------------------------------------------

/// Two producers race into the ingress MPSC ring while the consumer
/// drains; nothing is lost, duplicated, or torn. Preemption-bounded:
/// three threads with retry loops blow up the unbounded schedule space,
/// and two preemptions already cover every publish/consume overlap.
#[test]
fn model_mpsc_two_producers_no_loss() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let ring = Arc::new(MpscRing::with_capacity(2));
        let handles: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|v| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    ring.push(v).expect("capacity 2 never fills with 2 pushes");
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for h in handles {
            h.join().expect("producer");
        }
        got.sort_unstable();
        assert_eq!(got, [1, 2], "each packet delivered exactly once");
        assert!(ring.is_empty());
    });
    println!(
        "model_mpsc_two_producers_no_loss: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// A capacity-1 ring forced through sequence-number wraparound: the
/// producer pushes two packets back-to-back (retrying while full), so
/// the same slot is reused with a lap-incremented sequence. FIFO order
/// must survive the wrap.
#[test]
fn model_mpsc_wraparound_capacity_one() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let ring = Arc::new(MpscRing::with_capacity(1));
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for v in [10u32, 20u32] {
                    let mut item = v;
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(_) => {
                                item = v;
                                thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, [10, 20], "FIFO across the wraparound");
    });
    println!(
        "model_mpsc_wraparound_capacity_one: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The egress pipeline in miniature: the worker acquires a credit
/// before pushing into the SPSC ring; the flusher pops and releases the
/// credit on delivery. With one credit the ring can never hold more
/// than one in-flight flit, order is preserved, and the pool returns to
/// full once drained.
#[test]
fn model_spsc_credit_pipeline() {
    let mut b = Builder::new();
    b.max_preemptions = Some(3);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let (mut tx, mut rx) = spsc_ring::<u32>(2);
        let credits = Arc::new(CreditPool::new(1));
        let producer = {
            let credits = Arc::clone(&credits);
            thread::spawn(move || {
                for v in [7u32, 8u32] {
                    while !credits.try_acquire() {
                        thread::yield_now();
                    }
                    tx.push(v).expect("a held credit guarantees ring space");
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            match rx.pop() {
                Some(v) => {
                    got.push(v);
                    credits.release();
                }
                None => thread::yield_now(),
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, [7, 8], "SPSC order preserved");
        assert!(rx.is_empty());
        assert_eq!(credits.available(), 1, "all credits returned");
        assert_eq!(credits.outstanding(), 0);
    });
    println!(
        "model_spsc_credit_pipeline: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The closed+in_flight drain pairing (DESIGN.md §10), pinning PR 4's
/// one-packet leak: a submitter races `DrainGate::enter` against the
/// worker's `close` → `can_finish` → final ring read. The shipped
/// announce-then-check order means any packet the gate admits is
/// visible to the worker's final read — checked exhaustively, no
/// preemption bound.
#[test]
fn model_drain_gate_no_lost_packet() {
    let report = Builder::new().check(|| {
        let gate = Arc::new(DrainGate::new());
        let ring = Arc::new(UnsafeCell::new(0u32));
        let submitter = {
            let gate = Arc::clone(&gate);
            let ring = Arc::clone(&ring);
            thread::spawn(move || match gate.enter() {
                Some(permit) => {
                    ring.with_mut(|p| unsafe { *p += 1 });
                    drop(permit);
                    true
                }
                None => false,
            })
        };
        gate.close();
        while !gate.can_finish() {
            thread::yield_now();
        }
        // can_finish() == true orders this read after any admitted
        // push's permit drop; a rejected submitter never touches the
        // ring. The race detector proves both claims.
        let drained = ring.with(|p| unsafe { *p });
        let accepted = submitter.join().expect("submitter");
        assert_eq!(
            drained,
            u32::from(accepted),
            "every admitted packet is drained, every rejected one untouched"
        );
    });
    println!(
        "model_drain_gate_no_lost_packet: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "gate model must be exhaustive");
}

/// The three-party submit-window Dekker (DESIGN.md §13.3) over the
/// *shipped* [`Ownership`] — not a miniature: two producers race a
/// mover on one flow. Each producer enters the submit window, reads the
/// map, and pushes into the ring the map names; the mover claims the
/// flow, flips the map (epoch CAS), waits for the window to clear, and
/// only then drains the old ring. The old-ring slots are raw cells, so
/// the window protocol is the *only* thing keeping a producer's push
/// and the mover's drain apart — the race detector proves the Dekker,
/// and the final assertion proves no push strands in the old ring
/// after the drain (the §13.3 lost-packet hazard).
#[test]
fn model_ownership_window_dekker() {
    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        use loom::sync::atomic::{AtomicU64, Ordering};
        let own = Arc::new(Ownership::new(1, 2));
        let src = own.shard_of(0).expect("flow 0 is mapped");
        let dst = 1 - src;
        // One old-ring slot per producer (a real MpscRing synchronizes
        // concurrent pushes internally; per-producer slots model the
        // ring without re-modeling it).
        let slots: Arc<[UnsafeCell<u64>; 2]> = Arc::new([UnsafeCell::new(0), UnsafeCell::new(0)]);
        // The new ring stands in as an atomic counter: its internal
        // synchronization is someone else's model (the MPSC one above).
        let dst_ring = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = [0usize, 1usize]
            .into_iter()
            .map(|i| {
                let own = Arc::clone(&own);
                let slots = Arc::clone(&slots);
                let dst_ring = Arc::clone(&dst_ring);
                thread::spawn(move || {
                    let guard = own.window_enter(0).expect("mapped flow has a window");
                    let home = own.shard_of(0).expect("mapped");
                    if home == src {
                        slots[i].with_mut(|p| unsafe { *p += 1 });
                    } else {
                        dst_ring.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(guard);
                })
            })
            .collect();
        let mover = {
            let own = Arc::clone(&own);
            let slots = Arc::clone(&slots);
            thread::spawn(move || {
                let tok = own
                    .try_claim(0, OwnerState::Stealing, dst)
                    .expect("flow starts Settled");
                assert!(own.try_reroute(&tok, dst), "epoch-0 reroute cannot lose");
                while !own.window_clear(0) {
                    thread::yield_now();
                }
                // Window clear after the flip ⇒ every old-epoch push
                // is drained here, none lands later.
                let moved = slots[0].with_mut(|p| unsafe {
                    let v = *p;
                    *p = 0;
                    v
                }) + slots[1].with_mut(|p| unsafe {
                    let v = *p;
                    *p = 0;
                    v
                });
                own.release(&tok);
                moved
            })
        };
        for p in producers {
            p.join().expect("producer");
        }
        let moved = mover.join().expect("mover");
        let residue = slots[0].with(|p| unsafe { *p }) + slots[1].with(|p| unsafe { *p });
        assert_eq!(residue, 0, "a push landed in the old ring after the drain");
        assert_eq!(
            moved + dst_ring.load(Ordering::SeqCst),
            2,
            "every packet delivered exactly once (moved or re-routed)"
        );
    });
    println!(
        "model_ownership_window_dekker: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

// ---------------------------------------------------------------------
// Fabric-era shipped models (DESIGN.md §10): the refused-try_emit
// credit hold, the handle-table incarnation swap, the
// HoldForRecovery resurrect/finalize race, and the FlushProgress
// retire fence — each driven through the *shipped* types
// (FlusherCore, LinkSet, HandleTable, FlushProgress), not miniatures.
// ---------------------------------------------------------------------

/// The §11.2 refused-`try_emit` protocol through the shipped
/// `FlusherCore` + `LinkSet`: a downstream sink refuses until its room
/// flag opens (published with Release after writing the payload cell),
/// and the flusher holds the flit — and its link credit — across every
/// refusal. On acceptance the Acquire room-load must carry the payload
/// write, and exactly one credit returns to the pool.
#[test]
fn model_credit_hold_refused_try_emit() {
    use loom::sync::atomic::{AtomicBool, Ordering};

    struct GatedSink {
        room: Arc<loom::sync::atomic::AtomicBool>,
        payload: Arc<UnsafeCell<u64>>,
        got: u64,
        accepted: u64,
    }
    impl Egress for GatedSink {
        fn emit(&mut self, _shard: usize, _flit: &ServedFlit) {
            unreachable!("the flusher delivers through try_emit only");
        }
        fn try_emit(&mut self, _shard: usize, _flit: &ServedFlit) -> bool {
            if !self.room.load(Ordering::Acquire) {
                // Refusal: the flit stays pending, its credit stays
                // held (the conservation half asserted below).
                return false;
            }
            self.got = self.payload.with(|p| unsafe { *p });
            self.accepted += 1;
            true
        }
    }

    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let links = Arc::new(LinkSet::new(1, 1));
        let room = Arc::new(AtomicBool::new(false));
        let payload = Arc::new(UnsafeCell::new(0u64));
        let (mut tx, rx) = spsc_ring::<ServedFlit>(2);
        // The worker half, pre-thread: spend the link's only credit and
        // commit the flit, exactly as `shard.rs` does before pushing.
        assert!(links.try_acquire(0), "fresh pool has a credit");
        tx.push(served(0, 7)).expect("ring has room");
        let flusher = {
            let (links, room, payload) =
                (Arc::clone(&links), Arc::clone(&room), Arc::clone(&payload));
            thread::spawn(move || {
                let mut core = FlusherCore::new(0, rx, 1);
                let mut sink = GatedSink {
                    room,
                    payload,
                    got: 0,
                    accepted: 0,
                };
                let mut delivered = 0u64;
                while delivered < 1 {
                    delivered += core.step(&links, None, &mut sink);
                    thread::yield_now();
                }
                assert!(core.is_idle(), "one flit in, one flit out");
                (sink.got, sink.accepted)
            })
        };
        // The downstream node making room: payload first, then the
        // Release flag the sink's Acquire load pairs with.
        payload.with_mut(|p| unsafe { *p = 7 });
        room.store(true, Ordering::Release);
        let (got, accepted) = flusher.join().expect("flusher");
        assert_eq!(accepted, 1, "refusals never double-deliver");
        assert_eq!(got, 7, "acceptance carries the downstream's write");
        assert!(
            links.try_acquire(0),
            "the held credit returned on acceptance"
        );
        assert!(!links.try_acquire(0), "exactly one credit returned");
    });
    println!(
        "model_credit_hold_refused_try_emit: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The §14.1 incarnation swap through the shipped generic
/// `HandleTable`: a monitor boots a successor (writing its inbox cell)
/// and swaps it in while a forwarder clones the slot mid-handoff. The
/// write-unlock Release → read-lock Acquire edge on the slot's RwLock
/// must publish the successor's boot writes to any reader that
/// observes the new incarnation, and a clone of the dying incarnation
/// must stay valid.
#[test]
fn model_handle_table_swap_mid_handoff() {
    #[derive(Clone)]
    struct MiniHandle {
        generation: u64,
        inbox: Arc<UnsafeCell<u64>>,
    }

    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let table = Arc::new(HandleTable::<MiniHandle>::new());
        let boot_inbox = Arc::new(UnsafeCell::new(0u64));
        boot_inbox.with_mut(|p| unsafe { *p = 5 });
        table.install(vec![MiniHandle {
            generation: 0,
            inbox: Arc::clone(&boot_inbox),
        }]);
        let monitor = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                // Boot the successor: prime its inbox, then swap it
                // into the slot (write-unlock publishes the priming).
                let inbox = Arc::new(UnsafeCell::new(0u64));
                inbox.with_mut(|p| unsafe { *p = 6 });
                table.swap(
                    0,
                    MiniHandle {
                        generation: 1,
                        inbox,
                    },
                );
            })
        };
        // The forwarder mid-handoff: whichever incarnation `get`
        // clones, its boot writes must already be visible.
        let h = table.get(0).expect("installed before the race");
        let seen = h.inbox.with(|p| unsafe { *p });
        assert_eq!(
            seen,
            5 + h.generation,
            "incarnation read its predecessor's half-boot"
        );
        monitor.join().expect("monitor");
        // The dying incarnation's clone stays valid after the swap.
        assert_eq!(boot_inbox.with(|p| unsafe { *p }), 5);
    });
    println!(
        "model_handle_table_swap_mid_handoff: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The §14.2 resurrect-vs-finalize race through the shipped
/// `FlusherCore` + `LinkSet` under `HoldForRecovery`: two flits are
/// held behind a dead link while a monitor resurrects it in the same
/// instant the drain gives up. `finalize_dead_letters` rechecks
/// `is_dead` per pop, so every flit is either dead-lettered (link
/// still dead at its pop) or delivered as a replay (resurrect won) —
/// never lost, never both — and both credits return either way.
#[test]
fn model_hold_for_recovery_resurrect_vs_finalize() {
    struct CountSink {
        accepted: u64,
    }
    impl Egress for CountSink {
        fn emit(&mut self, _shard: usize, _flit: &ServedFlit) {
            unreachable!("the flusher delivers through try_emit only");
        }
        fn try_emit(&mut self, _shard: usize, _flit: &ServedFlit) -> bool {
            self.accepted += 1;
            true
        }
    }

    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let links = Arc::new(LinkSet::with_fault_policy(
            1,
            2,
            None,
            DeadLinkPolicy::HoldForRecovery,
        ));
        let (mut tx, rx) = spsc_ring::<ServedFlit>(2);
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        tx.push(served(0, 1)).expect("ring has room");
        tx.push(served(0, 2)).expect("ring has room");
        links.declare_dead(0);
        let flusher = {
            let links = Arc::clone(&links);
            thread::spawn(move || {
                let mut core = FlusherCore::new(0, rx, 1);
                let mut sink = CountSink { accepted: 0 };
                let mut delivered = 0u64;
                let mut dead = 0u64;
                loop {
                    delivered += core.step(&links, None, &mut sink);
                    // The drain giving up on the dead link, racing the
                    // monitor's resurrect below.
                    dead += core.finalize_dead_letters(&links);
                    if core.is_idle() {
                        break;
                    }
                    thread::yield_now();
                }
                (delivered, dead, sink.accepted)
            })
        };
        // The monitor healing the link in the same instant.
        links.resurrect(0);
        let (delivered, dead, accepted) = flusher.join().expect("flusher");
        assert_eq!(
            delivered + dead,
            2,
            "each held flit delivered xor dead-lettered"
        );
        assert_eq!(accepted, delivered, "the sink saw exactly the deliveries");
        assert!(links.try_acquire(0), "first credit returned");
        assert!(links.try_acquire(0), "second credit returned");
        assert!(!links.try_acquire(0), "no credit minted from thin air");
    });
    println!(
        "model_hold_for_recovery_resurrect_vs_finalize: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

/// The §13.5 retire fence through the shipped `FlusherCore` +
/// `FlushProgress`: a donor spins on `retired()` until the victim's
/// two flits are disposed, then reads the delivery log the sink wrote.
/// The conditional Release publish (pending-free instants only) →
/// Acquire `retired` load must carry the sink's writes, or the donor
/// flips a flow's home while its flits are still in flight.
#[test]
fn model_flush_progress_retire_fence() {
    struct LogSink {
        log: Arc<UnsafeCell<u64>>,
    }
    impl Egress for LogSink {
        fn emit(&mut self, _shard: usize, _flit: &ServedFlit) {
            unreachable!("the flusher delivers through try_emit only");
        }
        fn try_emit(&mut self, _shard: usize, _flit: &ServedFlit) -> bool {
            self.log.with_mut(|p| unsafe { *p += 1 });
            true
        }
    }

    let mut b = Builder::new();
    b.max_preemptions = Some(2);
    b.max_iterations = 2_000_000;
    let report = b.check(|| {
        let links = Arc::new(LinkSet::new(1, 2));
        let progress = Arc::new(FlushProgress::default());
        let log = Arc::new(UnsafeCell::new(0u64));
        let (mut tx, rx) = spsc_ring::<ServedFlit>(2);
        assert!(links.try_acquire(0));
        assert!(links.try_acquire(0));
        tx.push(served(0, 1)).expect("ring has room");
        tx.push(served(0, 2)).expect("ring has room");
        let flusher = {
            let (links, progress, log) =
                (Arc::clone(&links), Arc::clone(&progress), Arc::clone(&log));
            thread::spawn(move || {
                let mut core = FlusherCore::new(0, rx, 1);
                let mut sink = LogSink { log };
                let mut delivered = 0u64;
                while delivered < 2 {
                    delivered += core.step(&links, None, &mut sink);
                    core.publish_progress(&progress);
                    thread::yield_now();
                }
                core.publish_progress(&progress);
            })
        };
        // The donor's egress-retire fence: wait for the watermark,
        // then act on state the flusher's sink wrote.
        while progress.retired() < 2 {
            thread::yield_now();
        }
        assert_eq!(
            log.with(|p| unsafe { *p }),
            2,
            "retired() >= s must carry the first s deliveries"
        );
        flusher.join().expect("flusher");
    });
    println!(
        "model_flush_progress_retire_fence: {} interleavings (complete={})",
        report.executions, report.complete
    );
    assert!(report.complete, "bounded DFS must exhaust");
}

// ---------------------------------------------------------------------
// Mutants: one weakened ordering each; the checker must catch them.
// Each is a self-contained miniature of the shipped structure with the
// single load/store under test flipped to a broken ordering.
// ---------------------------------------------------------------------

/// MpscRing's slot-sequence publish (`channel.rs` push) with the
/// Release store weakened to Relaxed: the consumer's Acquire sequence
/// load no longer carries the cell write, so reading the payload is a
/// data race.
#[test]
fn mutant_mpsc_publish_relaxed() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    expect_violation("mpsc_publish_relaxed", || {
        Builder::new().check(|| {
            let seq = Arc::new(AtomicUsize::new(0));
            let val = Arc::new(UnsafeCell::new(0usize));
            let producer = {
                let (seq, val) = (Arc::clone(&seq), Arc::clone(&val));
                thread::spawn(move || {
                    val.with_mut(|p| unsafe { *p = 42 });
                    // MUTATION: shipped code publishes with Release.
                    seq.store(1, Ordering::Relaxed);
                })
            };
            while seq.load(Ordering::Acquire) != 1 {
                thread::yield_now();
            }
            let got = val.with(|p| unsafe { *p });
            assert_eq!(got, 42);
            producer.join().expect("producer");
        });
    });
}

/// The SPSC ring's Lamport tail publish (`spsc.rs` push) weakened from
/// Release to Relaxed: the consumer's Acquire tail load observes the
/// new index without acquiring the slot write before it.
#[test]
fn mutant_spsc_tail_relaxed() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    expect_violation("spsc_tail_relaxed", || {
        Builder::new().check(|| {
            let tail = Arc::new(AtomicUsize::new(0));
            let head = Arc::new(AtomicUsize::new(0));
            let slot = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (tail, slot) = (Arc::clone(&tail), Arc::clone(&slot));
                thread::spawn(move || {
                    let t = tail.load(Ordering::Relaxed);
                    slot.with_mut(|p| unsafe { *p = 99 });
                    // MUTATION: shipped code stores tail with Release.
                    tail.store(t + 1, Ordering::Relaxed);
                })
            };
            let h = head.load(Ordering::Relaxed);
            while tail.load(Ordering::Acquire) == h {
                thread::yield_now();
            }
            let got = slot.with(|p| unsafe { *p });
            assert_eq!(got, 99);
            head.store(h + 1, Ordering::Release);
            producer.join().expect("producer");
        });
    });
}

/// CreditPool::release (`credit.rs`) weakened from AcqRel to Relaxed:
/// the next try_acquire's CAS sees the credit come back but not the
/// payload work it covered, so two holders of the same credit race on
/// the guarded cell.
#[test]
fn mutant_credit_release_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("credit_release_relaxed", || {
        Builder::new().check(|| {
            let credits = Arc::new(AtomicU64::new(1));
            let guarded = Arc::new(UnsafeCell::new(0u32));
            let try_acquire = |c: &AtomicU64| {
                // Acquire CAS, as shipped (the consume side is sound).
                c.compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            };
            let holder = {
                let (credits, guarded) = (Arc::clone(&credits), Arc::clone(&guarded));
                thread::spawn(move || {
                    assert!(try_acquire(&credits), "credit starts available");
                    guarded.with_mut(|p| unsafe { *p += 1 });
                    // MUTATION: shipped release is AcqRel fetch_add.
                    credits.fetch_add(1, Ordering::Relaxed);
                })
            };
            while !try_acquire(&credits) {
                thread::yield_now();
            }
            guarded.with_mut(|p| unsafe { *p += 1 });
            credits.fetch_add(1, Ordering::Relaxed);
            holder.join().expect("holder");
        });
    });
}

/// DrainGate::enter (`gate.rs`) with the Dekker inverted to
/// check-then-announce — exactly PR 4's one-packet drain leak: the
/// submitter reads `closed == false`, stalls before bumping
/// `in_flight`, the worker closes, sees `in_flight == 0`, declares the
/// drain finished and takes its final ring read — then the stalled
/// submitter lands a packet nobody will ever flush.
#[test]
fn mutant_drain_gate_check_then_enter() {
    use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    struct BrokenGate {
        closed: AtomicBool,
        in_flight: AtomicU64,
    }
    impl BrokenGate {
        // MUTATION: shipped enter announces (fetch_add) *before*
        // checking closed; this checks first.
        fn enter(&self) -> bool {
            if self.closed.load(Ordering::SeqCst) {
                return false;
            }
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            true
        }
        fn exit(&self) {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        fn can_finish(&self) -> bool {
            self.closed.load(Ordering::SeqCst) && self.in_flight.load(Ordering::SeqCst) == 0
        }
    }
    expect_violation("drain_gate_check_then_enter", || {
        // The leak needs one preemption (submitter stalled between its
        // closed check and its in_flight announce); bounding keeps the
        // yield-spin schedule space from drowning it.
        let mut b = Builder::new();
        b.max_preemptions = Some(3);
        b.check(|| {
            let gate = Arc::new(BrokenGate {
                closed: AtomicBool::new(false),
                in_flight: AtomicU64::new(0),
            });
            let ring = Arc::new(UnsafeCell::new(0u32));
            let submitter = {
                let (gate, ring) = (Arc::clone(&gate), Arc::clone(&ring));
                thread::spawn(move || {
                    if gate.enter() {
                        ring.with_mut(|p| unsafe { *p += 1 });
                        gate.exit();
                        true
                    } else {
                        false
                    }
                })
            };
            gate.closed.store(true, Ordering::SeqCst);
            while !gate.can_finish() {
                thread::yield_now();
            }
            let drained = ring.with(|p| unsafe { *p });
            let accepted = submitter.join().expect("submitter");
            assert_eq!(drained, u32::from(accepted), "leaked packet");
        });
    });
}

// The §13.3 window protocol needs three orderings to carry
// happens-before: the producer's window *exit* (WindowGuard's
// fetch_sub publishes the ring push it covers), the mover's
// *window-clear load* (joins that publication before the drain), and
// the claim *release* (publishes the mover's last packet touch to the
// next claimant). Each gets a mutant below. The enter/flip SeqCst
// pairing is a store-buffering (value-order) requirement — the
// vendored checker executes values sequentially consistently (rt.rs
// header), so weakening those cannot be observed through any
// interleaving and they carry no cell-guarding edge to cut.

/// `WindowGuard::drop` (`ownership.rs`) weakened from SeqCst to
/// Relaxed: the relaxed `fetch_sub` extends the release sequence headed
/// by the *enter* — a clock from before the push — so the mover's
/// window-clear load no longer acquires the push, and the drain races
/// it.
#[test]
fn mutant_ownership_window_exit_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("ownership_window_exit_relaxed", || {
        Builder::new().check(|| {
            let window = Arc::new(AtomicU64::new(0));
            let map = Arc::new(AtomicU64::new(0)); // flow homed at src=0
            let ring = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (window, map, ring) =
                    (Arc::clone(&window), Arc::clone(&map), Arc::clone(&ring));
                thread::spawn(move || {
                    window.fetch_add(1, Ordering::SeqCst);
                    if map.load(Ordering::SeqCst) == 0 {
                        ring.with_mut(|p| unsafe { *p += 1 });
                    }
                    // MUTATION: shipped WindowGuard::drop subs SeqCst.
                    window.fetch_sub(1, Ordering::Relaxed);
                })
            };
            map.store(1, Ordering::SeqCst); // the mover's flip
            while window.load(Ordering::SeqCst) != 0 {
                thread::yield_now();
            }
            let _drained = ring.with_mut(|p| unsafe {
                let v = *p;
                *p = 0;
                v
            });
            producer.join().expect("producer");
        });
    });
}

/// `Ownership::window_clear` (`ownership.rs`) weakened from SeqCst to
/// Relaxed: the mover sees the counter hit zero but acquires nothing,
/// so the producer's covered push is unordered against the drain.
#[test]
fn mutant_ownership_window_wait_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("ownership_window_wait_relaxed", || {
        Builder::new().check(|| {
            let window = Arc::new(AtomicU64::new(0));
            let map = Arc::new(AtomicU64::new(0));
            let ring = Arc::new(UnsafeCell::new(0u64));
            let producer = {
                let (window, map, ring) =
                    (Arc::clone(&window), Arc::clone(&map), Arc::clone(&ring));
                thread::spawn(move || {
                    window.fetch_add(1, Ordering::SeqCst);
                    if map.load(Ordering::SeqCst) == 0 {
                        ring.with_mut(|p| unsafe { *p += 1 });
                    }
                    window.fetch_sub(1, Ordering::SeqCst);
                })
            };
            map.store(1, Ordering::SeqCst);
            // MUTATION: shipped window_clear loads SeqCst.
            while window.load(Ordering::Relaxed) != 0 {
                thread::yield_now();
            }
            let _drained = ring.with_mut(|p| unsafe {
                let v = *p;
                *p = 0;
                v
            });
            producer.join().expect("producer");
        });
    });
}

/// `Ownership::release` (`ownership.rs`) weakened from AcqRel to
/// Relaxed: the relaxed CAS keeps the release sequence headed by the
/// *claim* — a clock from before the mover touched the flow's packets —
/// so the next claimant's acquire joins a stale clock and its packet
/// access races the first mover's.
#[test]
fn mutant_ownership_release_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    const SETTLED: u64 = 0;
    const CLAIMED: u64 = 1;
    expect_violation("ownership_release_relaxed", || {
        Builder::new().check(|| {
            let claim = Arc::new(AtomicU64::new(SETTLED));
            let packets = Arc::new(UnsafeCell::new(0u64));
            let first = {
                let (claim, packets) = (Arc::clone(&claim), Arc::clone(&packets));
                thread::spawn(move || {
                    // Spin-claim (the other mover may hold it first;
                    // losing the race outright must not panic — only
                    // the ordering bug should fail the model).
                    while claim
                        .compare_exchange(SETTLED, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        thread::yield_now();
                    }
                    packets.with_mut(|p| unsafe { *p += 1 });
                    // MUTATION: shipped release CASes AcqRel.
                    claim
                        .compare_exchange(CLAIMED, SETTLED, Ordering::Relaxed, Ordering::Relaxed)
                        .expect("nothing seizes this claim");
                })
            };
            // The next mover: spin-claim, then touch the packets the
            // release was supposed to publish.
            while claim
                .compare_exchange(SETTLED, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                thread::yield_now();
            }
            packets.with_mut(|p| unsafe { *p += 1 });
            claim.store(SETTLED, Ordering::SeqCst);
            first.join().expect("first mover");
        });
    });
}

// The four fabric-era models above each rest on one Release edge; the
// mutants below weaken exactly that edge in a miniature of the same
// protocol. (The miniatures re-create the edge directly because the
// shipped orderings are not feature-switchable — the point is that
// the checker would catch the weakening, not that the shipped code
// contains it.)

/// The refused-`try_emit` acceptance edge
/// (`model_credit_hold_refused_try_emit`) weakened: the downstream
/// opens its room flag with a Relaxed store after writing the payload,
/// so the sink's Acquire room-load carries nothing and its payload
/// read races the downstream's write.
#[test]
fn mutant_credit_hold_room_relaxed() {
    use loom::sync::atomic::{AtomicBool, Ordering};
    expect_violation("credit_hold_room_relaxed", || {
        Builder::new().check(|| {
            let room = Arc::new(AtomicBool::new(false));
            let payload = Arc::new(UnsafeCell::new(0u64));
            let downstream = {
                let (room, payload) = (Arc::clone(&room), Arc::clone(&payload));
                thread::spawn(move || {
                    payload.with_mut(|p| unsafe { *p = 7 });
                    // MUTATION: the room flag opens with Release.
                    room.store(true, Ordering::Relaxed);
                })
            };
            // The sink: refuse until room, then read the payload.
            while !room.load(Ordering::Acquire) {
                thread::yield_now();
            }
            let got = payload.with(|p| unsafe { *p });
            assert_eq!(got, 7);
            downstream.join().expect("downstream");
        });
    });
}

/// The handle-table slot lock (`model_handle_table_swap_mid_handoff`)
/// with the write-unlock weakened: the vendored RwLock's reader-count
/// protocol, hand-rolled, with the writer's unlock store Relaxed. A
/// reader whose Acquire read-lock CAS follows the unlock no longer
/// joins the writer's clock, so cloning the slot races the swap's
/// write.
#[test]
fn mutant_handle_table_unlock_relaxed() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    const WRITE_LOCKED: usize = usize::MAX;
    expect_violation("handle_table_unlock_relaxed", || {
        Builder::new().check(|| {
            let lock = Arc::new(AtomicUsize::new(0));
            let slot = Arc::new(UnsafeCell::new(0u64));
            let writer = {
                let (lock, slot) = (Arc::clone(&lock), Arc::clone(&slot));
                thread::spawn(move || {
                    while lock
                        .compare_exchange(0, WRITE_LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        thread::yield_now();
                    }
                    slot.with_mut(|p| unsafe { *p = 1 });
                    // MUTATION: write-unlock stores with Release.
                    lock.store(0, Ordering::Relaxed);
                })
            };
            // The reader: count itself in (Acquire), clone, count out.
            loop {
                let cur = lock.load(Ordering::Relaxed);
                if cur != WRITE_LOCKED
                    && lock
                        .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    break;
                }
                thread::yield_now();
            }
            let _cloned = slot.with(|p| unsafe { *p });
            lock.fetch_sub(1, Ordering::Release);
            writer.join().expect("writer");
        });
    });
}

/// The resurrect edge (`model_hold_for_recovery_resurrect_vs_finalize`)
/// weakened: the healer revives the dead flag with a Relaxed swap
/// after writing the link's downstream state. A Relaxed RMW extends
/// the release sequence headed by the flag's *initialization* — a
/// clock from before the heal — so the flusher's Acquire liveness
/// load no longer carries the healer's write and replay delivery
/// races it.
#[test]
fn mutant_hold_for_recovery_heal_relaxed() {
    use loom::sync::atomic::{AtomicBool, Ordering};
    expect_violation("hold_for_recovery_heal_relaxed", || {
        Builder::new().check(|| {
            let dead = Arc::new(AtomicBool::new(true));
            let downstream = Arc::new(UnsafeCell::new(0u64));
            let healer = {
                let (dead, downstream) = (Arc::clone(&dead), Arc::clone(&downstream));
                thread::spawn(move || {
                    downstream.with_mut(|p| unsafe { *p = 1 });
                    // MUTATION: shipped `resurrect` swaps AcqRel.
                    dead.swap(false, Ordering::Relaxed);
                })
            };
            // The flusher: hold while dead, then replay into the
            // downstream state the heal was supposed to publish.
            while dead.load(Ordering::Acquire) {
                thread::yield_now();
            }
            let ready = downstream.with(|p| unsafe { *p });
            assert_eq!(ready, 1);
            healer.join().expect("healer");
        });
    });
}

/// The retire-fence publish (`model_flush_progress_retire_fence`)
/// weakened: the flusher publishes its watermark with a Relaxed store
/// after the delivery writes it vouches for, so the donor's Acquire
/// `retired()` load carries nothing and its post-fence read of the
/// delivery log is a data race.
#[test]
fn mutant_flush_progress_publish_relaxed() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    expect_violation("flush_progress_publish_relaxed", || {
        Builder::new().check(|| {
            let watermark = Arc::new(AtomicU64::new(0));
            let log = Arc::new(UnsafeCell::new(0u64));
            let flusher = {
                let (watermark, log) = (Arc::clone(&watermark), Arc::clone(&log));
                thread::spawn(move || {
                    log.with_mut(|p| unsafe { *p += 1 });
                    // MUTATION: shipped `publish` stores with Release.
                    watermark.store(1, Ordering::Relaxed);
                })
            };
            // The donor's fence: wait for the watermark, then act on
            // the deliveries behind it.
            while watermark.load(Ordering::Acquire) < 1 {
                thread::yield_now();
            }
            let seen = log.with(|p| unsafe { *p });
            assert_eq!(seen, 1);
            flusher.join().expect("flusher");
        });
    });
}
