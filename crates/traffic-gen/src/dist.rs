//! Packet-length distributions.

use desim::SimRng;
use serde::{Deserialize, Serialize};

/// A distribution over packet lengths in flits.
///
/// The paper uses [`LenDist::Uniform`] for Figures 4–5 and
/// [`LenDist::TruncExp`] (λ = 0.2 on `[1, 64]`) for Figure 6, where the
/// rarity of near-`Max` packets is exactly what separates ERR's `3m`
/// bound from DRR's `Max + 2m`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LenDist {
    /// Every packet has the same length.
    Constant(u32),
    /// Uniform on `[lo, hi]`, inclusive.
    Uniform {
        /// Smallest length.
        lo: u32,
        /// Largest length.
        hi: u32,
    },
    /// Truncated, discretized exponential: `lo + floor(Exp(lambda))`,
    /// resampled while above `hi`.
    TruncExp {
        /// Rate parameter (mean `1/lambda` above `lo` before truncation).
        lambda: f64,
        /// Smallest length.
        lo: u32,
        /// Largest length.
        hi: u32,
    },
    /// Two-point mixture: `short` with probability `1 - p_long`, else
    /// `long` (models control/data packet mixes in interconnects).
    Bimodal {
        /// Short packet length.
        short: u32,
        /// Long packet length.
        long: u32,
        /// Probability of a long packet.
        p_long: f64,
    },
    /// Bounded Pareto: heavy-tailed lengths on `[lo, hi]` with shape
    /// `alpha` (smaller `alpha` → heavier tail). An even harsher version
    /// of Figure 6's "large packets are rare" regime, used by the
    /// extension experiments.
    BoundedPareto {
        /// Tail index (> 0); 1.1–2.5 are typical heavy-tail settings.
        alpha: f64,
        /// Smallest length.
        lo: u32,
        /// Largest length.
        hi: u32,
    },
}

impl LenDist {
    /// Draws one packet length.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            LenDist::Constant(len) => len,
            LenDist::Uniform { lo, hi } => rng.uniform_u32(lo, hi),
            LenDist::TruncExp { lambda, lo, hi } => rng.truncated_exp_u32(lambda, lo, hi),
            LenDist::Bimodal {
                short,
                long,
                p_long,
            } => {
                if rng.bernoulli(p_long) {
                    long
                } else {
                    short
                }
            }
            LenDist::BoundedPareto { alpha, lo, hi } => {
                // Inverse-CDF of the bounded Pareto on [lo, hi + 1).
                let (l, h) = (lo as f64, hi as f64 + 1.0);
                let u = rng.uniform_f64();
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                (x.floor() as u32).clamp(lo, hi)
            }
        }
    }

    /// The largest length this distribution can produce — the paper's
    /// `Max` (Definition 3), which DRR's quantum must match.
    pub fn max_len(&self) -> u32 {
        match *self {
            LenDist::Constant(len) => len,
            LenDist::Uniform { hi, .. } => hi,
            LenDist::TruncExp { hi, .. } => hi,
            LenDist::Bimodal { short, long, .. } => short.max(long),
            LenDist::BoundedPareto { hi, .. } => hi,
        }
    }

    /// Expected length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            LenDist::Constant(len) => len as f64,
            LenDist::Uniform { lo, hi } => (lo as f64 + hi as f64) / 2.0,
            LenDist::TruncExp { lambda, lo, hi } => {
                // Mean of the discretized, truncated exponential computed
                // by direct summation (the support is small).
                let mut num = 0.0;
                let mut den = 0.0;
                for v in lo..=hi {
                    // P(floor(lo + Exp) = v) before renormalization.
                    let a = (v - lo) as f64;
                    let p = (-lambda * a).exp() - (-lambda * (a + 1.0)).exp();
                    num += v as f64 * p;
                    den += p;
                }
                num / den
            }
            LenDist::Bimodal {
                short,
                long,
                p_long,
            } => short as f64 * (1.0 - p_long) + long as f64 * p_long,
            LenDist::BoundedPareto { alpha, lo, hi } => {
                // Mean of the discretized bounded Pareto by summation
                // (small support, exactness beats a closed form with
                // discretization error).
                let (l, h) = (lo as f64, hi as f64 + 1.0);
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let cdf = |x: f64| -> f64 {
                    if x <= l {
                        0.0
                    } else if x >= h {
                        1.0
                    } else {
                        (1.0 - la * x.powf(-alpha)) / (1.0 - la / ha)
                    }
                };
                let mut mean = 0.0;
                for v in lo..=hi {
                    let p = cdf(v as f64 + 1.0) - cdf(v as f64);
                    mean += v as f64 * p;
                }
                mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(1);
        let d = LenDist::Constant(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 9);
        }
        assert_eq!(d.max_len(), 9);
        assert_eq!(d.mean(), 9.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = SimRng::new(2);
        let d = LenDist::Uniform { lo: 1, hi: 64 };
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1..=64).contains(&v));
            sum += v as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 32.5).abs() < 0.3, "mean {mean}");
        assert_eq!(d.mean(), 32.5);
        assert_eq!(d.max_len(), 64);
    }

    #[test]
    fn trunc_exp_matches_paper_fig6_params() {
        let mut rng = SimRng::new(3);
        let d = LenDist::TruncExp {
            lambda: 0.2,
            lo: 1,
            hi: 64,
        };
        let n = 100_000;
        let mut sum = 0u64;
        let mut long = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1..=64).contains(&v));
            sum += v as u64;
            if v > 32 {
                long += 1;
            }
        }
        let emp_mean = sum as f64 / n as f64;
        assert!(
            (emp_mean - d.mean()).abs() < 0.1,
            "{emp_mean} vs {}",
            d.mean()
        );
        // The point of Figure 6's distribution: large packets are rare.
        let frac_long = long as f64 / n as f64;
        assert!(frac_long < 0.01, "P(len > 32) = {frac_long}");
        assert_eq!(d.max_len(), 64);
    }

    #[test]
    fn bounded_pareto_bounds_mean_and_tail() {
        let mut rng = SimRng::new(5);
        let d = LenDist::BoundedPareto {
            alpha: 1.2,
            lo: 1,
            hi: 128,
        };
        let n = 200_000;
        let mut sum = 0u64;
        let mut small = 0u64;
        let mut big = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1..=128).contains(&v));
            sum += v as u64;
            if v <= 2 {
                small += 1;
            }
            if v >= 64 {
                big += 1;
            }
        }
        let emp = sum as f64 / n as f64;
        assert!(
            (emp - d.mean()).abs() < 0.15,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
        // Heavy tail: most mass at the bottom, but the top decile of the
        // range still occurs.
        assert!(small as f64 / n as f64 > 0.5, "body too light");
        assert!(big > 0, "tail never sampled");
        assert!((big as f64 / n as f64) < 0.05, "tail too heavy");
        assert_eq!(d.max_len(), 128);
    }

    #[test]
    fn bimodal_mix() {
        let mut rng = SimRng::new(4);
        let d = LenDist::Bimodal {
            short: 2,
            long: 32,
            p_long: 0.25,
        };
        let n = 50_000;
        let longs = (0..n).filter(|_| d.sample(&mut rng) == 32).count();
        let f = longs as f64 / n as f64;
        assert!((f - 0.25).abs() < 0.02, "long fraction {f}");
        assert_eq!(d.max_len(), 32);
        assert!((d.mean() - 9.5).abs() < 1e-12);
    }
}
