//! Packet-trace record and replay.
//!
//! The comparison methodology of the paper feeds *identical* traffic to
//! every discipline. [`Workload`] already guarantees
//! that via seeding; traces additionally let a workload be captured once,
//! saved to disk in a simple CSV form, inspected, and replayed — useful
//! for debugging a single scheduling decision and for regression tests
//! pinned to an exact packet sequence.

use std::fmt::Write as _;
use std::str::FromStr;

use desim::Cycle;
use err_sched::Packet;

use crate::workload::Workload;

/// A recorded packet arrival sequence, ordered by arrival cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketTrace {
    packets: Vec<Packet>,
    cursor: usize,
}

impl PacketTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a workload's first `horizon` cycles of arrivals.
    pub fn capture(workload: &mut Workload, horizon: Cycle) -> Self {
        let mut packets = Vec::new();
        for now in 0..horizon {
            workload.poll(now, &mut packets);
        }
        Self { packets, cursor: 0 }
    }

    /// Builds a trace from explicit packets (must be sorted by arrival).
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        assert!(
            packets.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival cycle"
        );
        Self { packets, cursor: 0 }
    }

    /// All packets in the trace.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Total flits across the trace.
    pub fn total_flits(&self) -> u64 {
        self.packets.iter().map(|p| p.len as u64).sum()
    }

    /// Number of distinct flows referenced.
    pub fn n_flows(&self) -> usize {
        self.packets.iter().map(|p| p.flow + 1).max().unwrap_or(0)
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Appends to `out` the packets arriving at exactly `now` (replay
    /// analogue of [`Workload::poll`]). Call with non-decreasing `now`.
    pub fn poll(&mut self, now: Cycle, out: &mut Vec<Packet>) {
        while let Some(p) = self.packets.get(self.cursor) {
            if p.arrival > now {
                break;
            }
            out.push(*p);
            self.cursor += 1;
        }
    }

    /// Whether replay has delivered every packet.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.packets.len()
    }

    /// Serializes to the CSV form `id,flow,len,arrival` (one packet per
    /// line, header included).
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.packets.len() * 16 + 24);
        s.push_str("id,flow,len,arrival\n");
        for p in &self.packets {
            let _ = writeln!(s, "{},{},{},{}", p.id, p.flow, p.len, p.arrival);
        }
        s
    }

    /// Parses the CSV form produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut packets = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 && line.starts_with("id,") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let mut next = |name: &str| -> Result<&str, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("line {}: missing field {name}", lineno + 1))
            };
            let id = u64::from_str(next("id")?.trim())
                .map_err(|e| format!("line {}: bad id: {e}", lineno + 1))?;
            let flow = usize::from_str(next("flow")?.trim())
                .map_err(|e| format!("line {}: bad flow: {e}", lineno + 1))?;
            let len = u32::from_str(next("len")?.trim())
                .map_err(|e| format!("line {}: bad len: {e}", lineno + 1))?;
            let arrival = u64::from_str(next("arrival")?.trim())
                .map_err(|e| format!("line {}: bad arrival: {e}", lineno + 1))?;
            if len == 0 {
                return Err(format!("line {}: zero-length packet", lineno + 1));
            }
            packets.push(Packet::new(id, flow, len, arrival));
        }
        if !packets.windows(2).all(|w| w[0].arrival <= w[1].arrival) {
            return Err("trace not sorted by arrival".into());
        }
        Ok(Self { packets, cursor: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::dist::LenDist;
    use crate::flows::FlowSpec;

    fn sample_workload() -> Workload {
        Workload::new(
            vec![
                FlowSpec {
                    arrivals: ArrivalProcess::Bernoulli { rate: 0.2 },
                    lengths: LenDist::Uniform { lo: 1, hi: 9 },
                },
                FlowSpec {
                    arrivals: ArrivalProcess::Cbr {
                        period: 11,
                        phase: 2,
                    },
                    lengths: LenDist::Constant(4),
                },
            ],
            99,
        )
    }

    #[test]
    fn capture_then_replay_matches_workload() {
        let mut w1 = sample_workload();
        let trace = PacketTrace::capture(&mut w1, 500);
        let mut w2 = sample_workload();
        let mut direct = Vec::new();
        let mut replayed = Vec::new();
        let mut t = trace.clone();
        for now in 0..500 {
            w2.poll(now, &mut direct);
            t.poll(now, &mut replayed);
        }
        assert_eq!(direct, replayed);
        assert!(t.exhausted());
    }

    #[test]
    fn csv_roundtrip() {
        let mut w = sample_workload();
        let trace = PacketTrace::capture(&mut w, 300);
        let csv = trace.to_csv();
        let back = PacketTrace::from_csv(&csv).unwrap();
        assert_eq!(trace.packets(), back.packets());
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(PacketTrace::from_csv("id,flow,len,arrival\n1,2,notanum,4\n").is_err());
        assert!(PacketTrace::from_csv("id,flow,len,arrival\n1,2\n").is_err());
        assert!(PacketTrace::from_csv("id,flow,len,arrival\n1,0,0,4\n").is_err());
        // Unsorted arrivals.
        assert!(PacketTrace::from_csv("id,flow,len,arrival\n0,0,1,10\n1,0,1,5\n").is_err());
    }

    #[test]
    fn from_packets_validates_order() {
        let ok = vec![
            Packet::new(0, 0, 1, 5),
            Packet::new(1, 1, 2, 5),
            Packet::new(2, 0, 3, 9),
        ];
        let t = PacketTrace::from_packets(ok);
        assert_eq!(t.n_flows(), 2);
        assert_eq!(t.total_flits(), 6);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_packets_rejects_unsorted() {
        PacketTrace::from_packets(vec![Packet::new(0, 0, 1, 9), Packet::new(1, 0, 1, 3)]);
    }

    #[test]
    fn rewind_replays_from_start() {
        let mut w = sample_workload();
        let mut t = PacketTrace::capture(&mut w, 200);
        let mut first = Vec::new();
        for now in 0..200 {
            t.poll(now, &mut first);
        }
        t.rewind();
        let mut second = Vec::new();
        for now in 0..200 {
            t.poll(now, &mut second);
        }
        assert_eq!(first, second);
    }
}
