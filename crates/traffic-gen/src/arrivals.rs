//! Packet arrival processes in discrete (cycle) time.

use desim::{Cycle, SimRng};
use serde::{Deserialize, Serialize};

/// An arrival process: when do packets arrive?
///
/// All processes are parameterized in *packets per cycle* so that offered
/// load is easy to express relative to the link capacity of 1 flit per
/// cycle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Bernoulli/geometric process: each cycle a packet arrives with
    /// probability `rate` (the discrete-time Poisson analogue the paper's
    /// "arrival rate in terms of packets per second" maps to).
    Bernoulli {
        /// Packets per cycle, in `(0, 1]`.
        rate: f64,
    },
    /// Constant bit rate: one packet every `period` cycles, starting at
    /// `phase`.
    Cbr {
        /// Inter-arrival gap in cycles (≥ 1).
        period: u64,
        /// Offset of the first arrival.
        phase: u64,
    },
    /// Markov-modulated on/off burst source: while ON, packets arrive
    /// per-cycle with probability `rate_on`; each cycle the source
    /// toggles OFF→ON with probability `p_on` and ON→OFF with `p_off`.
    /// Models the bursty sources FCFS fails to contain (paper §2).
    OnOff {
        /// Arrival probability per cycle while ON.
        rate_on: f64,
        /// OFF→ON transition probability per cycle.
        p_on: f64,
        /// ON→OFF transition probability per cycle.
        p_off: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average arrival rate in packets per cycle.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Bernoulli { rate } => rate,
            ArrivalProcess::Cbr { period, .. } => 1.0 / period as f64,
            ArrivalProcess::OnOff {
                rate_on,
                p_on,
                p_off,
            } => {
                // Stationary P(ON) = p_on / (p_on + p_off).
                rate_on * p_on / (p_on + p_off)
            }
        }
    }

    /// Creates the generator state for this process.
    pub fn start(&self, rng: &mut SimRng) -> ArrivalGen {
        let state = match *self {
            ArrivalProcess::Bernoulli { rate } => {
                assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
                GenState::Bernoulli {
                    next: rng.geometric_gap(rate) - 1,
                    rate,
                }
            }
            ArrivalProcess::Cbr { period, phase } => {
                assert!(period >= 1, "period must be >= 1");
                GenState::Cbr {
                    next: phase,
                    period,
                }
            }
            ArrivalProcess::OnOff {
                rate_on,
                p_on,
                p_off,
            } => {
                assert!(rate_on > 0.0 && rate_on <= 1.0);
                assert!(p_on > 0.0 && p_on <= 1.0);
                assert!(p_off > 0.0 && p_off <= 1.0);
                GenState::OnOff {
                    on: rng.bernoulli(p_on / (p_on + p_off)),
                    cursor: 0,
                    rate_on,
                    p_on,
                    p_off,
                }
            }
        };
        ArrivalGen { state }
    }
}

enum GenState {
    Bernoulli {
        next: Cycle,
        rate: f64,
    },
    Cbr {
        next: Cycle,
        period: u64,
    },
    OnOff {
        on: bool,
        cursor: Cycle,
        rate_on: f64,
        p_on: f64,
        p_off: f64,
    },
}

/// Stateful arrival generator yielding a non-decreasing sequence of
/// arrival cycles.
pub struct ArrivalGen {
    state: GenState,
}

impl ArrivalGen {
    /// Returns the next arrival time (non-decreasing across calls; at
    /// most one arrival per flow per cycle).
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> Cycle {
        match &mut self.state {
            GenState::Bernoulli { next, rate } => {
                let t = *next;
                *next += rng.geometric_gap(*rate);
                t
            }
            GenState::Cbr { next, period } => {
                let t = *next;
                *next += *period;
                t
            }
            GenState::OnOff {
                on,
                cursor,
                rate_on,
                p_on,
                p_off,
            } => {
                // Walk cycle by cycle until an arrival fires. The chain
                // mixes quickly for the parameters used here.
                loop {
                    if *on {
                        if rng.bernoulli(*p_off) {
                            *on = false;
                        }
                    } else if rng.bernoulli(*p_on) {
                        *on = true;
                    }
                    let t = *cursor;
                    *cursor += 1;
                    if *on && rng.bernoulli(*rate_on) {
                        return t;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_rate_converges() {
        let mut rng = SimRng::new(7);
        let p = ArrivalProcess::Bernoulli { rate: 0.05 };
        let mut g = p.start(&mut rng);
        let n = 50_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_arrival(&mut rng);
        }
        let rate = n as f64 / last as f64;
        assert!((rate - 0.05).abs() < 0.003, "empirical rate {rate}");
        assert_eq!(p.mean_rate(), 0.05);
    }

    #[test]
    fn bernoulli_times_strictly_increase() {
        let mut rng = SimRng::new(8);
        let mut g = ArrivalProcess::Bernoulli { rate: 0.9 }.start(&mut rng);
        let mut prev = g.next_arrival(&mut rng);
        for _ in 0..1000 {
            let t = g.next_arrival(&mut rng);
            assert!(t > prev, "{t} !> {prev}");
            prev = t;
        }
    }

    #[test]
    fn cbr_is_periodic() {
        let mut rng = SimRng::new(9);
        let mut g = ArrivalProcess::Cbr {
            period: 10,
            phase: 3,
        }
        .start(&mut rng);
        let times: Vec<_> = (0..5).map(|_| g.next_arrival(&mut rng)).collect();
        assert_eq!(times, vec![3, 13, 23, 33, 43]);
        assert_eq!(
            ArrivalProcess::Cbr {
                period: 10,
                phase: 3
            }
            .mean_rate(),
            0.1
        );
    }

    #[test]
    fn onoff_mean_rate() {
        let mut rng = SimRng::new(10);
        let p = ArrivalProcess::OnOff {
            rate_on: 0.5,
            p_on: 0.01,
            p_off: 0.03,
        };
        let mut g = p.start(&mut rng);
        let n = 50_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_arrival(&mut rng);
        }
        let rate = n as f64 / last as f64;
        let expect = p.mean_rate(); // 0.5 * 0.25 = 0.125
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs {expect}");
    }

    #[test]
    fn onoff_is_bursty() {
        // Burstiness check: inter-arrival variance well above geometric.
        let mut rng = SimRng::new(11);
        let p = ArrivalProcess::OnOff {
            rate_on: 0.8,
            p_on: 0.005,
            p_off: 0.05,
        };
        let mut g = p.start(&mut rng);
        let mut prev = g.next_arrival(&mut rng);
        let mut stats = desim::OnlineStats::new();
        for _ in 0..20_000 {
            let t = g.next_arrival(&mut rng);
            stats.push((t - prev) as f64);
            prev = t;
        }
        let cv2 = stats.variance() / (stats.mean() * stats.mean());
        assert!(
            cv2 > 2.0,
            "squared coefficient of variation {cv2} not bursty"
        );
    }
}
