//! A deterministic streaming packet source over a set of flows.

use desim::{Cycle, EventQueue, SimRng};
use err_sched::Packet;

use crate::arrivals::ArrivalGen;
use crate::flows::FlowSpec;

/// A seeded, streaming workload: polls out the packets arriving at each
/// cycle, in deterministic order.
///
/// Each flow draws from its own derived RNG stream, so workloads are
/// identical across disciplines and unchanged by adding flows — the
/// property the paper's side-by-side comparisons (same traffic through
/// ERR, DRR, FBRR, FCFS, PBRR) depend on.
pub struct Workload {
    gens: Vec<(ArrivalGen, SimRng)>,
    specs: Vec<FlowSpec>,
    /// Global flow id carried by each local flow's packets (and used to
    /// derive its RNG stream) — identity unless built via
    /// [`with_flow_ids`](Self::with_flow_ids).
    ids: Vec<usize>,
    /// Pending arrivals keyed by cycle; local flow index as payload.
    pending: EventQueue<usize>,
    next_id: u64,
    /// Injection stops at this cycle (exclusive); `u64::MAX` = never.
    horizon: Cycle,
}

impl Workload {
    /// Creates a workload from flow specs and a master seed, injecting
    /// forever.
    pub fn new(specs: Vec<FlowSpec>, seed: u64) -> Self {
        Self::with_horizon(specs, seed, u64::MAX)
    }

    /// Creates a workload that stops injecting at `horizon` (exclusive) —
    /// the Figure 5 transient ("after these 10,000 cycles, we halt all
    /// injection").
    pub fn with_horizon(specs: Vec<FlowSpec>, seed: u64, horizon: Cycle) -> Self {
        let flows = specs.into_iter().enumerate().collect();
        Self::with_flow_ids(flows, seed, horizon)
    }

    /// Creates a workload over an arbitrary subset of a flow set: each
    /// `(global_id, spec)` pair derives its RNG stream from `global_id`
    /// and stamps its packets with `flow = global_id`.
    ///
    /// This is what makes partitioned feeding exact: a workload over any
    /// partition of the flows produces, flow for flow, the *same* packet
    /// streams as the serial workload over all of them — see
    /// [`par_feed`](crate::par_feed::par_feed). (Packet ids are local to
    /// the instance; callers that merge partitions remap them.)
    pub fn with_flow_ids(flows: Vec<(usize, FlowSpec)>, seed: u64, horizon: Cycle) -> Self {
        let root = SimRng::new(seed);
        let mut pending = EventQueue::with_capacity(flows.len());
        let mut gens = Vec::with_capacity(flows.len());
        let mut specs = Vec::with_capacity(flows.len());
        let mut ids = Vec::with_capacity(flows.len());
        for (local, (global, spec)) in flows.into_iter().enumerate() {
            let mut rng = root.derive(global as u64);
            let mut gen = spec.arrivals.start(&mut rng);
            let first = gen.next_arrival(&mut rng);
            if first < horizon {
                pending.push(first, local);
            }
            gens.push((gen, rng));
            specs.push(spec);
            ids.push(global);
        }
        Self {
            gens,
            specs,
            ids,
            pending,
            next_id: 0,
            horizon,
        }
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.specs.len()
    }

    /// The flow specifications.
    pub fn specs(&self) -> &[FlowSpec] {
        &self.specs
    }

    /// Appends to `out` every packet arriving at exactly cycle `now`.
    /// Must be called with non-decreasing `now`.
    pub fn poll(&mut self, now: Cycle, out: &mut Vec<Packet>) {
        while let Some((t, flow)) = self.pending.pop_due(now) {
            debug_assert!(t <= now);
            let (gen, rng) = &mut self.gens[flow];
            let len = self.specs[flow].lengths.sample(rng);
            out.push(Packet::new(self.next_id, self.ids[flow], len, t));
            self.next_id += 1;
            let next = gen.next_arrival(rng);
            if next < self.horizon {
                self.pending.push(next, flow);
            }
        }
    }

    /// Whether all injection has finished (only meaningful with a
    /// horizon).
    pub fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::dist::LenDist;

    fn two_flows(rate: f64) -> Vec<FlowSpec> {
        vec![
            FlowSpec {
                arrivals: ArrivalProcess::Bernoulli { rate },
                lengths: LenDist::Uniform { lo: 1, hi: 8 },
            },
            FlowSpec {
                arrivals: ArrivalProcess::Cbr {
                    period: 7,
                    phase: 0,
                },
                lengths: LenDist::Constant(3),
            },
        ]
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Workload::new(two_flows(0.1), 42);
        let mut b = Workload::new(two_flows(0.1), 42);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        for now in 0..5000 {
            a.poll(now, &mut pa);
            b.poll(now, &mut pb);
        }
        assert_eq!(pa, pb);
        assert!(!pa.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Workload::new(two_flows(0.1), 1);
        let mut b = Workload::new(two_flows(0.1), 2);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        for now in 0..5000 {
            a.poll(now, &mut pa);
            b.poll(now, &mut pb);
        }
        assert_ne!(pa, pb);
    }

    #[test]
    fn arrival_times_match_poll_cycle() {
        let mut w = Workload::new(two_flows(0.2), 3);
        let mut out = Vec::new();
        for now in 0..2000 {
            let before = out.len();
            w.poll(now, &mut out);
            for p in &out[before..] {
                assert_eq!(p.arrival, now);
            }
        }
        // Ids are unique and dense.
        let mut ids: Vec<_> = out.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, w.generated());
    }

    #[test]
    fn horizon_stops_injection() {
        let mut w = Workload::with_horizon(two_flows(0.5), 4, 100);
        let mut out = Vec::new();
        for now in 0..1000 {
            w.poll(now, &mut out);
        }
        assert!(w.exhausted());
        assert!(out.iter().all(|p| p.arrival < 100));
        assert!(!out.is_empty());
    }

    #[test]
    fn adding_a_flow_does_not_change_existing_streams() {
        // Flow 0's packet sequence is identical whether or not flow 1
        // exists (per-flow derived RNG streams).
        let one = vec![two_flows(0.1)[0]];
        let mut a = Workload::new(one, 7);
        let mut b = Workload::new(two_flows(0.1), 7);
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        for now in 0..3000 {
            a.poll(now, &mut pa);
            b.poll(now, &mut pb);
        }
        let b0: Vec<_> = pb
            .iter()
            .filter(|p| p.flow == 0)
            .map(|p| (p.len, p.arrival))
            .collect();
        let a0: Vec<_> = pa.iter().map(|p| (p.len, p.arrival)).collect();
        assert_eq!(a0, b0);
    }
}
