//! Parallel workload feeding: drive a submit function from several
//! producer threads while reproducing the serial workload exactly.
//!
//! The runtime's ingress path is multi-producer; benchmarking or
//! exercising it honestly needs arrivals submitted from many threads at
//! once. `par_feed` partitions a flow set round-robin across `producers`
//! threads, each running its own [`Workload`] over its partition. Because
//! every flow's RNG stream is derived from its *global* flow id (see
//! [`Workload::with_flow_ids`]), the union of what the producers submit
//! is — flow for flow — the identical packet sequence the serial
//! `Workload` would have produced, for any producer count. Only the
//! interleaving between flows (and the packet ids, remapped for global
//! uniqueness) differ.

use desim::Cycle;
use err_sched::Packet;

use crate::flows::FlowSpec;
use crate::workload::Workload;

/// Cycles advanced per poll chunk; bounds each producer's staging buffer.
const CHUNK: Cycle = 4096;

/// Feeds `specs` through `submit` from `producers` threads until the
/// injection `horizon` (exclusive; must be finite) is exhausted or
/// `submit` returns `false` (producer stops early — e.g. the consumer
/// closed). Returns the number of packets handed to `submit`.
///
/// Packet ids are remapped to `local_id * producers + producer`, so they
/// are globally unique (but not dense per flow). Arrival cycles and
/// per-flow packet sequences match the serial [`Workload`] exactly.
pub fn par_feed<F>(
    specs: Vec<FlowSpec>,
    seed: u64,
    horizon: Cycle,
    producers: usize,
    submit: F,
) -> u64
where
    F: Fn(Packet) -> bool + Sync,
{
    assert!(producers >= 1, "need at least one producer");
    assert!(horizon < Cycle::MAX, "par_feed needs a finite horizon");
    let submit = &submit;
    let specs = &specs;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                // panic-policy: scoped producer — a panic propagates
                // out of `thread::scope` at the end of the feed and
                // aborts the caller; no partial-feed state survives.
                scope.spawn(move || {
                    let partition: Vec<(usize, FlowSpec)> = specs
                        .iter()
                        .enumerate()
                        .skip(p)
                        .step_by(producers)
                        .map(|(i, s)| (i, *s))
                        .collect();
                    let mut w = Workload::with_flow_ids(partition, seed, horizon);
                    let mut staged: Vec<Packet> = Vec::new();
                    let mut sent = 0u64;
                    let mut now: Cycle = 0;
                    'feed: while !w.exhausted() {
                        now = (now + CHUNK).min(horizon);
                        staged.clear();
                        w.poll(now - 1, &mut staged);
                        for pkt in &staged {
                            let mut pkt = *pkt;
                            pkt.id = pkt.id * producers as u64 + p as u64;
                            if !submit(pkt) {
                                break 'feed;
                            }
                            sent += 1;
                        }
                    }
                    sent
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("producer thread panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::dist::LenDist;
    use std::sync::Mutex;

    fn specs(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| FlowSpec {
                arrivals: ArrivalProcess::Bernoulli {
                    rate: 0.05 + 0.01 * i as f64,
                },
                lengths: LenDist::Uniform { lo: 1, hi: 16 },
            })
            .collect()
    }

    /// Per-flow (arrival, len) sequences from any producer count equal
    /// the serial workload's.
    #[test]
    fn partitioned_feed_matches_serial_workload() {
        let n_flows = 6;
        let horizon = 20_000;
        let mut serial = Workload::with_horizon(specs(n_flows), 9, horizon);
        let mut expected: Vec<Vec<(Cycle, u32)>> = vec![Vec::new(); n_flows];
        let mut out = Vec::new();
        serial.poll(horizon - 1, &mut out);
        for p in &out {
            expected[p.flow].push((p.arrival, p.len));
        }

        for producers in [1usize, 2, 3] {
            let got = Mutex::new(vec![Vec::new(); n_flows]);
            let total = par_feed(specs(n_flows), 9, horizon, producers, |pkt| {
                got.lock().unwrap()[pkt.flow].push((pkt.arrival, pkt.len));
                true
            });
            let got = got.into_inner().unwrap();
            assert_eq!(got, expected, "{producers} producers diverged");
            assert_eq!(total, serial.generated());
        }
    }

    #[test]
    fn packet_ids_are_globally_unique() {
        let ids = Mutex::new(Vec::new());
        par_feed(specs(5), 3, 10_000, 3, |pkt| {
            ids.lock().unwrap().push(pkt.id);
            true
        });
        let mut ids = ids.into_inner().unwrap();
        let n = ids.len();
        assert!(n > 0);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate packet ids across producers");
    }

    #[test]
    fn submit_false_stops_that_producer() {
        let sent = par_feed(specs(4), 5, 50_000, 2, |_| false);
        // Each producer stops on its first packet, accepted count is 0.
        assert_eq!(sent, 0);
    }
}
