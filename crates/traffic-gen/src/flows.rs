//! Flow specifications and the paper's workload presets.

use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::dist::LenDist;

/// The traffic description of one flow.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// When packets arrive.
    pub arrivals: ArrivalProcess,
    /// How long they are.
    pub lengths: LenDist,
}

impl FlowSpec {
    /// Offered load in flits per cycle (rate × mean length).
    pub fn offered_load(&self) -> f64 {
        self.arrivals.mean_rate() * self.lengths.mean()
    }
}

/// The largest packet any of `specs` can produce — the paper's `Max`.
pub fn max_packet_len(specs: &[FlowSpec]) -> u32 {
    specs.iter().map(|s| s.lengths.max_len()).max().unwrap_or(0)
}

/// The Figure 4 workload: 8 flows, flow 3 at twice the packet rate of
/// the others, flow 2 with lengths uniform on `[1, 128]`, everyone else
/// uniform on `[1, 64]`.
///
/// `base_rate` is the per-flow packet rate of the ordinary flows in
/// packets per cycle; the default used by the experiments (0.006) gives
/// every flow more than its 1/8 fair share of the link, keeping all
/// flows continuously backlogged for the 4-million-cycle run as the
/// paper requires ("we ensure that all the flows are active").
pub fn fig4_flows(base_rate: f64) -> Vec<FlowSpec> {
    let u64len = LenDist::Uniform { lo: 1, hi: 64 };
    let u128len = LenDist::Uniform { lo: 1, hi: 128 };
    (0..8)
        .map(|i| FlowSpec {
            arrivals: ArrivalProcess::Bernoulli {
                rate: if i == 3 { 2.0 * base_rate } else { base_rate },
            },
            lengths: if i == 2 { u128len } else { u64len },
        })
        .collect()
}

/// The Figure 5 workload: 4 flows with the Figure 4 rate/length mix
/// (flow 3 at 2× rate, flow 2 with `[1, 128]` lengths), scaled so the
/// total offered load is `intensity` × the link capacity.
///
/// The experiment injects with these specs for the 10 000-cycle transient
/// and then halts injection.
pub fn fig5_flows(intensity: f64) -> Vec<FlowSpec> {
    let u64len = LenDist::Uniform { lo: 1, hi: 64 };
    let u128len = LenDist::Uniform { lo: 1, hi: 128 };
    // Offered flits/cycle = r*32.5 + r*32.5 + r*64.5 + 2r*32.5 = 194.5 r.
    let r = intensity / 194.5;
    vec![
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: r },
            lengths: u64len,
        },
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: r },
            lengths: u64len,
        },
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: r },
            lengths: u128len,
        },
        FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate: 2.0 * r },
            lengths: u64len,
        },
    ]
}

/// The Figure 6 workload: `n` statistically identical flows whose packet
/// lengths are truncated-exponential with λ = 0.2 on `[1, 64]`, each
/// offered twice its fair share so all stay continuously backlogged.
pub fn fig6_flows(n: usize) -> Vec<FlowSpec> {
    let lengths = LenDist::TruncExp {
        lambda: 0.2,
        lo: 1,
        hi: 64,
    };
    let per_flow_flits = 2.0 / n as f64; // 2x the fair share
    let rate = (per_flow_flits / lengths.mean()).min(1.0);
    (0..n)
        .map(|_| FlowSpec {
            arrivals: ArrivalProcess::Bernoulli { rate },
            lengths,
        })
        .collect()
}

/// Normalized Zipf weights: flow `i` gets weight `(i+1)^-s`, scaled so
/// the weights sum to 1. With `s = 1.2` and 32 flows the heaviest flow
/// carries ~41% of the total — the skew regime where static per-flow
/// partitioning strands capacity and work stealing earns its keep
/// (DESIGN.md §8).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n >= 1, "need at least one flow");
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// A Zipf(s)-skewed workload: `n` flows sharing `total_load` flits per
/// cycle in [`zipf_weights`] proportions, all drawing packet lengths
/// from `lengths`.
pub fn zipf_flows(n: usize, s: f64, total_load: f64, lengths: LenDist) -> Vec<FlowSpec> {
    zipf_weights(n, s)
        .into_iter()
        .map(|w| FlowSpec {
            arrivals: ArrivalProcess::Bernoulli {
                rate: (w * total_load / lengths.mean()).min(1.0),
            },
            lengths,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_matches_paper_description() {
        let specs = fig4_flows(0.006);
        assert_eq!(specs.len(), 8);
        // Flow 3 at twice the rate.
        assert!(
            (specs[3].arrivals.mean_rate() - 2.0 * specs[0].arrivals.mean_rate()).abs() < 1e-12
        );
        // Flow 2 lengths up to 128, others 64.
        assert_eq!(specs[2].lengths.max_len(), 128);
        for (i, s) in specs.iter().enumerate() {
            if i != 2 {
                assert_eq!(s.lengths.max_len(), 64);
            }
            // Every flow is overloaded past its 1/8 fair share.
            assert!(
                s.offered_load() > 1.0 / 8.0,
                "flow {i} load {} not backlogging",
                s.offered_load()
            );
        }
        assert_eq!(max_packet_len(&specs), 128);
    }

    #[test]
    fn fig5_total_load_matches_intensity() {
        for intensity in [1.0, 1.1, 1.3] {
            let specs = fig5_flows(intensity);
            assert_eq!(specs.len(), 4);
            let total: f64 = specs.iter().map(|s| s.offered_load()).sum();
            assert!(
                (total - intensity).abs() < 1e-9,
                "intensity {intensity}: load {total}"
            );
        }
    }

    #[test]
    fn zipf_weights_are_normalized_and_skewed() {
        let w = zipf_weights(32, 1.2);
        assert_eq!(w.len(), 32);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "normalized, got {total}");
        assert!(w.windows(2).all(|p| p[0] > p[1]), "strictly decreasing");
        // Zipf(1.2) at n=32: the head flow carries ~32% of the load
        // (1 / Σ_{k=1..32} k^-1.2 ≈ 0.323).
        assert!(
            (0.31..0.34).contains(&w[0]),
            "head share {} off the Zipf(1.2) value",
            w[0]
        );
        // s = 0 degenerates to uniform.
        let flat = zipf_weights(4, 0.0);
        assert!(flat.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn zipf_flows_split_total_load_by_weight() {
        let lengths = LenDist::Constant(16);
        let specs = zipf_flows(8, 1.2, 0.9, lengths);
        let total: f64 = specs.iter().map(|s| s.offered_load()).sum();
        assert!((total - 0.9).abs() < 1e-9, "total load {total}");
        let w = zipf_weights(8, 1.2);
        for (spec, wi) in specs.iter().zip(&w) {
            assert!((spec.offered_load() - wi * 0.9).abs() < 1e-9);
        }
    }

    #[test]
    fn fig6_flows_identical_and_overloaded() {
        for n in [2usize, 5, 10] {
            let specs = fig6_flows(n);
            assert_eq!(specs.len(), n);
            assert!(specs.windows(2).all(|w| w[0] == w[1]));
            let total: f64 = specs.iter().map(|s| s.offered_load()).sum();
            assert!((total - 2.0).abs() < 0.05, "n={n}: total load {total}");
        }
    }
}
