#![warn(missing_docs)]

//! `traffic-gen` — workload generation for the ERR reproduction.
//!
//! The paper's simulation study (§5) uses three workload families, all of
//! which this crate can produce:
//!
//! * **Figure 4** (throughput fairness): 8 continuously backlogged flows;
//!   flow 3 arrives at twice the packet rate of the others; packet
//!   lengths are uniform on `[1, 64]` flits except flow 2's, which are
//!   uniform on `[1, 128]`.
//! * **Figure 5** (delay under transient congestion): 4 flows with the
//!   same rate/length mix, overloading the link for 10 000 cycles at a
//!   configurable intensity, after which injection stops and the queues
//!   drain.
//! * **Figure 6** (average relative fairness): 2–10 flows whose packet
//!   lengths are truncated-exponential (λ = 0.2) on `[1, 64]`.
//!
//! Building blocks: [`LenDist`] (packet-length distributions),
//! [`ArrivalProcess`] (arrival processes), [`FlowSpec`] (one flow's
//! traffic description), and [`Workload`] (a deterministic, seeded,
//! streaming packet source over all flows). [`trace`] provides
//! record/replay so a workload can be captured once and re-fed to many
//! disciplines byte-for-byte identically.

pub mod arrivals;
pub mod dist;
pub mod flows;
pub mod par_feed;
pub mod patterns;
pub mod trace;
pub mod workload;

pub use arrivals::ArrivalProcess;
pub use dist::LenDist;
pub use flows::{zipf_flows, zipf_weights, FlowSpec};
pub use par_feed::par_feed;
pub use patterns::TrafficPattern;
pub use trace::PacketTrace;
pub use workload::Workload;
