//! Synthetic network traffic patterns.
//!
//! The interconnection-network literature the paper sits in (Dally &
//! Seitz, Duato et al. — the paper's references \[5\] and \[8\])
//! evaluates networks under a standard set of spatial patterns, each
//! stressing a different aspect of a topology:
//!
//! * **Uniform** — every destination equally likely; the baseline.
//! * **Transpose** — `(x, y) → (y, x)`; adversarial for dimension-order
//!   routing (all traffic turns at the diagonal).
//! * **Bit-complement** — node `i → N-1-i`; maximal average distance.
//! * **Tornado** — each node sends halfway around its row; worst case
//!   for rings/tori (every packet travels the maximum ring distance and
//!   in the same direction).
//! * **Hotspot** — a fraction of traffic converges on one node, the
//!   congestion scenario of the paper's fairness motivation.
//! * **Neighbor** — nearest-neighbor (stencil-exchange) communication.

use desim::SimRng;
use serde::{Deserialize, Serialize};

/// A spatial traffic pattern over a `cols × rows` node grid.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding self).
    Uniform,
    /// `(x, y) → (y, x)`. Requires `cols == rows`.
    Transpose,
    /// `i → n_nodes - 1 - i`.
    BitComplement,
    /// `(x, y) → ((x + cols/2) mod cols, y)`.
    Tornado,
    /// With probability `fraction`, send to `node`; otherwise uniform.
    Hotspot {
        /// The hot node.
        node: usize,
        /// Fraction of traffic aimed at it.
        fraction: f64,
    },
    /// `(x, y) → ((x + 1) mod cols, y)`.
    Neighbor,
}

impl TrafficPattern {
    /// Picks the destination for a packet from `src` on a `cols × rows`
    /// grid. Deterministic patterns ignore `rng`. May return `src` only
    /// for degenerate deterministic cases (e.g. transpose of a diagonal
    /// node); callers typically skip those packets.
    pub fn dest(&self, src: usize, cols: usize, rows: usize, rng: &mut SimRng) -> usize {
        let n = cols * rows;
        debug_assert!(src < n);
        let (x, y) = (src % cols, src / cols);
        match *self {
            TrafficPattern::Uniform => {
                if n == 1 {
                    return src;
                }
                // Uniform over the other n-1 nodes.
                let mut d = rng.index(n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::Transpose => {
                debug_assert_eq!(cols, rows, "transpose needs a square grid");
                x * cols + y
            }
            TrafficPattern::BitComplement => n - 1 - src,
            TrafficPattern::Tornado => y * cols + (x + cols / 2) % cols,
            TrafficPattern::Hotspot { node, fraction } => {
                if rng.bernoulli(fraction) && node != src {
                    node
                } else {
                    TrafficPattern::Uniform.dest(src, cols, rows, rng)
                }
            }
            TrafficPattern::Neighbor => y * cols + (x + 1) % cols,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Neighbor => "neighbor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self_and_covers_grid() {
        let mut rng = SimRng::new(1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = TrafficPattern::Uniform.dest(5, 4, 4, &mut rng);
            assert_ne!(d, 5);
            assert!(d < 16);
            seen[d] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert_eq!(covered, 15, "all non-self nodes reachable");
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = SimRng::new(2);
        for src in 0..25usize {
            let d = TrafficPattern::Transpose.dest(src, 5, 5, &mut rng);
            let back = TrafficPattern::Transpose.dest(d, 5, 5, &mut rng);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn bit_complement_is_a_permutation_of_max_distance() {
        let mut rng = SimRng::new(3);
        let mut dests: Vec<usize> = (0..12)
            .map(|s| TrafficPattern::BitComplement.dest(s, 4, 3, &mut rng))
            .collect();
        dests.sort_unstable();
        assert_eq!(dests, (0..12).collect::<Vec<_>>());
        // (0,0) -> (3,2): the far corner.
        assert_eq!(TrafficPattern::BitComplement.dest(0, 4, 3, &mut rng), 11);
    }

    #[test]
    fn tornado_goes_halfway_around_the_row() {
        let mut rng = SimRng::new(4);
        // 6-wide: (1, y) -> (4, y).
        assert_eq!(TrafficPattern::Tornado.dest(7, 6, 2, &mut rng), 10);
        // Stays in the row.
        for src in 0..12usize {
            let d = TrafficPattern::Tornado.dest(src, 6, 2, &mut rng);
            assert_eq!(d / 6, src / 6);
        }
    }

    #[test]
    fn hotspot_concentration() {
        let mut rng = SimRng::new(5);
        let p = TrafficPattern::Hotspot {
            node: 3,
            fraction: 0.5,
        };
        let hits = (0..4000).filter(|_| p.dest(9, 4, 4, &mut rng) == 3).count();
        let f = hits as f64 / 4000.0;
        // 0.5 directed plus a sliver of uniform traffic landing there.
        assert!((0.45..0.60).contains(&f), "hotspot fraction {f}");
    }

    #[test]
    fn neighbor_wraps_row() {
        let mut rng = SimRng::new(6);
        assert_eq!(TrafficPattern::Neighbor.dest(3, 4, 2, &mut rng), 0);
        assert_eq!(TrafficPattern::Neighbor.dest(4, 4, 2, &mut rng), 5);
    }
}
