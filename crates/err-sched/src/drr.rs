//! Deficit Round Robin (Shreedhar & Varghese, ToN 1996) — the closest
//! O(1) competitor to ERR (paper Table 1: relative fairness `Max + 2m`).
//!
//! DRR visits active flows round-robin. Each visit adds a fixed *quantum*
//! to the flow's *deficit counter* and serves head packets **only while
//! the head packet's length fits within the counter**, decrementing it
//! per packet served. The leftover deficit carries to the next round; a
//! flow that empties its queue forfeits its deficit.
//!
//! The serve/skip test is the crucial difference from ERR: it compares
//! the *length of the head packet* to the deficit **before** serving it.
//! In a wormhole switch the cost of dequeuing a packet (its occupancy
//! time under downstream congestion) is unknowable at that point, which
//! is why the paper rules DRR out for wormhole networks — we implement it
//! as the baseline it is in the paper's Figures 4(d), 5 and 6.
//!
//! For O(1) work per served packet the quantum must be at least `Max`
//! (otherwise a visit can serve nothing); the constructor enforces
//! `quantum >= 1` and the experiments use `quantum = Max` as the paper
//! assumes. Smaller quanta are permitted for the ablation study — the
//! implementation then loops over (cheap) zero-service visits, each of
//! which strictly increases the flow's deficit, so progress is bounded.

use desim::Cycle;

use crate::active_list::ActiveList;
use crate::packet::FlitStream;
use crate::traits::{Scheduler, ServedFlit};
use crate::{FlowId, FlowQueues, Packet};

/// Deficit Round Robin scheduler.
#[derive(Clone, Debug)]
pub struct DrrScheduler {
    active: ActiveList,
    deficit: Vec<u64>,
    quantum: u64,
    queues: FlowQueues,
    /// Flow whose service opportunity is in progress (it is out of the
    /// ActiveList while being served).
    current: Option<FlowId>,
    in_flight: Option<FlitStream>,
}

impl DrrScheduler {
    /// Creates a DRR scheduler with the given per-visit quantum (flits).
    ///
    /// Panics if `quantum == 0` (a zero quantum can never serve anything).
    pub fn new(n_flows: usize, quantum: u64) -> Self {
        assert!(quantum >= 1, "DRR quantum must be positive");
        Self {
            active: ActiveList::new(n_flows),
            deficit: vec![0; n_flows],
            quantum,
            queues: FlowQueues::new(n_flows),
            current: None,
            in_flight: None,
        }
    }

    fn ensure(&mut self, flow: FlowId) {
        if flow >= self.deficit.len() {
            self.deficit.resize(flow + 1, 0);
        }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Current deficit counter of `flow` (for tests/instrumentation).
    pub fn deficit(&self, flow: FlowId) -> u64 {
        self.deficit.get(flow).copied().unwrap_or(0)
    }

    fn is_active(&self, flow: FlowId) -> bool {
        self.active.contains(flow) || self.current == Some(flow)
    }

    /// Finds the next packet to serve, doing visit bookkeeping as needed.
    fn load_packet(&mut self) -> bool {
        debug_assert!(self.in_flight.is_none());
        loop {
            let flow = match self.current {
                Some(f) => f,
                None => {
                    let Some(f) = self.active.pop_front() else {
                        return false;
                    };
                    // New service opportunity: top up the deficit.
                    self.deficit[f] += self.quantum;
                    self.current = Some(f);
                    f
                }
            };
            // The a-priori length inspection that disqualifies DRR from
            // wormhole networks (paper §2).
            match self.queues.head_len(flow) {
                Some(len) if (len as u64) <= self.deficit[flow] => {
                    let pkt = self.queues.pop(flow).expect("head exists");
                    self.deficit[flow] -= pkt.len as u64;
                    self.in_flight = Some(FlitStream::new(pkt));
                    return true;
                }
                Some(_) => {
                    // Head does not fit: deficit carries over, next flow.
                    self.active.push_back(flow);
                    self.current = None;
                }
                None => {
                    // Queue empty: forfeit the deficit, flow goes inactive.
                    self.deficit[flow] = 0;
                    self.current = None;
                    if self.active.is_empty() {
                        return false;
                    }
                }
            }
        }
    }
}

impl Scheduler for DrrScheduler {
    fn enqueue(&mut self, pkt: Packet, _now: Cycle) {
        self.ensure(pkt.flow);
        if !self.is_active(pkt.flow) {
            self.active.push_back(pkt.flow);
            self.deficit[pkt.flow] = 0;
        }
        self.queues.push(pkt);
    }

    fn service_flit(&mut self, _now: Cycle) -> Option<ServedFlit> {
        if self.in_flight.is_none() && !self.load_packet() {
            return None;
        }
        let stream = self.in_flight.as_mut().expect("just loaded");
        let pkt = *stream.packet();
        let (idx, done) = stream.emit();
        if done {
            self.in_flight = None;
            // The flow keeps its service opportunity (`current`) and the
            // next load_packet re-tests its new head against the deficit.
            if self.queues.is_empty(pkt.flow) {
                self.deficit[pkt.flow] = 0;
                self.current = None;
            }
        }
        Some(ServedFlit::of(&pkt, idx))
    }

    fn backlog_flits(&self) -> u64 {
        self.queues.backlog_flits() + self.in_flight.as_ref().map_or(0, |s| s.remaining() as u64)
    }

    fn name(&self) -> &'static str {
        "DRR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: FlowId, len: u32) -> Packet {
        Packet::new(id, flow, len, 0)
    }

    fn drain(s: &mut DrrScheduler) -> Vec<ServedFlit> {
        let mut out = Vec::new();
        let mut now = 0;
        while let Some(f) = s.service_flit(now) {
            out.push(f);
            now += 1;
        }
        out
    }

    #[test]
    fn serves_within_quantum_per_round() {
        // Quantum 10, flow 0 has 4-flit packets, flow 1 has 4-flit
        // packets: per round each sends 2 packets (8 flits, deficit 2
        // carries), alternating fairly.
        let mut s = DrrScheduler::new(2, 10);
        for k in 0..6u64 {
            s.enqueue(pkt(k, 0, 4), 0);
            s.enqueue(pkt(100 + k, 1, 4), 0);
        }
        let flits = drain(&mut s);
        // First visit serves flow 0 packets 0 and 1 (8 flits <= 10, third
        // would need 12), then flow 1 likewise.
        let first_12: Vec<_> = flits[..16].iter().map(|f| f.flow).collect();
        assert_eq!(&first_12[..8], &[0; 8]);
        assert_eq!(&first_12[8..16], &[1; 8]);
    }

    #[test]
    fn deficit_carries_over_and_is_forfeited_on_empty() {
        let mut s = DrrScheduler::new(2, 5);
        s.enqueue(pkt(0, 0, 4), 0);
        s.enqueue(pkt(1, 0, 4), 0);
        s.enqueue(pkt(2, 1, 1), 0);
        // Visit flow 0: deficit 5, serve 4-flit pkt (deficit 1); head 4 > 1
        // → carry deficit 1.
        for _ in 0..4 {
            s.service_flit(0);
        }
        assert_eq!(s.deficit(0), 1);
        // Flow 1 serves its 1-flit packet and empties: deficit forfeited.
        s.service_flit(0);
        assert_eq!(s.deficit(1), 0);
        // Flow 0 second visit: deficit 1 + 5 = 6, serves the 4-flit pkt,
        // then empties → forfeits.
        for _ in 0..4 {
            s.service_flit(0);
        }
        assert_eq!(s.deficit(0), 0);
        assert!(s.is_idle());
    }

    #[test]
    fn skips_head_larger_than_quantum_until_deficit_accumulates() {
        // Quantum 3 < packet size 7: flow 0 must wait 3 visits
        // (deficit 3, 6, 9) before its packet goes; flow 1's 1-flit
        // packets keep the system busy meanwhile.
        let mut s = DrrScheduler::new(2, 3);
        s.enqueue(pkt(0, 0, 7), 0);
        for k in 0..10u64 {
            s.enqueue(pkt(10 + k, 1, 1), 0);
        }
        let flits = drain(&mut s);
        let flow0_start = flits.iter().position(|f| f.flow == 0).unwrap();
        // Flow 1 sends 3 per visit; flow 0's packet starts only on its
        // third visit, i.e. after two flow-1 visits (6 flits).
        assert_eq!(flow0_start, 6);
        assert_eq!(flits.len(), 17);
    }

    #[test]
    fn work_conserving_and_fifo() {
        let mut s = DrrScheduler::new(3, 64);
        let mut total = 0u64;
        for f in 0..3usize {
            for k in 0..8u64 {
                let len = 1 + ((k * 3 + f as u64) % 9) as u32;
                total += len as u64;
                s.enqueue(pkt(f as u64 * 100 + k, f, len), 0);
            }
        }
        let flits = drain(&mut s);
        assert_eq!(flits.len() as u64, total);
        for f in 0..3usize {
            let pids: Vec<_> = flits
                .iter()
                .filter(|x| x.flow == f && x.is_head())
                .map(|x| x.packet)
                .collect();
            let mut sorted = pids.clone();
            sorted.sort_unstable();
            assert_eq!(pids, sorted);
        }
    }

    #[test]
    fn no_packet_interleaving() {
        let mut s = DrrScheduler::new(2, 64);
        for k in 0..10u64 {
            s.enqueue(pkt(k, (k % 2) as usize, 2 + (k % 5) as u32), 0);
        }
        let flits = drain(&mut s);
        let mut open: Option<u64> = None;
        for fl in &flits {
            match open {
                None => {
                    assert!(fl.is_head());
                    if !fl.is_tail() {
                        open = Some(fl.packet);
                    }
                }
                Some(pid) => {
                    assert_eq!(fl.packet, pid);
                    if fl.is_tail() {
                        open = None;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        DrrScheduler::new(1, 0);
    }

    #[test]
    fn deficit_bounded_by_quantum_when_backlogged() {
        // Invariant: while a flow stays backlogged, its carried deficit is
        // strictly less than Max (largest packet), since only a too-big
        // head causes a carry.
        let mut s = DrrScheduler::new(2, 16);
        for k in 0..40u64 {
            s.enqueue(pkt(k, (k % 2) as usize, 1 + (k % 16) as u32), 0);
        }
        let mut now = 0;
        while let Some(f) = s.service_flit(now) {
            if f.is_tail() {
                for flow in 0..2 {
                    assert!(s.deficit(flow) < 16 + 16, "deficit runaway");
                }
            }
            now += 1;
        }
    }
}
