//! A flit-granular Generalized Processor Sharing reference.
//!
//! GPS is the "unimplementable but ideal scheduling discipline" the
//! paper's fairness notion is defined against (§2): a fluid server that
//! gives every backlogged flow exactly its weighted share at every
//! instant. This module discretizes the fluid model at flit granularity:
//! each cycle it serves one flit from the backlogged flow with the least
//! *normalized service* (service ÷ weight), self-clocking newly active
//! flows to the current service level so they cannot claim service for
//! the past.
//!
//! Selection scans the flows, so each flit costs **O(n)** — this is a
//! measurement reference, not a contender (ERR's whole point is O(1)
//! work). Like FBRR it interleaves flits across packets, which is only
//! physical for flit-tagged virtual channels.

use desim::Cycle;

use crate::packet::FlitStream;
use crate::traits::{Scheduler, ServedFlit};
use crate::{FlowId, FlowQueues, Packet};

/// Flit-granular GPS reference scheduler.
pub struct GpsReference {
    queues: FlowQueues,
    in_flight: Vec<Option<FlitStream>>,
    weight: Vec<f64>,
    /// Normalized service accumulated per flow (flits / weight).
    norm_service: Vec<f64>,
    /// Normalized-service level of the most recently served flow — the
    /// "virtual time" newly active flows start from.
    level: f64,
}

impl GpsReference {
    /// Creates a GPS reference with equal weights.
    pub fn new(n_flows: usize) -> Self {
        Self::with_weights(vec![1.0; n_flows])
    }

    /// Creates a GPS reference with the given positive weights.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let n = weights.len();
        Self {
            queues: FlowQueues::new(n),
            in_flight: (0..n).map(|_| None).collect(),
            weight: weights,
            norm_service: vec![0.0; n],
            level: 0.0,
        }
    }

    fn ensure(&mut self, flow: FlowId) {
        if flow >= self.weight.len() {
            self.weight.resize(flow + 1, 1.0);
            self.norm_service.resize(flow + 1, 0.0);
            self.in_flight.resize_with(flow + 1, || None);
        }
    }

    fn flow_backlogged(&self, flow: FlowId) -> bool {
        self.in_flight.get(flow).is_some_and(|s| s.is_some()) || !self.queues.is_empty(flow)
    }

    /// Backlogged flow with minimal normalized service (ties: lowest id).
    fn pick(&self) -> Option<FlowId> {
        let mut best: Option<(f64, FlowId)> = None;
        for f in 0..self.weight.len() {
            if !self.flow_backlogged(f) {
                continue;
            }
            let key = self.norm_service[f];
            match best {
                None => best = Some((key, f)),
                Some((bk, _)) if key < bk => best = Some((key, f)),
                _ => {}
            }
        }
        best.map(|(_, f)| f)
    }
}

impl Scheduler for GpsReference {
    fn enqueue(&mut self, pkt: Packet, _now: Cycle) {
        self.ensure(pkt.flow);
        if !self.flow_backlogged(pkt.flow) {
            // Self-clock: a flow joining the backlogged set starts at the
            // current level; it cannot bank credit for its idle past.
            self.norm_service[pkt.flow] = self.norm_service[pkt.flow].max(self.level);
        }
        self.queues.push(pkt);
    }

    fn service_flit(&mut self, _now: Cycle) -> Option<ServedFlit> {
        let flow = self.pick()?;
        if self.in_flight[flow].is_none() {
            let pkt = self.queues.pop(flow).expect("backlogged flow has a packet");
            self.in_flight[flow] = Some(FlitStream::new(pkt));
        }
        let stream = self.in_flight[flow].as_mut().expect("just loaded");
        let pkt = *stream.packet();
        let (idx, done) = stream.emit();
        if done {
            self.in_flight[flow] = None;
        }
        self.norm_service[flow] += 1.0 / self.weight[flow];
        self.level = self.norm_service[flow];
        Some(ServedFlit::of(&pkt, idx))
    }

    fn backlog_flits(&self) -> u64 {
        self.queues.backlog_flits()
            + self
                .in_flight
                .iter()
                .flatten()
                .map(|s| s.remaining() as u64)
                .sum::<u64>()
    }

    fn name(&self) -> &'static str {
        "GPS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: FlowId, len: u32) -> Packet {
        Packet::new(id, flow, len, 0)
    }

    #[test]
    fn equal_weights_perfectly_even() {
        let mut s = GpsReference::new(3);
        for k in 0..30u64 {
            for f in 0..3usize {
                s.enqueue(pkt(k * 3 + f as u64, f, 2), 0);
            }
        }
        let mut counts = [0u64; 3];
        for now in 0..90u64 {
            let f = s.service_flit(now).unwrap();
            counts[f.flow] += 1;
        }
        assert_eq!(counts, [30, 30, 30]);
    }

    #[test]
    fn weighted_fluid_shares() {
        let mut s = GpsReference::with_weights(vec![1.0, 3.0]);
        for k in 0..100u64 {
            s.enqueue(pkt(k, 0, 4), 0);
            s.enqueue(pkt(1000 + k, 1, 4), 0);
        }
        let mut f1 = 0u64;
        for now in 0..200u64 {
            if s.service_flit(now).unwrap().flow == 1 {
                f1 += 1;
            }
        }
        assert_eq!(f1, 150, "weight-3 flow gets exactly 3/4 of the link");
    }

    #[test]
    fn late_flow_does_not_claim_past_service() {
        let mut s = GpsReference::new(2);
        for k in 0..50u64 {
            s.enqueue(pkt(k, 0, 2), 0);
        }
        let mut now = 0u64;
        for _ in 0..60 {
            s.service_flit(now);
            now += 1;
        }
        // Flow 1 joins after flow 0 already received 60 flits.
        for k in 0..20u64 {
            s.enqueue(pkt(100 + k, 1, 2), now);
        }
        let mut f1 = 0u64;
        for _ in 0..20 {
            if s.service_flit(now).unwrap().flow == 1 {
                f1 += 1;
            }
            now += 1;
        }
        assert!(
            (9..=11).contains(&f1),
            "flow 1 should get ~half going forward, got {f1}/20"
        );
    }

    #[test]
    fn conservation_and_idle() {
        let mut s = GpsReference::new(2);
        s.enqueue(pkt(0, 0, 3), 0);
        s.enqueue(pkt(1, 1, 5), 0);
        let mut served = 0u64;
        let mut now = 0;
        while s.service_flit(now).is_some() {
            served += 1;
            now += 1;
        }
        assert_eq!(served, 8);
        assert!(s.is_idle());
    }
}
