//! Discipline selection for experiments, examples, and runtime CLIs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::drr::DrrScheduler;
use crate::err::ErrScheduler;
use crate::fbrr::FbrrScheduler;
use crate::fcfs::FcfsScheduler;
use crate::gps::GpsReference;
use crate::pbrr::PbrrScheduler;
use crate::scfq::ScfqScheduler;
use crate::traits::Scheduler;
use crate::vclock::VclockScheduler;
use crate::werr::WerrScheduler;
use crate::wfq::WfqScheduler;

/// The scheduling disciplines available to the experiment harness.
///
/// The first five are the disciplines of the paper's simulation study
/// (§5); the remainder are the Table 1 context rows plus the weighted-ERR
/// extension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Discipline {
    /// Elastic Round Robin (the paper's contribution).
    Err,
    /// Deficit Round Robin with the given quantum in flits.
    Drr {
        /// Per-visit quantum; the paper's comparisons use `Max`.
        quantum: u64,
    },
    /// Flit-based round robin (virtual-channel style).
    Fbrr,
    /// Packet-based round robin.
    Pbrr,
    /// First-come-first-served.
    Fcfs,
    /// Weighted Fair Queuing (O(log n)).
    Wfq,
    /// Self-clocked fair queuing (O(log n)).
    Scfq,
    /// Virtual Clock (O(log n)).
    VirtualClock,
    /// Fluid GPS reference (O(n) per flit; measurement baseline only).
    Gps,
    /// Weighted ERR with the given integer weights.
    Werr {
        /// Per-flow integer weights (all ≥ 1).
        weights: Vec<u64>,
    },
}

impl Discipline {
    /// Instantiates the discipline for `n_flows` flows.
    ///
    /// The trait object is `Send` so a scheduler can be built on one
    /// thread and owned by a worker on another (every discipline's
    /// state is plain owned data); it is still `!Sync` by design — a
    /// scheduler belongs to exactly one driver at a time.
    pub fn build(&self, n_flows: usize) -> Box<dyn Scheduler + Send> {
        match self {
            Discipline::Err => Box::new(ErrScheduler::new(n_flows)),
            Discipline::Drr { quantum } => Box::new(DrrScheduler::new(n_flows, *quantum)),
            Discipline::Fbrr => Box::new(FbrrScheduler::new(n_flows)),
            Discipline::Pbrr => Box::new(PbrrScheduler::new(n_flows)),
            Discipline::Fcfs => Box::new(FcfsScheduler::new(n_flows)),
            Discipline::Wfq => Box::new(WfqScheduler::new(n_flows)),
            Discipline::Scfq => Box::new(ScfqScheduler::new(n_flows)),
            Discipline::VirtualClock => Box::new(VclockScheduler::new(n_flows)),
            Discipline::Gps => Box::new(GpsReference::new(n_flows)),
            Discipline::Werr { weights } => {
                let mut w = weights.clone();
                if w.len() < n_flows {
                    w.resize(n_flows, 1);
                }
                Box::new(WerrScheduler::new(w))
            }
        }
    }

    /// The name used in the paper's figures and our result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Discipline::Err => "ERR",
            Discipline::Drr { .. } => "DRR",
            Discipline::Fbrr => "FBRR",
            Discipline::Pbrr => "PBRR",
            Discipline::Fcfs => "FCFS",
            Discipline::Wfq => "WFQ",
            Discipline::Scfq => "SCFQ",
            Discipline::VirtualClock => "VirtualClock",
            Discipline::Gps => "GPS",
            Discipline::Werr { .. } => "WERR",
        }
    }
}

/// Error from parsing a [`Discipline`] name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDisciplineError {
    input: String,
}

impl fmt::Display for ParseDisciplineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown discipline `{}` (expected one of: err, drr[:quantum], fbrr, pbrr, fcfs, \
             wfq, scfq, vclock, gps, werr[:w1,w2,...])",
            self.input
        )
    }
}

impl std::error::Error for ParseDisciplineError {}

/// Canonical textual form, parseable back via [`FromStr`](std::str::FromStr):
/// `err`, `drr:32`, `fbrr`, `pbrr`, `fcfs`, `wfq`, `scfq`, `vclock`,
/// `gps`, `werr:1,2,3`.
impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Discipline::Err => write!(f, "err"),
            Discipline::Drr { quantum } => write!(f, "drr:{quantum}"),
            Discipline::Fbrr => write!(f, "fbrr"),
            Discipline::Pbrr => write!(f, "pbrr"),
            Discipline::Fcfs => write!(f, "fcfs"),
            Discipline::Wfq => write!(f, "wfq"),
            Discipline::Scfq => write!(f, "scfq"),
            Discipline::VirtualClock => write!(f, "vclock"),
            Discipline::Gps => write!(f, "gps"),
            Discipline::Werr { weights } => {
                write!(f, "werr:")?;
                for (i, w) in weights.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
        }
    }
}

/// Parses the [`Display`](std::fmt::Display) forms (case-insensitive).
/// `drr` without a
/// quantum defaults to 32 flits; `werr` without weights is rejected
/// (weights are what distinguish it from `err`).
impl std::str::FromStr for Discipline {
    type Err = ParseDisciplineError;

    fn from_str(s: &str) -> Result<Self, ParseDisciplineError> {
        let err = |input: &str| ParseDisciplineError {
            input: input.to_owned(),
        };
        let lower = s.trim().to_ascii_lowercase();
        let (name, arg) = match lower.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (lower.as_str(), None),
        };
        match (name, arg) {
            ("err", None) => Ok(Discipline::Err),
            ("drr", None) => Ok(Discipline::Drr { quantum: 32 }),
            ("drr", Some(q)) => q
                .parse::<u64>()
                .ok()
                .filter(|&q| q >= 1)
                .map(|quantum| Discipline::Drr { quantum })
                .ok_or_else(|| err(s)),
            ("fbrr", None) => Ok(Discipline::Fbrr),
            ("pbrr", None) => Ok(Discipline::Pbrr),
            ("fcfs", None) => Ok(Discipline::Fcfs),
            ("wfq", None) => Ok(Discipline::Wfq),
            ("scfq", None) => Ok(Discipline::Scfq),
            ("vclock" | "virtualclock", None) => Ok(Discipline::VirtualClock),
            ("gps", None) => Ok(Discipline::Gps),
            ("werr", Some(ws)) => {
                let weights: Option<Vec<u64>> = ws
                    .split(',')
                    .map(|w| w.trim().parse::<u64>().ok().filter(|&w| w >= 1))
                    .collect();
                match weights {
                    Some(w) if !w.is_empty() => Ok(Discipline::Werr { weights: w }),
                    _ => Err(err(s)),
                }
            }
            _ => Err(err(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    #[test]
    fn all_disciplines_build_and_serve() {
        let all = [
            Discipline::Err,
            Discipline::Drr { quantum: 64 },
            Discipline::Fbrr,
            Discipline::Pbrr,
            Discipline::Fcfs,
            Discipline::Wfq,
            Discipline::Scfq,
            Discipline::VirtualClock,
            Discipline::Gps,
            Discipline::Werr {
                weights: vec![1, 2],
            },
        ];
        for d in &all {
            let mut s = d.build(2);
            assert_eq!(s.name(), d.label());
            s.enqueue(Packet::new(0, 0, 3, 0), 0);
            s.enqueue(Packet::new(1, 1, 2, 0), 0);
            let mut served = 0;
            let mut now = 0;
            while s.service_flit(now).is_some() {
                served += 1;
                now += 1;
                assert!(now < 100, "{} not terminating", d.label());
            }
            assert_eq!(served, 5, "{} lost flits", d.label());
            assert!(s.is_idle());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Discipline::Err.label(), "ERR");
        assert_eq!(Discipline::Drr { quantum: 1 }.label(), "DRR");
        assert_eq!(Discipline::Fcfs.label(), "FCFS");
    }

    #[test]
    fn display_round_trips_through_fromstr() {
        let all = [
            Discipline::Err,
            Discipline::Drr { quantum: 64 },
            Discipline::Fbrr,
            Discipline::Pbrr,
            Discipline::Fcfs,
            Discipline::Wfq,
            Discipline::Scfq,
            Discipline::VirtualClock,
            Discipline::Gps,
            Discipline::Werr {
                weights: vec![1, 2, 3],
            },
        ];
        for d in &all {
            let text = d.to_string();
            let parsed: Discipline = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(&parsed, d, "round-trip of `{text}`");
        }
    }

    #[test]
    fn parsing_accepts_aliases_and_defaults() {
        assert_eq!("ERR".parse::<Discipline>().unwrap(), Discipline::Err);
        assert_eq!(
            " drr ".parse::<Discipline>().unwrap(),
            Discipline::Drr { quantum: 32 }
        );
        assert_eq!(
            "drr:128".parse::<Discipline>().unwrap(),
            Discipline::Drr { quantum: 128 }
        );
        assert_eq!(
            "VirtualClock".parse::<Discipline>().unwrap(),
            Discipline::VirtualClock
        );
        assert_eq!(
            "werr:2, 3,4".parse::<Discipline>().unwrap(),
            Discipline::Werr {
                weights: vec![2, 3, 4]
            }
        );
    }

    #[test]
    fn parsing_rejects_malformed_names() {
        for bad in [
            "", "err2", "drr:", "drr:0", "drr:x", "werr", "werr:", "werr:0", "gps:1",
        ] {
            assert!(
                bad.parse::<Discipline>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }
}
