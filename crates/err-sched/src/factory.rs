//! Discipline selection for experiments and examples.

use serde::{Deserialize, Serialize};

use crate::drr::DrrScheduler;
use crate::err::ErrScheduler;
use crate::fbrr::FbrrScheduler;
use crate::fcfs::FcfsScheduler;
use crate::gps::GpsReference;
use crate::pbrr::PbrrScheduler;
use crate::scfq::ScfqScheduler;
use crate::traits::Scheduler;
use crate::vclock::VclockScheduler;
use crate::werr::WerrScheduler;
use crate::wfq::WfqScheduler;

/// The scheduling disciplines available to the experiment harness.
///
/// The first five are the disciplines of the paper's simulation study
/// (§5); the remainder are the Table 1 context rows plus the weighted-ERR
/// extension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Discipline {
    /// Elastic Round Robin (the paper's contribution).
    Err,
    /// Deficit Round Robin with the given quantum in flits.
    Drr {
        /// Per-visit quantum; the paper's comparisons use `Max`.
        quantum: u64,
    },
    /// Flit-based round robin (virtual-channel style).
    Fbrr,
    /// Packet-based round robin.
    Pbrr,
    /// First-come-first-served.
    Fcfs,
    /// Weighted Fair Queuing (O(log n)).
    Wfq,
    /// Self-clocked fair queuing (O(log n)).
    Scfq,
    /// Virtual Clock (O(log n)).
    VirtualClock,
    /// Fluid GPS reference (O(n) per flit; measurement baseline only).
    Gps,
    /// Weighted ERR with the given integer weights.
    Werr {
        /// Per-flow integer weights (all ≥ 1).
        weights: Vec<u64>,
    },
}

impl Discipline {
    /// Instantiates the discipline for `n_flows` flows.
    pub fn build(&self, n_flows: usize) -> Box<dyn Scheduler> {
        match self {
            Discipline::Err => Box::new(ErrScheduler::new(n_flows)),
            Discipline::Drr { quantum } => Box::new(DrrScheduler::new(n_flows, *quantum)),
            Discipline::Fbrr => Box::new(FbrrScheduler::new(n_flows)),
            Discipline::Pbrr => Box::new(PbrrScheduler::new(n_flows)),
            Discipline::Fcfs => Box::new(FcfsScheduler::new(n_flows)),
            Discipline::Wfq => Box::new(WfqScheduler::new(n_flows)),
            Discipline::Scfq => Box::new(ScfqScheduler::new(n_flows)),
            Discipline::VirtualClock => Box::new(VclockScheduler::new(n_flows)),
            Discipline::Gps => Box::new(GpsReference::new(n_flows)),
            Discipline::Werr { weights } => {
                let mut w = weights.clone();
                if w.len() < n_flows {
                    w.resize(n_flows, 1);
                }
                Box::new(WerrScheduler::new(w))
            }
        }
    }

    /// The name used in the paper's figures and our result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Discipline::Err => "ERR",
            Discipline::Drr { .. } => "DRR",
            Discipline::Fbrr => "FBRR",
            Discipline::Pbrr => "PBRR",
            Discipline::Fcfs => "FCFS",
            Discipline::Wfq => "WFQ",
            Discipline::Scfq => "SCFQ",
            Discipline::VirtualClock => "VirtualClock",
            Discipline::Gps => "GPS",
            Discipline::Werr { .. } => "WERR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    #[test]
    fn all_disciplines_build_and_serve() {
        let all = [
            Discipline::Err,
            Discipline::Drr { quantum: 64 },
            Discipline::Fbrr,
            Discipline::Pbrr,
            Discipline::Fcfs,
            Discipline::Wfq,
            Discipline::Scfq,
            Discipline::VirtualClock,
            Discipline::Gps,
            Discipline::Werr {
                weights: vec![1, 2],
            },
        ];
        for d in &all {
            let mut s = d.build(2);
            assert_eq!(s.name(), d.label());
            s.enqueue(Packet::new(0, 0, 3, 0), 0);
            s.enqueue(Packet::new(1, 1, 2, 0), 0);
            let mut served = 0;
            let mut now = 0;
            while s.service_flit(now).is_some() {
                served += 1;
                now += 1;
                assert!(now < 100, "{} not terminating", d.label());
            }
            assert_eq!(served, 5, "{} lost flits", d.label());
            assert!(s.is_idle());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Discipline::Err.label(), "ERR");
        assert_eq!(Discipline::Drr { quantum: 1 }.label(), "DRR");
        assert_eq!(Discipline::Fcfs.label(), "FCFS");
    }
}
