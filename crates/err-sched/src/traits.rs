//! The flit-clocked scheduler interface shared by every discipline.

use desim::Cycle;

use crate::migrate::MigratedFlow;
use crate::{FlowId, Packet, PacketId};

/// One flit leaving the scheduler, with enough context for measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServedFlit {
    /// Flow the flit belongs to.
    pub flow: FlowId,
    /// Packet the flit belongs to.
    pub packet: PacketId,
    /// Arrival cycle of the packet (for delay measurement).
    pub arrival: Cycle,
    /// Total length of the packet in flits.
    pub len: u32,
    /// 0-based index of this flit within its packet.
    pub flit_index: u32,
}

impl ServedFlit {
    /// Builds the flit record for `pkt`'s flit number `flit_index`.
    pub fn of(pkt: &Packet, flit_index: u32) -> Self {
        Self {
            flow: pkt.flow,
            packet: pkt.id,
            arrival: pkt.arrival,
            len: pkt.len,
            flit_index,
        }
    }

    /// Whether this is the packet's head flit (carries routing info in a
    /// wormhole network).
    pub fn is_head(&self) -> bool {
        self.flit_index == 0
    }

    /// Whether this is the packet's tail flit — the instant the paper
    /// measures packet departure ("the instant its last flit is
    /// dequeued").
    pub fn is_tail(&self) -> bool {
        self.flit_index + 1 == self.len
    }
}

/// A flit-clocked packet scheduler.
///
/// The contract, matching the paper's abstraction in §1:
///
/// * Packets arrive into per-flow FIFO queues via [`enqueue`].
/// * Each cycle the link can carry one flit; the harness calls
///   [`service_flit`], and the discipline picks the flit.
/// * The scheduler must be **work-conserving**: `service_flit` returns
///   `Some` whenever any flit is backlogged. The single exception is
///   flow parking (below): while every backlogged flow is parked,
///   `service_flit` returns `None` even though `backlog_flits() > 0`.
/// * Per-flow FIFO order must be preserved.
/// * Packet-granular disciplines must not interleave packets: between a
///   head flit and its tail flit, every served flit belongs to the same
///   packet (the wormhole output-queue constraint). FBRR and GPS are
///   exempt — they model flit-tagged virtual-channel scheduling where
///   interleaving is legal.
///
/// # Flow parking
///
/// Wormhole downstreams stall: a credit-starved egress link cannot
/// accept flits for an unpredictable time, and a driver that kept
/// serving a starved flow would have to buffer its output unboundedly
/// or block its whole flit clock (the coupling the paper argues
/// against). [`park_flow`] tells the scheduler to *skip* a flow —
/// serve everyone else — until [`unpark_flow`]. Parking must be
/// position-preserving: the flow keeps its scheduling state (for ERR,
/// its surplus count, and a packet interrupted mid-wormhole resumes
/// before the flow starts another), so a stall costs the flow no
/// fairness beyond the stall itself. Support is opt-in via
/// [`supports_parking`]; the defaults refuse, and drivers must fall
/// back to blocking for such disciplines.
///
/// [`enqueue`]: Scheduler::enqueue
/// [`service_flit`]: Scheduler::service_flit
/// [`park_flow`]: Scheduler::park_flow
/// [`unpark_flow`]: Scheduler::unpark_flow
/// [`supports_parking`]: Scheduler::supports_parking
pub trait Scheduler {
    /// Adds a packet to its flow's queue at cycle `now`.
    fn enqueue(&mut self, pkt: Packet, now: Cycle);

    /// Serves one flit at cycle `now`, or `None` if idle.
    fn service_flit(&mut self, now: Cycle) -> Option<ServedFlit>;

    /// Serves up to `max_flits` flits starting at cycle `now`, one flit
    /// per cycle (the paper's egress-link model), appending them to
    /// `out`. Returns the number served; fewer than `max_flits` means
    /// the scheduler went idle.
    ///
    /// This is the batched entry point the multi-shard runtime drives:
    /// it makes exactly the same decisions as `max_flits` single calls
    /// to [`service_flit`](Scheduler::service_flit) at cycles `now`,
    /// `now + 1`, … — batching amortizes call overhead, it never
    /// changes the discipline's schedule.
    fn service_batch(&mut self, now: Cycle, max_flits: usize, out: &mut Vec<ServedFlit>) -> usize {
        let mut served = 0;
        while served < max_flits {
            match self.service_flit(now + served as Cycle) {
                Some(f) => {
                    out.push(f);
                    served += 1;
                }
                None => break,
            }
        }
        served
    }

    /// Whether this discipline implements [`park_flow`] /
    /// [`unpark_flow`]. Drivers must check this before relying on
    /// parking for flow isolation; when `false`, [`park_flow`] is a
    /// refused no-op and the driver has to block instead.
    ///
    /// [`park_flow`]: Scheduler::park_flow
    /// [`unpark_flow`]: Scheduler::unpark_flow
    fn supports_parking(&self) -> bool {
        false
    }

    /// Parks `flow`: its flits are skipped by service until
    /// [`unpark_flow`](Scheduler::unpark_flow), without losing the
    /// flow's scheduling position or fairness state. Packets of a
    /// parked flow may still be enqueued; they wait. Returns whether
    /// the flow is now parked (`false` means parking is unsupported and
    /// nothing changed). Parking an already-parked flow is a no-op
    /// returning `true`.
    fn park_flow(&mut self, _flow: FlowId) -> bool {
        false
    }

    /// Unparks `flow`, making its backlog eligible for service again.
    /// A no-op for flows that are not parked.
    fn unpark_flow(&mut self, _flow: FlowId) {}

    /// Whether this discipline implements [`extract_flow`] /
    /// [`absorb_flow`] (DESIGN.md §8). Implies
    /// [`supports_parking`](Scheduler::supports_parking): migration
    /// quiesces a flow by parking it on both sides first.
    ///
    /// [`extract_flow`]: Scheduler::extract_flow
    /// [`absorb_flow`]: Scheduler::absorb_flow
    fn supports_migration(&self) -> bool {
        false
    }

    /// Flits currently backlogged for `flow` alone (queued packets plus
    /// the unsent remainder of a packet in service or suspended). Used
    /// by the migration donor to pick the heaviest victim; disciplines
    /// without migration support may return 0.
    fn flow_backlog_flits(&self, _flow: FlowId) -> u64 {
        0
    }

    /// Removes `flow`'s entire scheduler-side state — FIFO queue,
    /// surplus count, suspended visit — as a portable [`MigratedFlow`]
    /// package, leaving the flow blank (unparked, no debt) here.
    ///
    /// The flow must be parked (quiesced) when this is called; the
    /// default returns `None` (unsupported).
    fn extract_flow(&mut self, _flow: FlowId) -> Option<MigratedFlow> {
        None
    }

    /// Installs a [`MigratedFlow`] package for `flow`, *prepending* its
    /// queue to any packets that already arrived here (old routing
    /// epoch before new — per-flow FIFO across the steal) and adopting
    /// its surplus count verbatim. The flow must be parked here; it
    /// becomes servable on the next
    /// [`unpark_flow`](Scheduler::unpark_flow). Returns whether the
    /// package was installed (`false` means migration is unsupported
    /// and nothing changed).
    fn absorb_flow(&mut self, _flow: FlowId, _state: MigratedFlow) -> bool {
        false
    }

    /// Flits currently backlogged (queued + in service but unsent).
    fn backlog_flits(&self) -> u64;

    /// Whether the scheduler has nothing to send.
    fn is_idle(&self) -> bool {
        self.backlog_flits() == 0
    }

    /// Human-readable discipline name (as used in the paper's figures).
    fn name(&self) -> &'static str;
}
