//! Self-Clocked Fair Queuing (Golestani, INFOCOM 1994) — the paper's
//! reference \[9\], from which its relative fairness metric is taken.
//!
//! SCFQ avoids WFQ's expensive GPS virtual-time emulation by using the
//! finish tag of the packet *currently in service* as the virtual time:
//!
//! ```text
//! F = max(v_now, F_i) + len / w_i
//! ```
//!
//! Packets are served in increasing `F`. Work per packet is O(log n)
//! (sorted queue), and like WFQ/DRR the tag needs the packet length at
//! arrival, so SCFQ is also inapplicable to wormhole scheduling — it is
//! here as the fairness-metric reference and an extra Table 1 row.

use desim::Cycle;

use crate::packet::FlitStream;
use crate::timestamp::TagHeap;
use crate::traits::{Scheduler, ServedFlit};
use crate::{FlowId, Packet};

/// Self-clocked fair queuing scheduler.
#[derive(Default)]
pub struct ScfqScheduler {
    heap: TagHeap,
    /// Finish tag of the packet in (or last in) service — the "clock".
    service_tag: f64,
    last_finish: Vec<f64>,
    weight: Vec<f64>,
    backlog_flits: u64,
    in_flight: Option<FlitStream>,
}

impl ScfqScheduler {
    /// Creates an SCFQ scheduler with equal weights.
    pub fn new(n_flows: usize) -> Self {
        Self::with_weights(vec![1.0; n_flows])
    }

    /// Creates an SCFQ scheduler with the given positive weights.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let n = weights.len();
        Self {
            heap: TagHeap::new(),
            service_tag: 0.0,
            last_finish: vec![0.0; n],
            weight: weights,
            backlog_flits: 0,
            in_flight: None,
        }
    }

    fn ensure(&mut self, flow: FlowId) {
        if flow >= self.weight.len() {
            self.weight.resize(flow + 1, 1.0);
            self.last_finish.resize(flow + 1, 0.0);
        }
    }
}

impl Scheduler for ScfqScheduler {
    fn enqueue(&mut self, pkt: Packet, _now: Cycle) {
        self.ensure(pkt.flow);
        if self.backlog_flits == 0 {
            // Idle system: restart the clock so tags stay small.
            self.service_tag = 0.0;
            self.last_finish.iter_mut().for_each(|f| *f = 0.0);
        }
        self.backlog_flits += pkt.len as u64;
        let start = self.service_tag.max(self.last_finish[pkt.flow]);
        let finish = start + pkt.len as f64 / self.weight[pkt.flow];
        self.last_finish[pkt.flow] = finish;
        self.heap.push(finish, pkt);
    }

    fn service_flit(&mut self, _now: Cycle) -> Option<ServedFlit> {
        if self.in_flight.is_none() {
            let (tag, pkt) = self.heap.pop()?;
            self.service_tag = tag;
            self.in_flight = Some(FlitStream::new(pkt));
        }
        let stream = self.in_flight.as_mut().expect("just loaded");
        let pkt = *stream.packet();
        let (idx, done) = stream.emit();
        self.backlog_flits -= 1;
        if done {
            self.in_flight = None;
        }
        Some(ServedFlit::of(&pkt, idx))
    }

    fn backlog_flits(&self) -> u64 {
        self.backlog_flits
    }

    fn name(&self) -> &'static str {
        "SCFQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: FlowId, len: u32) -> Packet {
        Packet::new(id, flow, len, 0)
    }

    fn drain(s: &mut ScfqScheduler) -> Vec<ServedFlit> {
        let mut out = Vec::new();
        let mut now = 0;
        while let Some(f) = s.service_flit(now) {
            out.push(f);
            now += 1;
        }
        out
    }

    #[test]
    fn equal_backlogged_flows_share_equally() {
        let mut s = ScfqScheduler::new(2);
        for k in 0..40u64 {
            s.enqueue(pkt(k, 0, 3), 0);
            s.enqueue(pkt(100 + k, 1, 3), 0);
        }
        let flits = drain(&mut s);
        let f0 = flits.iter().filter(|f| f.flow == 0).count();
        assert_eq!(f0 as u64, 120);
        // Interleaving: over any 60-flit window the split is near-even.
        for chunk in flits.chunks(60) {
            if chunk.len() < 60 {
                break;
            }
            let c0 = chunk.iter().filter(|f| f.flow == 0).count() as i64;
            assert!((c0 - 30).abs() <= 6, "window split {c0}/60");
        }
    }

    #[test]
    fn self_clock_prevents_late_flow_monopoly() {
        // Flow 0 backlogged alone for a while builds a large clock; a
        // newly active flow 1 must start from the current clock, not 0.
        let mut s = ScfqScheduler::new(2);
        for k in 0..20u64 {
            s.enqueue(pkt(k, 0, 4), 0);
        }
        // Serve 40 flits of flow 0.
        for now in 0..40u64 {
            s.service_flit(now);
        }
        for k in 0..20u64 {
            s.enqueue(pkt(100 + k, 1, 4), 40);
        }
        // From here both flows are backlogged: the next 40 flits should
        // be shared roughly evenly, not monopolized by flow 1.
        let mut f1 = 0;
        for now in 40..80u64 {
            if let Some(f) = s.service_flit(now) {
                if f.flow == 1 {
                    f1 += 1;
                }
            }
        }
        assert!((16..=24).contains(&f1), "flow 1 got {f1}/40");
    }

    #[test]
    fn weighted_shares() {
        let mut s = ScfqScheduler::with_weights(vec![2.0, 1.0]);
        for k in 0..100u64 {
            s.enqueue(pkt(k, 0, 3), 0);
            s.enqueue(pkt(1000 + k, 1, 3), 0);
        }
        let mut f0 = 0u64;
        for now in 0..300u64 {
            if let Some(f) = s.service_flit(now) {
                if f.flow == 0 {
                    f0 += 1;
                }
            }
        }
        let ratio = f0 as f64 / (300.0 - f0 as f64);
        assert!((1.6..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn conservation() {
        let mut s = ScfqScheduler::new(3);
        let mut total = 0u64;
        for k in 0..21u64 {
            let len = 1 + (k % 5) as u32;
            total += len as u64;
            s.enqueue(pkt(k, (k % 3) as usize, len), 0);
        }
        assert_eq!(drain(&mut s).len() as u64, total);
        assert!(s.is_idle());
    }
}
