//! Portable scheduler-side flow state for cross-shard migration.
//!
//! DESIGN.md §8: when a flow is stolen from one shard's scheduler and
//! handed to another's, everything the flow *is* scheduler-side must
//! travel with it — its FIFO packet queue, its ERR surplus count, and,
//! if the steal caught it mid-visit, the suspended visit including the
//! mid-packet cursor. [`MigratedFlow`] is that package:
//! [`Scheduler::extract_flow`] produces it on the donor and
//! [`Scheduler::absorb_flow`] installs it on the thief.
//!
//! The contract (enforced by the ERR implementation with debug
//! assertions):
//!
//! * extract requires the flow to be **parked** on the donor — the
//!   runtime's quiesce phase guarantees nothing of the flow is in
//!   service when the package is cut;
//! * absorb requires the flow to be **parked** on the thief, and
//!   *prepends* the migrated queue to any packets that already arrived
//!   at the thief under the new routing epoch (old epoch before new —
//!   per-flow FIFO across the steal);
//! * the surplus count is copied verbatim, never recomputed, so
//!   migration conserves ERR's fairness debt (§8.4).
//!
//! [`Scheduler::extract_flow`]: crate::Scheduler::extract_flow
//! [`Scheduler::absorb_flow`]: crate::Scheduler::absorb_flow

use std::collections::VecDeque;

use crate::Packet;

/// A packet interrupted mid-wormhole by a park, frozen at the flit it
/// would emit next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MidPacket {
    /// The interrupted packet.
    pub packet: Packet,
    /// 0-based index of the next flit to emit (`< packet.len`).
    pub next_flit: u32,
}

/// A service opportunity suspended by parking, in portable form
/// (mirrors `err::Visit` plus the optional mid-packet cursor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigratedVisit {
    /// The visit's allowance `A_i(r)` as granted on the donor.
    pub allowance: u64,
    /// Units already charged to the visit (`Sent_i` so far).
    pub sent: u64,
    /// The interrupted packet, if the park hit mid-packet (`None` when
    /// it hit a packet boundary within the visit).
    pub cursor: Option<MidPacket>,
}

/// Everything a flow is, scheduler-side: the package produced by
/// [`extract_flow`] and consumed by [`absorb_flow`].
///
/// [`extract_flow`]: crate::Scheduler::extract_flow
/// [`absorb_flow`]: crate::Scheduler::absorb_flow
#[derive(Clone, Debug)]
pub struct MigratedFlow {
    /// The flow's waiting packets, in FIFO order (head first). Does not
    /// include the interrupted packet, which rides in `resume`.
    pub packets: VecDeque<Packet>,
    /// The flow's surplus count `SC_i` at extraction.
    pub surplus: u64,
    /// The suspended visit, if the flow was parked mid-visit.
    pub resume: Option<MigratedVisit>,
}

impl MigratedFlow {
    /// Total flits in the package: queued packets plus the unsent
    /// remainder of the interrupted packet.
    pub fn flits(&self) -> u64 {
        let queued: u64 = self.packets.iter().map(|p| p.len as u64).sum();
        let mid = self
            .resume
            .and_then(|v| v.cursor)
            .map_or(0, |c| (c.packet.len - c.next_flit) as u64);
        queued + mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flits_counts_queue_and_cursor() {
        let mut packets = VecDeque::new();
        packets.push_back(Packet::new(1, 0, 4, 0));
        packets.push_back(Packet::new(2, 0, 6, 0));
        let m = MigratedFlow {
            packets,
            surplus: 3,
            resume: Some(MigratedVisit {
                allowance: 5,
                sent: 2,
                cursor: Some(MidPacket {
                    packet: Packet::new(0, 0, 8, 0),
                    next_flit: 2,
                }),
            }),
        };
        assert_eq!(m.flits(), 4 + 6 + 6);
        let empty = MigratedFlow {
            packets: VecDeque::new(),
            surplus: 0,
            resume: None,
        };
        assert_eq!(empty.flits(), 0);
    }
}
