//! Weighted Elastic Round Robin — the differentiated-service extension.
//!
//! The paper motivates fair scheduling partly by "the increasing demand
//! for customer-specific differentiated services" (§1). The natural
//! weighted generalization of ERR (developed by the same authors in
//! follow-up work) scales each flow's entitlement by an integer weight:
//!
//! ```text
//! A_i(r) = w_i · (1 + MaxSC(r-1)) - SC_i(r-1)
//! ```
//!
//! With all `w_i = 1` this reduces exactly to Eq. (2) of the paper. A
//! flow of weight `w` receives `w×` the long-run service of a weight-1
//! flow while both are backlogged, and the scheduler retains the two
//! properties that matter for wormhole networks: O(1) work per packet
//! and no a-priori knowledge of packet lengths.
//!
//! The implementation reuses [`ErrCore`] (which carries the weights); this
//! module provides the weighted constructor plus the scheduler wrapper.

use desim::Cycle;

use crate::err::{ErrCore, ErrScheduler};
use crate::traits::{Scheduler, ServedFlit};
use crate::Packet;

/// Weighted ERR scheduler.
///
/// # Example
///
/// ```
/// use err_sched::{Packet, Scheduler, werr::WerrScheduler};
///
/// // Flow 0 is entitled to 3x the bandwidth of flow 1.
/// let mut s = WerrScheduler::new(vec![3, 1]);
/// for k in 0..300 {
///     s.enqueue(Packet::new(k, 0, 4, 0), 0);
///     s.enqueue(Packet::new(1000 + k, 1, 4, 0), 0);
/// }
/// // Serve 400 flits and compare shares.
/// let mut f0 = 0u64;
/// for now in 0..400 {
///     if let Some(f) = s.service_flit(now) {
///         if f.flow == 0 { f0 += 1; }
///     }
/// }
/// let ratio = f0 as f64 / (400.0 - f0 as f64);
/// assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
/// ```
#[derive(Clone, Debug)]
pub struct WerrScheduler {
    inner: ErrScheduler,
}

impl WerrScheduler {
    /// Creates a weighted ERR scheduler; `weights[i]` is flow `i`'s
    /// integer weight (≥ 1).
    pub fn new(weights: Vec<u64>) -> Self {
        let n = weights.len();
        Self {
            inner: ErrScheduler::from_core(ErrCore::with_weights(weights), n),
        }
    }

    /// Read access to the decision engine.
    pub fn core(&self) -> &ErrCore {
        self.inner.core()
    }

    /// Mutable access to the decision engine (tracing).
    pub fn core_mut(&mut self) -> &mut ErrCore {
        self.inner.core_mut()
    }
}

impl Scheduler for WerrScheduler {
    fn enqueue(&mut self, pkt: Packet, now: Cycle) {
        self.inner.enqueue(pkt, now);
    }

    fn service_flit(&mut self, now: Cycle) -> Option<ServedFlit> {
        self.inner.service_flit(now)
    }

    fn supports_parking(&self) -> bool {
        self.inner.supports_parking()
    }

    fn park_flow(&mut self, flow: crate::FlowId) -> bool {
        self.inner.park_flow(flow)
    }

    fn unpark_flow(&mut self, flow: crate::FlowId) {
        self.inner.unpark_flow(flow)
    }

    fn supports_migration(&self) -> bool {
        self.inner.supports_migration()
    }

    fn flow_backlog_flits(&self, flow: crate::FlowId) -> u64 {
        self.inner.flow_backlog_flits(flow)
    }

    fn extract_flow(&mut self, flow: crate::FlowId) -> Option<crate::migrate::MigratedFlow> {
        self.inner.extract_flow(flow)
    }

    fn absorb_flow(&mut self, flow: crate::FlowId, state: crate::migrate::MigratedFlow) -> bool {
        self.inner.absorb_flow(flow, state)
    }

    fn backlog_flits(&self) -> u64 {
        self.inner.backlog_flits()
    }

    fn name(&self) -> &'static str {
        "WERR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowId;

    fn pkt(id: u64, flow: FlowId, len: u32) -> Packet {
        Packet::new(id, flow, len, 0)
    }

    /// Serve `n` flits, returning per-flow counts.
    fn serve_n(s: &mut WerrScheduler, n: u64, flows: usize) -> Vec<u64> {
        let mut counts = vec![0u64; flows];
        for now in 0..n {
            if let Some(f) = s.service_flit(now) {
                counts[f.flow] += 1;
            }
        }
        counts
    }

    #[test]
    fn unit_weights_match_plain_err() {
        use crate::err::ErrScheduler;
        let mut w = WerrScheduler::new(vec![1, 1, 1]);
        let mut e = ErrScheduler::new(3);
        for k in 0..60u64 {
            let p = pkt(k, (k % 3) as usize, 1 + (k % 9) as u32);
            w.enqueue(p, 0);
            e.enqueue(p, 0);
        }
        let mut now = 0;
        loop {
            let a = w.service_flit(now);
            let b = e.service_flit(now);
            assert_eq!(a, b, "divergence at cycle {now}");
            if a.is_none() {
                break;
            }
            now += 1;
        }
    }

    #[test]
    fn weights_split_bandwidth_proportionally() {
        let mut s = WerrScheduler::new(vec![1, 2, 4]);
        // Each flow gets ~9000 flits of backlog so even the weight-4 flow
        // (entitled to 4/7 of the 12000 measured flits ≈ 6857) never runs
        // dry during measurement.
        for k in 0..3000u64 {
            for f in 0..3usize {
                s.enqueue(pkt(k * 3 + f as u64, f, 1 + (k % 5) as u32), 0);
            }
        }
        let counts = serve_n(&mut s, 12_000, 3);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 12_000, "work conserving while backlogged");
        let share = |f: usize| counts[f] as f64 / total as f64;
        assert!(
            (share(0) - 1.0 / 7.0).abs() < 0.02,
            "w=1 share {}",
            share(0)
        );
        assert!(
            (share(1) - 2.0 / 7.0).abs() < 0.02,
            "w=2 share {}",
            share(1)
        );
        assert!(
            (share(2) - 4.0 / 7.0).abs() < 0.02,
            "w=4 share {}",
            share(2)
        );
    }

    #[test]
    fn weighted_allowance_formula() {
        // Directly check A_i = w_i * (1 + MaxSC(r-1)) - SC_i(r-1).
        let mut s = WerrScheduler::new(vec![2, 1]);
        s.core_mut().set_trace(true);
        // Round 1 (PrevMaxSC=0): flow 0 allowance 2, flow 1 allowance 1.
        // Flow 0 sends one 5-flit packet (surplus 3); flow 1 one 9-flit
        // (surplus 8 → MaxSC). Keep queues non-empty.
        s.enqueue(pkt(0, 0, 5), 0);
        s.enqueue(pkt(1, 0, 1), 0);
        s.enqueue(pkt(2, 1, 9), 0);
        s.enqueue(pkt(3, 1, 1), 0);
        let mut now = 0;
        while s.service_flit(now).is_some() {
            now += 1;
        }
        let t = s.core_mut().take_trace();
        assert_eq!((t[0].flow, t[0].allowance, t[0].surplus), (0, 2, 3));
        assert_eq!((t[1].flow, t[1].allowance, t[1].surplus), (1, 1, 8));
        // Round 2: MaxSC(1)=8 → A_0 = 2*9 - 3 = 15, A_1 = 1*9 - 8 = 1.
        assert_eq!((t[2].flow, t[2].allowance), (0, 15));
        assert_eq!((t[3].flow, t[3].allowance), (1, 1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_weight_rejected() {
        WerrScheduler::new(vec![1, 0]);
    }
}
